"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's figures and registers its
rendered table with :func:`report_figure`; a terminal-summary hook
prints every table after the pytest-benchmark timing table, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
the reproduced figures alongside the timings. Tables are also written
to ``benchmarks/results/`` for EXPERIMENTS.md.

Scale is selected with ``REPRO_SCALE`` (quick / default / full).
"""

from __future__ import annotations

import os
import pathlib

# pytest-benchmark timings must measure the simulator, not the result
# cache: a cached rerun would report cache-hit latency as "the figure".
os.environ["REPRO_CACHE"] = "0"

_FIGURES: list[tuple[str, str]] = []
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report_figure(name: str, text: str) -> None:
    """Register a rendered figure for the end-of-run summary."""
    _FIGURES.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _FIGURES:
        return
    tr = terminalreporter
    tr.section("reproduced paper figures")
    for name, text in _FIGURES:
        tr.write_line("")
        tr.write_line(text)
    tr.write_line("")
