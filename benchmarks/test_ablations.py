"""Ablation benchmarks: shuffle, scheduler, and scale stability.

These are not paper figures; they isolate the design choices DESIGN.md
calls out (abl-1..abl-3).
"""

from conftest import report_figure

from repro.harness.ablations import (
    run_channel_ablation,
    run_pattern_sweep,
    run_impulse_ablation,
    run_scaling_ablation,
    run_scheduler_ablation,
    run_shuffle_ablation,
)
from repro.harness.common import current_scale


def test_abl1_shuffle_chip_conflicts(benchmark):
    figure = benchmark(run_shuffle_ablation)
    report_figure("abl1", figure.render())
    strides = figure.xs
    no_shuffle = dict(zip(strides, figure.series["no shuffle"]))
    with_shuffle = dict(zip(strides, figure.series["with shuffle"]))
    assert no_shuffle[8] == 8 and with_shuffle[8] == 1


def test_abl2_scheduler(benchmark):
    scale = current_scale()
    figure = benchmark.pedantic(
        run_scheduler_ablation, args=(scale,), rounds=1, iterations=1
    )
    report_figure("abl2", figure.render())
    # The Row Store starvation gap narrows under FCFS.
    row = dict(zip(figure.xs, figure.series["Row Store"]))
    gs = dict(zip(figure.xs, figure.series["GS-DRAM"]))
    frfcfs_gap = gs["fr-fcfs"] / row["fr-fcfs"]
    fcfs_gap = gs["fcfs"] / max(row["fcfs"], 1e-9)
    assert frfcfs_gap > fcfs_gap


def test_abl3_scale_stability(benchmark):
    figure = benchmark.pedantic(
        run_scaling_ablation, kwargs={"sizes": (2048, 8192, 32768)},
        rounds=1, iterations=1,
    )
    report_figure("abl3", figure.render())
    # Headline ratios stay in a stable band across an order of
    # magnitude of table sizes.
    for series in figure.series.values():
        assert max(series) < 3.0 * min(series)
        assert min(series) > 1.0  # GS-DRAM wins at every size


def test_abl4_impulse_baseline(benchmark):
    scale = current_scale()
    figure = benchmark.pedantic(
        run_impulse_ablation, kwargs={"num_tuples": scale.db_tuples},
        rounds=1, iterations=1,
    )
    report_figure("abl4", figure.render())
    cycles = {name: series[0] for name, series in figure.series.items()}
    reads = {name: series[1] for name, series in figure.series.items()}
    # Impulse beats the Row Store (cache utilisation) but not GS-DRAM.
    assert cycles["GS-DRAM"] < cycles["Impulse"] < cycles["Row Store"]
    # Impulse's DRAM traffic equals the Row Store's; GS-DRAM's is 8x less.
    assert reads["Impulse"] == reads["Row Store"]
    assert reads["Row Store"] == 8 * reads["GS-DRAM"]


def test_abl5_channel_scaling(benchmark):
    figure = benchmark.pedantic(
        run_channel_ablation, kwargs={"rows_per_stream": 16},
        rounds=1, iterations=1,
    )
    report_figure("abl5", figure.render())
    row = dict(zip(figure.xs, figure.series["Row Store scans"]))
    gs = dict(zip(figure.xs, figure.series["GS-DRAM scans"]))
    # Two concurrent streams scale to two channels.
    assert row[2] < 0.65 * row[1]
    # GS-DRAM on ONE channel beats the Row Store on four.
    assert gs[1] < row[4]


def test_abl6_pattern_sweep(benchmark):
    figure = benchmark.pedantic(
        run_pattern_sweep, kwargs={"lines": 2048}, rounds=1, iterations=1
    )
    report_figure("abl6", figure.render())
    scalar_reads = dict(zip(figure.xs, figure.series["scalar DRAM reads"]))
    gathered_reads = dict(zip(figure.xs, figure.series["gathered DRAM reads"]))
    scalar_cycles = dict(zip(figure.xs, figure.series["scalar cycles"]))
    gathered_cycles = dict(zip(figure.xs, figure.series["gathered cycles"]))
    for stride in (2, 4, 8):
        # Traffic reduction is exactly the stride.
        assert scalar_reads[stride] == stride * gathered_reads[stride]
        assert gathered_cycles[stride] < scalar_cycles[stride]
