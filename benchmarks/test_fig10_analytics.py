"""Figure 10 benchmark: analytics (column sums), with/without prefetch.

Expected shape (paper): GS-DRAM tracks the Column Store and is ~2x
faster than the Row Store; prefetching helps every mechanism.
"""

from conftest import report_figure

from repro.harness.common import current_scale
from repro.harness.fig10_analytics import run_figure10


def test_fig10_analytics_workloads(benchmark):
    scale = current_scale()
    figure, summary = benchmark.pedantic(
        run_figure10, args=(scale,), rounds=1, iterations=1
    )
    report_figure("fig10", figure.render() + "\n" + summary.render())
    benchmark.extra_info["gs_vs_row"] = figure.speedup("Row Store", "GS-DRAM")

    # GS-DRAM well ahead of the Row Store, close to the Column Store.
    assert figure.speedup("Row Store", "GS-DRAM") > 1.8
    assert 0.5 < figure.speedup("Column Store", "GS-DRAM") < 2.5

    # Prefetching helps every mechanism (x-axis: k=1, k=2, then +pf).
    for mechanism, series in figure.series.items():
        without = series[0] + series[1]
        with_pf = series[2] + series[3]
        assert with_pf < without, mechanism
