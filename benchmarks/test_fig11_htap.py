"""Figure 11 benchmark: HTAP analytics latency + transaction throughput.

Expected shape (paper): (a) GS-DRAM matches the Column Store's
analytics time, far ahead of the Row Store; (b) GS-DRAM's transaction
throughput beats the Column Store, and with prefetching the Row Store's
streaming analytics starves its transaction thread under FR-FCFS.
"""

from conftest import report_figure

from repro.harness.common import current_scale
from repro.harness.fig11_htap import run_figure11


def test_fig11_htap(benchmark):
    scale = current_scale()
    analytics, throughput, summary = benchmark.pedantic(
        run_figure11, args=(scale,), rounds=1, iterations=1
    )
    report_figure(
        "fig11",
        analytics.render() + "\n\n" + throughput.render() + "\n" + summary.render(),
    )

    # 11a: analytics ordering.
    assert analytics.speedup("Row Store", "GS-DRAM") > 2.0
    assert 0.5 < analytics.speedup("Column Store", "GS-DRAM") < 2.0

    # 11b: GS-DRAM throughput beats the Column Store in both variants.
    gs = throughput.series["GS-DRAM"]
    col = throughput.series["Column Store"]
    row = throughput.series["Row Store"]
    assert gs[0] > col[0] and gs[1] > col[1]
    # With prefetching, the Row Store's txn thread is starved badly.
    assert gs[1] > 2.0 * row[1]
