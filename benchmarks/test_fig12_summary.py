"""Figure 12 benchmark: average performance and energy summary.

Expected shape (paper): 12a mirrors Figures 9/10. 12b: transaction
energy GS ~= Row Store, ~2.1x below Column Store; analytics energy GS
~= Column Store, ~2.4x below Row Store with prefetching (4x without).
"""

from conftest import report_figure

from repro.harness.common import current_scale
from repro.harness.fig12_summary import run_figure12


def test_fig12_performance_and_energy(benchmark):
    scale = current_scale()
    perf, energy, summary = benchmark.pedantic(
        run_figure12, args=(scale,), rounds=1, iterations=1
    )
    report_figure(
        "fig12",
        perf.render() + "\n\n" + energy.render() + "\n" + summary.render(),
    )

    # 12a performance orderings.
    trans = {name: series[0] for name, series in perf.series.items()}
    anal = {name: series[1] for name, series in perf.series.items()}
    assert trans["GS-DRAM"] < trans["Column Store"]
    assert anal["GS-DRAM"] < anal["Row Store"]

    # 12b energy orderings.
    trans_e = {name: series[0] for name, series in energy.series.items()}
    anal_e = {name: series[1] for name, series in energy.series.items()}
    assert trans_e["Column Store"] / trans_e["GS-DRAM"] > 1.5
    assert 0.8 < trans_e["Row Store"] / trans_e["GS-DRAM"] < 1.3
    assert anal_e["Row Store"] / anal_e["GS-DRAM"] > 1.5
    # The paper reports a large analytics-energy gap both with (2.4x)
    # and without (4x) prefetching. Our in-order blocking core gains as
    # much from prefetching on GS-DRAM as on the Row Store, so the
    # with/without ordering is not a robust reproduction target — only
    # the magnitude of both gaps is (see EXPERIMENTS.md).
    with_pf = summary.ratios["analytics energy w/ pf: Row Store / GS-DRAM (paper: 2.4x)"]
    without_pf = summary.ratios["analytics energy w/o pf: Row Store / GS-DRAM (paper: 4x)"]
    assert with_pf > 2.0
    assert without_pf > 2.0
