"""Figure 13 benchmark: GEMM, best tiling vs GS-DRAM, normalised.

Expected shape (paper): both tiled variants beat the non-tiled baseline
increasingly as n grows; GS-DRAM is below Best Tiling at every size
(paper: ~10%; our in-order SIMD model values the eliminated software
gather more — see EXPERIMENTS.md).
"""

from conftest import report_figure

from repro.harness.common import current_scale
from repro.harness.fig13_gemm import run_figure13


def test_fig13_gemm(benchmark):
    scale = current_scale()
    figure, summary = benchmark.pedantic(
        run_figure13, args=(scale,), rounds=1, iterations=1
    )
    report_figure("fig13", figure.render() + "\n" + summary.render())
    benchmark.extra_info["gs_reduction_vs_tiled"] = summary.ratios[
        "GS-DRAM time reduction vs best tiling (paper: ~0.10x i.e. 10%)"
    ]

    tiled = figure.series["Best Tiling"]
    gs = figure.series["GS-DRAM"]
    # GS-DRAM beats the best tiled version at every size.
    assert all(g < t for g, t in zip(gs, tiled))
    # Tiling's advantage over non-tiled grows with n.
    assert tiled[-1] < tiled[0] or len(tiled) == 1
