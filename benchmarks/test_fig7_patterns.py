"""Figure 7 benchmark: gathered-line families of GS-DRAM(4,2,2).

Functional artifact: verifies the reproduced pattern table against the
paper's figure and times the substrate's gather-geometry computation.
"""

from conftest import report_figure

from repro.harness.fig7_patterns import (
    computed_figure7,
    families_match,
    render_figure7,
)


def test_fig7_pattern_table(benchmark):
    table = benchmark(computed_figure7, 4, 4)
    assert families_match(table)
    report_figure("fig7", render_figure7())


def test_fig7_eight_chip_table(benchmark):
    """The evaluation configuration's full table (8 chips, 3 bits)."""
    from repro.core.pattern import pattern_table

    table = benchmark(pattern_table, 8, 8, 3)
    # Pattern 7 gathers stride 8 at every column.
    for column, indices in enumerate(table[7]):
        assert sorted(indices) == sorted(
            ((column & 7) + 8 * k) for k in range(8)
        )
