"""Figure 9 benchmark: transaction workload across the eight i-j-k mixes.

Expected shape (paper): GS-DRAM tracks Row Store; Column Store degrades
as transactions touch more fields; GS-DRAM averages ~3x faster than the
Column Store.
"""

from conftest import report_figure

from repro.harness.common import current_scale
from repro.harness.fig9_transactions import run_figure9


def test_fig9_transaction_workloads(benchmark):
    scale = current_scale()
    figure, summary = benchmark.pedantic(
        run_figure9, args=(scale,), rounds=1, iterations=1
    )
    report_figure("fig9", figure.render() + "\n" + summary.render())
    benchmark.extra_info["gs_vs_column"] = figure.speedup("Column Store", "GS-DRAM")
    benchmark.extra_info["gs_vs_row"] = figure.speedup("Row Store", "GS-DRAM")

    # Shape assertions (the reproduction targets).
    assert figure.speedup("Column Store", "GS-DRAM") > 2.0
    assert 0.8 < figure.speedup("Row Store", "GS-DRAM") < 1.25
    # Column Store degrades with fields: last mix slower than first.
    col = figure.series["Column Store"]
    assert col[-1] > col[0]
    # Row Store is roughly flat.
    row = figure.series["Row Store"]
    assert max(row) < 1.6 * min(row)
