"""Future-work benchmark: dynamic pattern detection (Section 4).

An unmodified record-strided scan under four machines; the detector
must recover most of the hand-written pattload version's benefit.
"""

from conftest import report_figure

from repro.harness.common import current_scale
from repro.harness.fw_autopattern import run_autopattern_experiment


def test_fw_dynamic_pattern_detection(benchmark):
    scale = current_scale()
    figure = benchmark.pedantic(
        run_autopattern_experiment, kwargs={"tuples": scale.db_tuples},
        rounds=1, iterations=1,
    )
    report_figure("fw-auto", figure.render())
    cycles = {name: series[0] for name, series in figure.series.items()}
    reads = {name: series[1] for name, series in figure.series.items()}

    # Without detection, GS-DRAM runs the unmodified code like DRAM.
    assert 0.9 < (cycles["GS-DRAM, no detection"]
                  / cycles["commodity DRAM"]) < 1.15
    # Detection recovers the bulk of the hand-written benefit.
    assert cycles["GS-DRAM + auto detect"] < 0.35 * cycles["commodity DRAM"]
    assert (cycles["GS-DRAM + auto detect"]
            < 1.25 * cycles["GS-DRAM, hand-written pattload"])
    # Traffic collapses to near the hand-written level.
    assert reads["GS-DRAM + auto detect"] < reads["commodity DRAM"] / 4
