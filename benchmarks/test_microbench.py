"""Microbenchmarks of the substrate itself (not paper figures).

These use pytest-benchmark's statistical timing (many rounds) since
they measure small operations: functional gathers/scatters, the shuffle
network, and the timed controller's request path.
"""

import struct

from repro.core.pattern import gather_spec
from repro.core.shuffle import shuffle
from repro.core.substrate import GSDRAM
from repro.dram.address import Geometry
from repro.mem.controller import MemoryController
from repro.mem.request import MemoryRequest, RequestKind
from repro.core.module import GSModule
from repro.utils.events import Engine

GEOMETRY = Geometry(chips=8, banks=8, rows_per_bank=64, columns_per_row=128)


def test_micro_shuffle(benchmark):
    values = list(range(8))
    result = benchmark(shuffle, values, 5, 3)
    assert sorted(result) == values


def test_micro_gather_spec(benchmark):
    spec = benchmark(gather_spec, 8, 7, 3)
    assert spec.uniform_stride == 8


def test_micro_functional_gather(benchmark):
    gs = GSDRAM.configure(chips=8, geometry=GEOMETRY)
    for line in range(8):
        gs.write_values(line * 64, list(range(line * 8, line * 8 + 8)))
    result = benchmark(gs.read_values, 0, 7)
    assert result == list(range(0, 64, 8))


def test_micro_functional_scatter(benchmark):
    gs = GSDRAM.configure(chips=8, geometry=GEOMETRY)
    payload = list(range(8))

    def scatter():
        gs.write_values(0, payload, pattern=7)

    benchmark(scatter)
    assert gs.read_values(0, pattern=7) == payload


def test_micro_controller_row_hit_stream(benchmark):
    """Timed controller: a 64-request row-hit stream."""

    def stream():
        engine = Engine()
        module = GSModule(geometry=GEOMETRY)
        controller = MemoryController(engine, module)
        done = []
        for i in range(64):
            controller.submit(
                MemoryRequest(i * 64, RequestKind.READ,
                              callback=lambda r: done.append(r))
            )
        engine.run()
        return done

    done = benchmark(stream)
    assert len(done) == 64


def test_micro_l1_hit_fast_path(benchmark):
    """Synchronous L1-hit throughput (the simulator's hot loop)."""
    from repro.cache.hierarchy import CacheHierarchy

    engine = Engine()
    module = GSModule(geometry=GEOMETRY)
    controller = MemoryController(engine, module)
    hierarchy = CacheHierarchy(engine, controller)
    module.write_line(0, bytes(64))
    box = []
    hierarchy.access(0, 0, callback=box.append)
    engine.run()  # fill the line

    def hit():
        return hierarchy.access(0, 8)

    result = benchmark(hit)
    assert result is not None  # synchronous hit


def test_micro_autopattern_observe(benchmark):
    """Per-load cost of the dynamic pattern detector."""
    from repro.cpu.autopattern import AutoPatternUnit

    unit = AutoPatternUnit()
    state = {"address": 0}

    def observe():
        state["address"] += 64
        return unit.observe(0x10, state["address"], 0, True, 7)

    benchmark(observe)
