"""Section 5.3 application benchmarks: KV store and graph processing.

Quantifies the use cases the paper sketches in Section 5.3 (which it
motivates but does not evaluate) — these are this reproduction's own
measurements.
"""

from conftest import report_figure

from repro.harness.sec53_apps import run_graph_experiment, run_kvstore_experiment


def test_sec53_kvstore(benchmark):
    figure = benchmark.pedantic(
        run_kvstore_experiment, kwargs={"pairs": 4096}, rounds=1, iterations=1
    )
    report_figure("sec53-kv", figure.render())
    gs = dict(zip(figure.xs, figure.series["GS-DRAM"]))
    pair = dict(zip(figure.xs, figure.series["pair layout"]))
    # Inserts at parity (both write one pair line per insert).
    assert 0.8 < gs["insert cycles"] / pair["insert cycles"] < 1.2
    # The gathered key scan halves traffic and wins on time.
    assert pair["scan DRAM reads"] == 2 * gs["scan DRAM reads"]
    assert gs["scan cycles"] < pair["scan cycles"]


def test_sec53_graph(benchmark):
    figure = benchmark.pedantic(
        run_graph_experiment, kwargs={"vertices": 1024, "edges": 4096},
        rounds=1, iterations=1,
    )
    report_figure("sec53-graph", figure.render())
    gs = dict(zip(figure.xs, figure.series["GS-DRAM"]))
    record = dict(zip(figure.xs, figure.series["record layout"]))
    # Field analytics: GS-DRAM well ahead.
    assert gs["analytics cycles"] < 0.6 * record["analytics cycles"]
    # Traversal: parity within 10%.
    assert 0.9 < gs["BFS cycles"] / record["BFS cycles"] < 1.1
