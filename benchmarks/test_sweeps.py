"""Sensitivity sweeps: shuffle stages, prefetch degree, L2 capacity."""

from conftest import report_figure

from repro.harness.sweeps import (
    sweep_l2_size,
    sweep_prefetch_degree,
    sweep_shuffle_stages,
)


def test_sweep_shuffle_stages(benchmark):
    figure = benchmark.pedantic(
        sweep_shuffle_stages, kwargs={"num_tuples": 4096},
        rounds=1, iterations=1,
    )
    report_figure("sweep-stages", figure.render())
    gs = figure.series["GS-DRAM"]
    row = figure.series["Row Store reference"]
    # Monotonic improvement with stages; even one stage beats the row store.
    assert gs[0] > gs[1] > gs[2]
    assert gs[0] < row[0]


def test_sweep_prefetch_degree(benchmark):
    figure = benchmark.pedantic(
        sweep_prefetch_degree, kwargs={"num_tuples": 8192},
        rounds=1, iterations=1,
    )
    report_figure("sweep-prefetch", figure.render())
    gs = dict(zip(figure.xs, figure.series["GS-DRAM"]))
    row = dict(zip(figure.xs, figure.series["Row Store"]))
    # Prefetching helps both; GS-DRAM wins at every degree.
    assert gs[4] < gs[0]
    assert row[4] < row[0]
    for degree in figure.xs:
        assert gs[degree] < row[degree]


def test_sweep_l2_size(benchmark):
    figure = benchmark.pedantic(
        sweep_l2_size, kwargs={"num_tuples": 8192}, rounds=1, iterations=1
    )
    report_figure("sweep-l2", figure.render())
    gs = figure.series["GS-DRAM"]
    row = figure.series["Row Store"]
    # The gap persists at every capacity (bandwidth, not cache, effect).
    for gs_cycles, row_cycles in zip(gs, row):
        assert gs_cycles < 0.5 * row_cycles
    # Cold single-pass scans are roughly capacity-insensitive.
    assert max(gs) < 1.3 * min(gs)
