#!/usr/bin/env python3
"""In-memory database on GS-DRAM (paper Section 5.1).

Runs the three workload families — transactions, analytics, and HTAP —
on all three storage layouts, with full timing simulation, and prints a
comparison in the style of the paper's Figures 9-11. Every query answer
is verified against a Python oracle.

Run:  python examples/database_htap.py [--tuples N]
"""

import argparse

from repro.db import (
    AnalyticsQuery,
    ColumnStore,
    GSDRAMStore,
    RowStore,
    TransactionMix,
    run_analytics,
    run_htap,
    run_transactions,
)
from repro.utils.tables import render_table

LAYOUTS = (RowStore, ColumnStore, GSDRAMStore)


def transactions_demo(tuples: int, count: int) -> None:
    print(f"== Transactions ({count} txns, mix 4-2-2) ==")
    rows = []
    for layout_cls in LAYOUTS:
        run = run_transactions(
            layout_cls(), TransactionMix(4, 2, 2), num_tuples=tuples, count=count
        )
        assert run.verified, "functional check failed"
        rows.append([run.layout, run.result.cycles, run.result.memory_accesses,
                     f"{run.result.energy.total_mj:.3f}"])
    print(render_table(["layout", "cycles", "mem accesses", "energy (mJ)"], rows))
    print()


def analytics_demo(tuples: int) -> None:
    print("== Analytics (sum of one column, with prefetching) ==")
    rows = []
    for layout_cls in LAYOUTS:
        run = run_analytics(
            layout_cls(), AnalyticsQuery((0,)), num_tuples=tuples, prefetch=True
        )
        assert run.verified, "wrong analytics answer"
        rows.append([run.layout, run.result.cycles, run.result.memory_accesses,
                     f"{run.result.row_hit_rate:.0%}"])
    print(render_table(["layout", "cycles", "mem accesses", "row-hit rate"], rows))
    print()


def htap_demo(tuples: int) -> None:
    print("== HTAP (analytics thread + transaction thread, 2 cores) ==")
    rows = []
    for layout_cls in LAYOUTS:
        run = run_htap(
            layout_cls(), num_tuples=tuples, prefetch=True,
            config_overrides={"l2_size": 128 * 1024},
        )
        rows.append([run.layout, run.analytics_cycles, run.committed_txns,
                     f"{run.txn_throughput_mps:.2f}"])
    print(render_table(
        ["layout", "analytics cycles", "txns committed", "throughput (M/s)"], rows
    ))
    print("\nNote how the Row Store's streaming analytics starves its own")
    print("transaction thread under FR-FCFS — GS-DRAM keeps both fast.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tuples", type=int, default=8192,
                        help="table size (default 8192; paper used 1M)")
    parser.add_argument("--txns", type=int, default=400,
                        help="transactions per run (default 400)")
    args = parser.parse_args()

    transactions_demo(args.tuples, args.txns)
    analytics_demo(args.tuples)
    htap_demo(args.tuples)


if __name__ == "__main__":
    main()
