#!/usr/bin/env python3
"""Tour of the Section 6 extensions.

1. Programmable shuffling — a shuffle mask and an XOR-fold function.
2. Wider pattern IDs — chip-ID repetition (6-bit patterns on 8 chips).
3. Intra-chip column translation — sub-8-byte gathers across tiles.
4. ECC — gathered reads validated against a tile-translated ECC chip.

Run:  python examples/extensions_tour.py
"""

from repro.core import (
    EccGSModule,
    GSModule,
    MaskedShuffle,
    TiledChip,
    XorFoldShuffle,
)
from repro.dram.address import Geometry

GEOMETRY = Geometry(chips=8, banks=2, rows_per_bank=8, columns_per_row=16)


def pack(values):
    import struct

    return struct.pack(f"<{len(values)}Q", *values)


def unpack(data):
    import struct

    return list(struct.unpack(f"<{len(data) // 8}Q", data))


def programmable_shuffle_demo() -> None:
    print("== 6.1 programmable shuffling ==")
    masked = GSModule(geometry=GEOMETRY, shuffle=MaskedShuffle(3, 0b011))
    print("MaskedShuffle(0b011): supported patterns:",
          [p for p in range(8) if masked.gathers_correctly(p)])
    folded = GSModule(geometry=GEOMETRY, shuffle=XorFoldShuffle(3))
    folded.write_line(5 * 64, pack(range(8)))
    print("XorFoldShuffle round-trip:", unpack(folded.read_line(5 * 64)), "\n")


def wide_pattern_demo() -> None:
    print("== 6.2 wider pattern IDs ==")
    wide = GSModule(geometry=GEOMETRY, pattern_bits=6)
    ctl = wide.rank.ctls[3]
    print(f"chip 3's effective CTL ID with 6-bit patterns: "
          f"{ctl.effective_chip_id:06b} (011 repeated)\n")


def intra_chip_demo() -> None:
    print("== 6.3 intra-chip column translation ==")
    chip = TiledChip(tiles=4, columns_per_row=8, tile_bytes=2, pattern_bits=2)
    # Columns hold 2-byte sub-values; pattern 3 gathers one sub-value
    # per tile from four different columns — a 2-byte-granular gather.
    for column in range(4):
        chip.write_column(0, column,
                          b"".join(bytes([column * 4 + t] * 2) for t in range(4)))
    gathered = chip.read_column(0, 0, pattern=3)
    print("tile-gathered sub-values:", list(gathered[::2]), "\n")


def ecc_demo() -> None:
    print("== 6.3 ECC across gathered patterns ==")
    ecc = EccGSModule(GSModule(geometry=GEOMETRY))
    for line in range(8):
        ecc.write_line(line * 64, pack(range(line * 8, line * 8 + 8)))
    gathered = unpack(ecc.read_line_checked(0, pattern=7))
    print("ECC-validated stride-8 gather:", gathered)
    ecc.corrupt_value(3 * 64, value_index=0)
    try:
        ecc.read_line_checked(0, pattern=7)
    except Exception as exc:
        print("after fault injection:", exc)


def main() -> None:
    programmable_shuffle_demo()
    wide_pattern_demo()
    intra_chip_demo()
    ecc_demo()


if __name__ == "__main__":
    main()
