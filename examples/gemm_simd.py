#!/usr/bin/env python3
"""GEMM with GS-DRAM-enabled SIMD (paper Section 5.2).

Compares three kernels computing C = A x B:

- non-tiled scalar (normalisation baseline);
- best tiled + SIMD with *software gathers* for B's columns;
- tiled + SIMD with GS-DRAM pattern-7 gathers (no software gather).

Every product is verified against numpy.

Run:  python examples/gemm_simd.py [--sizes 16 32 64]
"""

import argparse

from repro.gemm import best_tiled, run_gs, run_naive
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[16, 32],
                        help="matrix sizes (multiples of 8)")
    args = parser.parse_args()

    rows = []
    for n in args.sizes:
        naive = run_naive(n)
        tiled = best_tiled(n)
        gs = run_gs(n, tiled.tile or 8)
        for run in (naive, tiled, gs):
            assert run.verified, f"{run.kernel} produced a wrong product"
        reduction = (tiled.cycles - gs.cycles) / tiled.cycles
        rows.append([
            n,
            naive.cycles,
            f"{tiled.cycles} (T={tiled.tile})",
            gs.cycles,
            f"{tiled.cycles / naive.cycles:.3f}",
            f"{gs.cycles / naive.cycles:.3f}",
            f"{reduction:.0%}",
        ])
    print(render_table(
        ["n", "non-tiled", "best tiled", "GS-DRAM",
         "tiled/naive", "gs/naive", "GS gain vs tiled"],
        rows,
        title="GEMM execution time (cycles), all products numpy-verified",
    ))
    print("\nGS-DRAM reads each 8x8 tile of B column-wise with pattern 7,")
    print("so SIMD loads need no software gather (paper Figure 13).")


if __name__ == "__main__":
    main()
