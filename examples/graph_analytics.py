#!/usr/bin/env python3
"""Graph processing on GS-DRAM (paper Section 5.3).

Builds a random directed graph, stores vertex records (8 fields each)
on GS-DRAM vs plain DRAM, and contrasts the two access-pattern
families the paper describes:

- whole-graph *field analytics* (degree sum, label histogram) — GS
  gathers cut line traffic 8x;
- *traversal* (BFS writing the level field, verified against networkx)
  and per-vertex updates — pattern-0 record accesses, unaffected.

Run:  python examples/graph_analytics.py [--vertices N --edges M]
"""

import argparse
import random

import networkx as nx

from repro.graph import (
    GraphStore,
    bfs_ops,
    field_analytics_ops,
    initialise_records,
    vertex_update_ops,
)
from repro.sim import System, plain_dram_config, table1_config
from repro.utils.tables import render_table


def build(gs: bool, vertices: int, edge_list, labels):
    system = System(table1_config() if gs else plain_dram_config())
    store = GraphStore(system, vertices, edge_list, gs=gs)
    initialise_records(store, labels)
    return system, store


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=1024)
    parser.add_argument("--edges", type=int, default=4096)
    args = parser.parse_args()

    rng = random.Random(11)
    edge_list = [(rng.randrange(args.vertices), rng.randrange(args.vertices))
                 for _ in range(args.edges)]
    labels = [rng.randrange(4) for _ in range(args.vertices)]

    print("== field analytics (degree sum + label histogram) ==")
    rows = []
    for gs in (False, True):
        system, store = build(gs, args.vertices, edge_list, labels)
        result = {}
        run = system.run([field_analytics_ops(store, result)])
        assert result["degree_sum"] == store.num_edges
        rows.append(["GS-DRAM" if gs else "record layout",
                     run.cycles, run.memory_accesses])
    print(render_table(["storage", "cycles", "mem accesses"], rows))

    print("\n== BFS traversal (verified against networkx) ==")
    rows = []
    for gs in (False, True):
        system, store = build(gs, args.vertices, edge_list, labels)
        levels = {}
        run = system.run([bfs_ops(store, 0, levels)])
        graph = nx.DiGraph()
        graph.add_nodes_from(range(args.vertices))
        graph.add_edges_from(edge_list)
        expected = dict(nx.single_source_shortest_path_length(graph, 0))
        assert levels == expected, "BFS mismatch vs networkx"
        rows.append(["GS-DRAM" if gs else "record layout",
                     run.cycles, len(levels)])
    print(render_table(["storage", "cycles", "vertices reached"], rows))
    print("\nTraversal is per-record (pattern 0): GS-DRAM matches the")
    print("record layout, while field analytics run far fewer lines.")

    print("\n== per-vertex updates ==")
    system, store = build(True, args.vertices, edge_list, labels)
    touched = [rng.randrange(args.vertices) for _ in range(256)]
    run = system.run([vertex_update_ops(store, touched, delta=7)])
    print(f"updated {len(touched)} records in {run.cycles:,} cycles "
          f"({run.memory_accesses} line transfers)")


if __name__ == "__main__":
    main()
