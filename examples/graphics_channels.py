#!/usr/bin/env python3
"""Graphics on GS-DRAM (paper Section 5.3): pixels vs channels.

A framebuffer of pixel objects (8 channels per pixel, one cache line
each). Per-pixel compositing uses pattern-0 accesses; whole-image
channel operations (histogram, Z-buffer scan) gather one channel of 8
pixels per cache line with pattern 7.

Run:  python examples/graphics_channels.py
"""

import random

from repro.graphics import CH_B, CH_Z, CHANNELS, Framebuffer
from repro.sim import System, plain_dram_config, table1_config
from repro.utils.tables import render_table

W, H = 64, 32  # 2048 pixels


def build(gs: bool):
    system = System(table1_config() if gs else plain_dram_config())
    fb = Framebuffer(system, W, H, gs=gs)
    rng = random.Random(8)
    records = [[rng.randrange(256) for _ in range(CHANNELS)]
               for _ in range(W * H)]
    fb.load_pixels(records)
    return system, fb, records


def main() -> None:
    print("== per-channel: blue histogram + Z-buffer scan ==")
    rows = []
    for gs in (False, True):
        system, fb, records = build(gs)
        histogram = [0] * 8
        count = [0]
        result = system.run([fb.channel_histogram_ops(CH_B, 8, histogram, 32)])
        result2 = system.run([fb.depth_test_ops(128, count)])
        expected = [0] * 8
        for record in records:
            expected[min(record[CH_B] // 32, 7)] += 1
        assert histogram == expected, "histogram wrong"
        assert count[0] == sum(1 for r in records if r[CH_Z] < 128)
        rows.append(["GS-DRAM" if gs else "pixel layout",
                     result.cycles + result2.cycles,
                     result.memory_accesses + result2.memory_accesses])
    print(render_table(["storage", "cycles", "mem accesses"], rows))

    print("\n== per-pixel: composite 256 random splats ==")
    rows = []
    for gs in (False, True):
        system, fb, _ = build(gs)
        rng = random.Random(9)

        def splats():
            for _ in range(256):
                pixel = rng.randrange(W * H)
                colour = (rng.randrange(256), rng.randrange(256),
                          rng.randrange(256))
                yield from fb.blend_ops(pixel, colour, alpha_num=128)

        result = system.run([splats()])
        rows.append(["GS-DRAM" if gs else "pixel layout",
                     result.cycles, result.memory_accesses])
    print(render_table(["storage", "cycles", "mem accesses"], rows))
    print("\nPer-pixel compositing is pattern-0 work: GS-DRAM matches the")
    print("pixel layout, while channel sweeps run 8x fewer lines.")


if __name__ == "__main__":
    main()
