#!/usr/bin/env python3
"""Key-value store with gather-accelerated key scans (paper Section 5.3).

With 8-byte keys and values stored as adjacent pairs, pattern 1
(stride 2) gathers eight consecutive *keys* into one cache line:
inserts enjoy the pair layout (key + value in one line), lookups scan
keys at twice the density.

Run:  python examples/kvstore_scan.py
"""

from repro.kvstore import KVStore, LookupResult
from repro.sim import System, table1_config


def main() -> None:
    system = System(table1_config())
    kv = KVStore(system, capacity=2048)

    pairs = [(1_000 + 17 * i, i * i) for i in range(1024)]
    result = system.run([kv.bulk_insert_ops(pairs)])
    print(f"inserted {len(pairs)} pairs in {result.cycles:,} cycles "
          f"({result.memory_accesses} line transfers)\n")

    for key in (1_000, 1_000 + 17 * 500, 1_000 + 17 * 1023, 42):
        lookup = LookupResult()
        run = system.run([kv.lookup_ops(key, lookup)])
        expected = kv.oracle.get(key)
        status = f"value={lookup.value}" if lookup.found else "not found"
        assert (lookup.value if lookup.found else None) == expected
        print(f"lookup({key:6d}): {status:18s} "
              f"keys examined={lookup.keys_examined:5d} "
              f"cycles={run.cycles:,}")

    # Full key enumeration via gathered lines: 8 keys per cache line.
    keys = []
    before = system.controller.stats.get("cmd_RD")
    run = system.run([kv.scan_all_keys_ops(keys.append)])
    reads = system.controller.stats.get("cmd_RD") - before
    print(f"\nscanned {len(keys)} keys with {reads} DRAM reads "
          f"(pair layout would need ~{len(keys) // 4}).")


if __name__ == "__main__":
    main()
