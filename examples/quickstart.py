#!/usr/bin/env python3
"""Quickstart: the GS-DRAM substrate in five minutes.

Walks through the paper's core mechanism with the functional API:

1. build GS-DRAM(8,3,3) — the paper's evaluation configuration;
2. store a tiny "database table" (8 tuples x 8 fields);
3. read one tuple with a single command (pattern 0);
4. gather one *field of every tuple* with a single command (pattern 7);
5. scatter new values back through the gathered view;
6. inspect the Section 4.4 hardware cost.

Run:  python examples/quickstart.py
"""

from repro import GSDRAM, pattern_for_stride


def main() -> None:
    gs = GSDRAM.configure(chips=8, shuffle_stages=3, pattern_bits=3)
    print(f"configured {gs.name()}: {gs.line_bytes}-byte lines, "
          f"strides {gs.supported_strides()} in one READ\n")

    # A table of 8 tuples, each with 8 fields; tuple t's field f holds
    # the value 10*t + f. One tuple per cache line (the paper's layout).
    tuples = 8
    for t in range(tuples):
        gs.write_values(t * 64, [10 * t + f for f in range(8)])

    # Pattern 0 = a conventional read: one tuple.
    print("tuple 3 (pattern 0):      ", gs.read_values(3 * 64))

    # Pattern 7 = stride 8: field f of ALL eight tuples in ONE command.
    pattern = pattern_for_stride(8)
    print("field 0 of all tuples     ", gs.read_values(0 * 64, pattern=pattern))
    print("field 5 of all tuples     ", gs.read_values(5 * 64, pattern=pattern))

    # Patterns 1 and 3 gather strides 2 and 4.
    print("stride-2 gather (patt 1): ", gs.read_values(0, pattern=1))
    print("stride-4 gather (patt 3): ", gs.read_values(0, pattern=3))

    # Scatter: write field 0 of every tuple in one command.
    gs.write_values(0, [1000 + t for t in range(8)], pattern=pattern)
    print("\nafter scattering new field-0 values:")
    print("tuple 0:", gs.read_values(0))
    print("tuple 7:", gs.read_values(7 * 64))

    # What would this cost without the shuffle? (Section 3.2's Challenge 1)
    print(f"\nREADs to gather 8 stride-8 values: "
          f"{gs.reads_required(8)} with shuffling, "
          f"{gs.reads_required(8, shuffled=False)} without")

    # Hardware cost (Section 4.4).
    print("\nhardware cost:", gs.hardware_cost().render())


if __name__ == "__main__":
    main()
