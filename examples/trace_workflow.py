#!/usr/bin/env python3
"""Trace-driven workflow: record, analyse, optimise, replay.

1. Record an application's memory trace while it runs (a row-store
   field scan — the kind of code nobody has time to rewrite).
2. Analyse the trace: the analyzer spots the record-strided load and
   recommends pattern 7.
3. Act on the recommendation two ways:
   a. re-allocate with ``pattmalloc`` and enable the dynamic
      pattern-detection unit — zero code changes;
   b. replay the *same trace* on that machine and watch the unit
      convert it.

Run:  python examples/trace_workflow.py
"""

import struct

from repro.cpu.isa import Compute, Load
from repro.sim import System, plain_dram_config, table1_config
from repro.trace import analyze, record_ops, replay_ops

TUPLES = 4096


def build_system(config):
    system = System(config)
    if config.is_gs:
        base = system.pattmalloc(TUPLES * 64, shuffle=True, pattern=7)
    else:
        base = system.malloc(TUPLES * 64)
    payload = b"".join(
        struct.pack("<8Q", *(t * 8 + f for f in range(8))) for t in range(TUPLES)
    )
    system.mem_write(base, payload)
    return system, base


def scan(base, sink):
    for t in range(TUPLES):
        yield Load(base + t * 64, pc=0x2000,
                   on_value=lambda b: sink(struct.unpack("<Q", b)[0]))
        yield Compute(1)


def main() -> None:
    expected = sum(t * 8 for t in range(TUPLES))

    # 1. Record on the legacy machine.
    system, base = build_system(plain_dram_config())
    total = [0]
    records = []
    baseline = system.run(
        [record_ops(scan(base, lambda v: total.__setitem__(0, total[0] + v)),
                    0, records)]
    )
    assert total[0] == expected
    print(f"recorded {len(records)} events; baseline: "
          f"{baseline.cycles:,} cycles, {baseline.dram_reads} DRAM reads\n")

    # 2. Analyse.
    report = analyze(records)
    print(report.render(), "\n")
    assert report.candidates, "expected a gather candidate"

    # 3. Replay the unmodified trace on GS-DRAM with dynamic detection.
    gs_system, gs_base = build_system(table1_config(auto_pattern=True))
    assert gs_base == base, "identical address maps keep the trace valid"
    optimised = gs_system.run([replay_ops(records)])
    conversions = gs_system.cores[0].stats.get("auto_gathers")
    print(f"replay on GS-DRAM + auto detection: {optimised.cycles:,} cycles, "
          f"{optimised.dram_reads} DRAM reads "
          f"({conversions} loads converted to gathers)")
    print(f"speedup without touching the program: "
          f"{baseline.cycles / optimised.cycles:.2f}x")


if __name__ == "__main__":
    main()
