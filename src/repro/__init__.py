"""Gather-Scatter DRAM (GS-DRAM) — a functional + timing reproduction.

Reproduces Seshadri et al., "Gather-Scatter DRAM: In-DRAM Address
Translation to Improve the Spatial Locality of Non-unit Strided
Accesses", MICRO-48, 2015.

Quick start::

    from repro import GSDRAM

    gs = GSDRAM.configure(chips=8, shuffle_stages=3, pattern_bits=3)
    gs.write_values(0, list(range(8)))          # one cache line
    gs.read_values(0, pattern=7)                 # stride-8 gather

Full-system simulation::

    from repro import System, table1_config
    system = System(table1_config())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.pattern import pattern_for_stride, stride_for_pattern
from repro.core.substrate import GSDRAM, HardwareCost
from repro.cpu.isa import Compute, Load, Store, pattload, pattstore
from repro.dram.address import Geometry, MappingPolicy
from repro.dram.module import DRAMModule
from repro.sim.config import (
    Mechanism,
    SchedulerKind,
    SystemConfig,
    plain_dram_config,
    table1_config,
)
from repro.sim.results import RunResult
from repro.sim.system import System

__version__ = "1.0.0"

__all__ = [
    "Compute",
    "DRAMModule",
    "GSDRAM",
    "Geometry",
    "HardwareCost",
    "Load",
    "MappingPolicy",
    "Mechanism",
    "RunResult",
    "SchedulerKind",
    "Store",
    "System",
    "SystemConfig",
    "pattern_for_stride",
    "pattload",
    "pattstore",
    "plain_dram_config",
    "stride_for_pattern",
    "table1_config",
    "__version__",
]
