"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``figures [figure] [--scale quick|default|full|paper] [--mode
  event|fast] [--jobs N]`` — run every paper-figure driver (or just
  one) and print the reproduced tables (no pytest needed). Finished
  figures are memoised in the result cache, so a rerun at the same
  scale and code version is nearly instant; set ``REPRO_CACHE=0`` to
  force fresh simulations. The ``paper`` scale is fast-path only:
  pick one figure and pass ``--mode fast``.
- ``bench [--scale ...] [--jobs N] [--profile]`` — time the tier-1
  workloads, write a ``BENCH_<date>.json`` baseline, and fail on
  wall-clock regression against the previous baseline (see
  docs/TESTING.md). ``--profile`` additionally cProfiles each case.
- ``quickstart`` — the substrate walk-through (same as
  examples/quickstart.py).
- ``report`` — regenerate EXPERIMENTS.md from benchmarks/results/.
- ``check`` — run the correctness battery (invariant checkers + the
  differential oracle sweep); exits non-zero on any violation. Also
  installed as the ``repro-check`` console script.
- ``trace <figure>`` — rerun one figure's representative specs with
  the structured event tracer enabled and write a Chrome-trace JSON
  (open in Perfetto / chrome://tracing). See docs/OBSERVABILITY.md.
- ``metrics <figure>`` — rerun one figure's representative specs with
  registry observation and dump the merged per-component metrics
  snapshot as JSON.
- ``serve`` — run the asyncio simulation service (submit RunSpecs over
  HTTP/JSON, shared result cache, admission control, crash-recoverable
  job journal). See docs/SERVING.md.
- ``submit`` — send one or more RunSpecs to a running server and print
  one JSON line per job (id, state, result digest).
- ``jobs`` — list a running server's jobs.
- ``--version`` — package version plus the source-tree content hash
  (the same hash the service handshake echoes, so client/server skew
  is detectable by eye).
"""

from __future__ import annotations

import argparse
import os
import sys


#: Figure drivers that accept ``mode=`` (event vs vectorized fast path).
MODE_FIGURES = ("fig9", "fig10", "fig11", "fig13")
#: Everything ``repro figures`` knows how to run.
ALL_FIGURES = ("fig7", "fig9", "fig10", "fig11", "fig12", "fig13")


def run_figures(
    scale_name: str,
    jobs: int | None = None,
    figure: str | None = None,
    mode: str | None = None,
) -> int:
    os.environ["REPRO_SCALE"] = scale_name
    from repro.harness import (
        current_scale,
        render_figure7,
        run_figure9,
        run_figure10,
        run_figure11,
        run_figure12,
        run_figure13,
    )
    from repro.perf import default_cache

    scale = current_scale()
    run_mode = mode or "event"
    if run_mode == "fast" and figure not in MODE_FIGURES:
        print(
            "error: --mode fast needs a single mode-capable figure "
            f"({', '.join(MODE_FIGURES)}), e.g. "
            "`repro figures fig9 --mode fast`",
            file=sys.stderr,
        )
        return 2
    if scale.name == "paper" and run_mode == "event":
        print(
            "error: scale 'paper' is out of reach for the event-mode "
            "simulator (paper-scale replay alone is ~10^7 accesses); "
            "rerun one figure on the vectorized path, e.g. "
            "`repro figures fig9 --scale paper --mode fast`",
            file=sys.stderr,
        )
        return 2
    cache = default_cache()

    def memo(name, build):
        """Whole-figure memoisation: a warm rerun skips the driver."""
        if cache is None:
            return build()
        key = f"figure:{name}:scale={scale.name}"
        if run_mode != "event":
            key += f":mode={run_mode}"
        hit = cache.get(key)
        if hit is not None:
            return hit
        value = build()
        cache.put(key, value)
        return value

    wanted = ALL_FIGURES if figure is None else (figure,)
    label = "all figure drivers" if figure is None else f"figure driver {figure}"
    print(f"running {label} at scale '{scale.name}' (mode {run_mode})\n")
    if "fig7" in wanted:
        print(memo("fig7", render_figure7), "\n")
    for name, runner in (("fig9", run_figure9), ("fig10", run_figure10),
                         ("fig13", run_figure13)):
        if name not in wanted:
            continue
        outputs = memo(name, lambda runner=runner: runner(
            scale, jobs=jobs, mode=run_mode))
        for output in outputs:
            print(output.render(), "\n")
    if "fig11" in wanted:
        analytics, throughput, summary = memo(
            "fig11", lambda: run_figure11(scale, jobs=jobs, mode=run_mode)
        )
        print(analytics.render(), "\n")
        print(throughput.render(), "\n")
        print(summary.render(), "\n")
    if "fig12" in wanted:
        perf, energy, summary12 = memo(
            "fig12", lambda: run_figure12(scale, jobs=jobs)
        )
        print(perf.render(), "\n")
        print(energy.render(), "\n")
        print(summary12.render())
    return 0


def run_bench_command(args) -> int:
    from repro.perf.bench import render_summary, run_bench

    if args.cluster is not None:
        from repro.perf.bench import render_cluster_summary, run_cluster_bench

        payload, exit_code = run_cluster_bench(
            scale_name=args.scale,
            cluster=args.cluster,
            results_dir=args.results_dir,
            write=not args.dry_run,
        )
        print(render_cluster_summary(payload))
        return exit_code

    payload, exit_code = run_bench(
        scale_name=args.scale,
        jobs=args.jobs,
        results_dir=args.results_dir,
        threshold=args.threshold,
        check_regression=not args.no_regression_check,
        write=not args.dry_run,
        profile=args.profile,
    )
    print(render_summary(payload))
    return exit_code


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] in (["--version"], ["-V"]):
        # Handled before argparse so it works ahead of any subcommand
        # (and without paying for subparser imports).
        from repro.serve.cli import version_string

        print(version_string())
        return 0
    if argv[:1] == ["check"]:
        # The check sub-CLI owns its own flags; forward them verbatim.
        from repro.check.cli import main as check_main

        return check_main(argv[1:])

    from repro.harness.common import scale_names

    scales = scale_names()
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    figures = sub.add_parser("figures", help="reproduce every paper figure")
    figures.add_argument("figure", nargs="?", default=None,
                         choices=list(ALL_FIGURES),
                         help="run just this figure (default: all)")
    figures.add_argument("--scale", default="quick", choices=scales)
    figures.add_argument("--mode", default=None, choices=["event", "fast"],
                         help="execution mode for mode-capable figures "
                              "(paper scale requires a single figure in "
                              "--mode fast)")
    figures.add_argument("--jobs", type=int, default=None,
                         help="parallel simulation workers "
                              "(default: REPRO_JOBS or 1)")
    bench = sub.add_parser(
        "bench", help="time the tier-1 workloads; write a BENCH baseline"
    )
    bench.add_argument("--scale", default="quick", choices=scales)
    bench.add_argument("--jobs", type=int, default=None,
                       help="parallel simulation workers "
                            "(default: REPRO_JOBS or 1)")
    bench.add_argument("--results-dir", default="benchmarks/results",
                       help="where BENCH_*.json baselines live")
    bench.add_argument("--threshold", type=float, default=0.15,
                       help="fail when total wall-clock regresses by more "
                            "than this fraction (default 0.15)")
    bench.add_argument("--no-regression-check", action="store_true",
                       help="measure and write only; never fail")
    bench.add_argument("--dry-run", action="store_true",
                       help="do not write a BENCH_*.json file")
    bench.add_argument("--cluster", type=int, default=None, metavar="N",
                       help="time a sharded figure sweep at cluster sizes "
                            "1 and N; writes CLUSTER_*.json instead")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile every case (forces --jobs 1) and "
                            "write PROFILE_*.txt next to the BENCH json")
    from repro.harness.specsets import SPEC_FIGURES

    trace = sub.add_parser(
        "trace", help="write a Chrome-trace JSON for one figure's runs"
    )
    trace.add_argument("figure", choices=list(SPEC_FIGURES))
    trace.add_argument("--scale", default="quick", choices=scales)
    trace.add_argument("--jobs", type=int, default=None,
                       help="parallel simulation workers "
                            "(default: REPRO_JOBS or 1)")
    trace.add_argument("--out", default=None,
                       help="output path (default traces/<figure>-<scale>.json)")
    trace.add_argument("--detail", action="store_true",
                       help="also emit one instant event per engine event "
                            "(much larger traces)")
    trace.add_argument("--limit", type=int, default=1_000_000,
                       help="per-run trace event cap (default 1,000,000)")
    metrics = sub.add_parser(
        "metrics", help="dump the merged metrics-registry snapshot for one figure"
    )
    metrics.add_argument("figure", choices=list(SPEC_FIGURES))
    metrics.add_argument("--scale", default="quick", choices=scales)
    metrics.add_argument("--jobs", type=int, default=None,
                         help="parallel simulation workers "
                              "(default: REPRO_JOBS or 1)")
    metrics.add_argument("--out", default=None,
                         help="write JSON here instead of stdout")
    sub.add_parser("quickstart", help="substrate walk-through")
    sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    sub.add_parser("check", help="run invariant checkers + differential oracle")

    from repro.serve.server import DEFAULT_PORT

    serve_parser = sub.add_parser(
        "serve", help="run the simulation service (docs/SERVING.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="concurrent job slots (default 2)")
    serve_parser.add_argument("--executor", default="process",
                              choices=["process", "thread"],
                              help="where jobs run (default: process pool)")
    serve_parser.add_argument("--max-inflight", type=int, default=8,
                              help="open jobs allowed per client (default 8)")
    serve_parser.add_argument("--rate", type=float, default=0.0,
                              help="submissions/second per client "
                                   "(default 0 = unlimited)")
    serve_parser.add_argument("--burst", type=int, default=4,
                              help="rate-limit burst allowance (default 4)")
    serve_parser.add_argument("--state-dir", default=".repro-serve",
                              help="job-journal directory (default .repro-serve)")
    serve_parser.add_argument("--no-state", action="store_true",
                              help="disable the journal (no crash recovery)")
    serve_parser.add_argument("--drain-deadline", type=float, default=30.0,
                              help="seconds open jobs get on graceful "
                                   "shutdown (default 30)")
    serve_parser.add_argument("--cluster", type=int, default=None,
                              metavar="N",
                              help="shard execution across N in-process "
                                   "workers behind this server "
                                   "(docs/SERVING.md)")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-request log lines")

    submit = sub.add_parser(
        "submit", help="submit RunSpecs to a running server"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit.add_argument("--client", default="cli",
                        help="client id for admission control (default cli)")
    submit.add_argument("--spec-json", action="append", default=[],
                        help="a RunSpec as a JSON object (repeatable)")
    submit.add_argument("--spec-file", default=None,
                        help="JSON file with one spec or a list of specs")
    submit.add_argument("--figure", default=None, choices=list(SPEC_FIGURES),
                        help="submit that figure's representative specs")
    submit.add_argument("--scale", default="quick", choices=scales)
    submit.add_argument("--patternscan", default=None, metavar="VARIANT:STRIDE",
                        help="one fig7-style point, e.g. gathered:4")
    submit.add_argument("--lines", type=int, default=2048,
                        help="patternscan lines (default 2048)")
    submit.add_argument("--mode", default=None, choices=["event", "fast"],
                        help="override mode on every submitted spec")
    submit.add_argument("--obs", default=None,
                        choices=["off", "metrics", "trace", "trace-detail"],
                        help="override obs on every submitted spec")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--no-wait", action="store_true",
                        help="return job ids immediately instead of waiting")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="per-job wait timeout in seconds (default 300)")
    submit.add_argument("--retries", type=int, default=3,
                        help="rate-limit resubmit attempts (default 3)")

    jobs_parser = sub.add_parser("jobs", help="list a running server's jobs")
    jobs_parser.add_argument("--host", default="127.0.0.1")
    jobs_parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    jobs_parser.add_argument("--timeout", type=float, default=30.0)
    jobs_parser.add_argument("--json", action="store_true",
                             help="raw JSON instead of a table")

    args = parser.parse_args(argv)

    if args.command == "figures":
        return run_figures(args.scale, jobs=args.jobs, figure=args.figure,
                           mode=args.mode)
    if args.command == "bench":
        return run_bench_command(args)
    if args.command == "trace":
        from repro.obs.cli import run_trace

        return run_trace(
            args.figure,
            scale_name=args.scale,
            jobs=args.jobs,
            out=args.out,
            detail=args.detail,
            limit=args.limit,
        )
    if args.command == "metrics":
        from repro.obs.cli import run_metrics

        return run_metrics(
            args.figure,
            scale_name=args.scale,
            jobs=args.jobs,
            out=args.out,
        )
    if args.command == "quickstart":
        sys.path.insert(0, "examples")
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    if args.command == "report":
        from repro.harness.report import main as report_main

        report_main()
        return 0
    if args.command in ("serve", "submit", "jobs"):
        from repro.serve import cli as serve_cli

        handler = {
            "serve": serve_cli.run_serve,
            "submit": serve_cli.run_submit,
            "jobs": serve_cli.run_jobs,
        }[args.command]
        return handler(args)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
