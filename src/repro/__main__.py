"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``figures [--scale quick|default|full]`` — run every paper-figure
  driver and print the reproduced tables (no pytest needed).
- ``quickstart`` — the substrate walk-through (same as
  examples/quickstart.py).
- ``report`` — regenerate EXPERIMENTS.md from benchmarks/results/.
- ``check`` — run the correctness battery (invariant checkers + the
  differential oracle sweep); exits non-zero on any violation. Also
  installed as the ``repro-check`` console script.
"""

from __future__ import annotations

import argparse
import os
import sys


def run_figures(scale_name: str) -> int:
    os.environ["REPRO_SCALE"] = scale_name
    from repro.harness import (
        current_scale,
        render_figure7,
        run_figure9,
        run_figure10,
        run_figure11,
        run_figure12,
        run_figure13,
    )

    scale = current_scale()
    print(f"running all figure drivers at scale '{scale.name}'\n")
    print(render_figure7(), "\n")
    for runner in (run_figure9, run_figure10, run_figure13):
        outputs = runner(scale)
        for output in outputs:
            print(output.render(), "\n")
    analytics, throughput, summary = run_figure11(scale)
    print(analytics.render(), "\n")
    print(throughput.render(), "\n")
    print(summary.render(), "\n")
    perf, energy, summary12 = run_figure12(scale)
    print(perf.render(), "\n")
    print(energy.render(), "\n")
    print(summary12.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["check"]:
        # The check sub-CLI owns its own flags; forward them verbatim.
        from repro.check.cli import main as check_main

        return check_main(argv[1:])

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    figures = sub.add_parser("figures", help="reproduce every paper figure")
    figures.add_argument("--scale", default="quick",
                         choices=["quick", "default", "full"])
    sub.add_parser("quickstart", help="substrate walk-through")
    sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    sub.add_parser("check", help="run invariant checkers + differential oracle")
    args = parser.parse_args(argv)

    if args.command == "figures":
        return run_figures(args.scale)
    if args.command == "quickstart":
        sys.path.insert(0, "examples")
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    if args.command == "report":
        from repro.harness.report import main as report_main

        report_main()
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
