"""On-chip cache substrate: pattern-tagged caches, coherence, prefetch."""

from repro.cache.cache import Cache
from repro.cache.dbi import DirtyBlockIndex
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import CacheLine
from repro.cache.prefetcher import PrefetchCandidate, StridePrefetcher

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheLine",
    "DirtyBlockIndex",
    "PrefetchCandidate",
    "StridePrefetcher",
]
