"""A set-associative, write-back cache with pattern-tagged lines.

The set index is derived from the line address only; the pattern ID
extends the *tag* (Section 4.1), so a pattern-0 line and a gathered
line for the same column may coexist in one set. Replacement is LRU.

The cache is a passive container: miss handling, writebacks, and
coherence live in :class:`repro.cache.hierarchy.CacheHierarchy`.
"""

from __future__ import annotations

from repro.cache.line import CacheLine
from repro.errors import ConfigError
from repro.utils.bitops import ilog2, is_power_of_two
from repro.utils.statistics import StatGroup


class Cache:
    """One cache level (L1 or L2) as a set-associative line store."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_bytes: int = 64,
        hit_latency: int = 4,
    ) -> None:
        if size_bytes % (associativity * line_bytes) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line ({associativity}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (associativity * line_bytes)
        if not is_power_of_two(self.num_sets):
            raise ConfigError(f"{name}: set count {self.num_sets} not a power of two")
        self._offset_bits = ilog2(line_bytes)
        self._set_mask = self.num_sets - 1
        self._sets: list[dict[tuple[int, int], CacheLine]] = [
            {} for _ in range(self.num_sets)
        ]
        self._tick = 0
        self.stats = StatGroup(name)

    # ------------------------------------------------------------------
    def set_index(self, line_address: int) -> int:
        """Set selected by a line address (pattern-independent)."""
        return (line_address >> self._offset_bits) & self._set_mask

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.last_touch = self._tick

    # ------------------------------------------------------------------
    def lookup(self, line_address: int, pattern: int, touch: bool = True) -> CacheLine | None:
        """Return the resident line for (address, pattern), or None."""
        line = self._sets[self.set_index(line_address)].get((line_address, pattern))
        if line is not None and touch:
            self._touch(line)
        return line

    def fill(
        self,
        line_address: int,
        pattern: int,
        data: bytearray,
        dirty: bool = False,
    ) -> CacheLine | None:
        """Insert a line; returns the evicted victim (None if no eviction).

        If the line is already resident its data is replaced in place
        (used when a newer copy arrives from an inner level).
        """
        target_set = self._sets[self.set_index(line_address)]
        existing = target_set.get((line_address, pattern))
        if existing is not None:
            existing.data = data
            existing.dirty = existing.dirty or dirty
            self._touch(existing)
            return None
        victim = None
        if len(target_set) >= self.associativity:
            victim = min(target_set.values(), key=lambda l: l.last_touch)
            del target_set[victim.key]
            self.stats.add("evictions")
            if victim.dirty:
                self.stats.add("dirty_evictions")
        line = CacheLine(line_address, pattern, data, dirty)
        self._touch(line)
        target_set[line.key] = line
        self.stats.add("fills")
        return victim

    def invalidate(self, line_address: int, pattern: int) -> CacheLine | None:
        """Remove (address, pattern) if resident; returns the removed line.

        The caller decides what to do with a dirty victim (write back or
        discard); the cache only tracks the invalidation.
        """
        target_set = self._sets[self.set_index(line_address)]
        line = target_set.pop((line_address, pattern), None)
        if line is not None:
            self.stats.add("invalidations")
        return line

    # ------------------------------------------------------------------
    def resident_lines(self) -> list[CacheLine]:
        """All resident lines (diagnostics and drain logic)."""
        return [line for s in self._sets for line in s.values()]

    def dirty_lines(self) -> list[CacheLine]:
        """All dirty resident lines (flush-at-end-of-run support)."""
        return [line for line in self.resident_lines() if line.dirty]

    def occupancy(self) -> float:
        """Fraction of capacity in use."""
        used = sum(len(s) for s in self._sets)
        return used / (self.num_sets * self.associativity)
