"""Dirty-Block Index (DBI) [Seshadri+ ISCA'14], as used in Section 4.1.

Before fetching a gathered line, the controller must find dirty cache
lines of the *other* pattern that overlap it. All overlapping lines
live in the same DRAM row, so the paper proposes a DBI — a structure
that groups dirty-line metadata by DRAM row — to make that check fast.

This implementation indexes dirty (line address, pattern) keys by an
opaque row key (we use (bank, row)); the hierarchy updates it on every
dirty transition, writeback, and invalidation.
"""

from __future__ import annotations

from collections import defaultdict

from repro.utils.statistics import StatGroup


class DirtyBlockIndex:
    """Row-indexed dirty-line directory."""

    def __init__(self) -> None:
        self._by_row: dict[tuple[int, int], set[tuple[int, int]]] = defaultdict(set)
        self.stats = StatGroup("dbi")

    def mark_dirty(self, row_key: tuple[int, int], line_key: tuple[int, int]) -> None:
        """Record that (line address, pattern) in ``row_key`` is dirty."""
        self._by_row[row_key].add(line_key)
        self.stats.add("marks")

    def mark_clean(self, row_key: tuple[int, int], line_key: tuple[int, int]) -> None:
        """Remove a line from the index (written back or invalidated)."""
        entries = self._by_row.get(row_key)
        if entries is None:
            return
        entries.discard(line_key)
        if not entries:
            del self._by_row[row_key]
        self.stats.add("cleans")

    def dirty_in_row(self, row_key: tuple[int, int]) -> set[tuple[int, int]]:
        """Dirty (line address, pattern) keys within one DRAM row."""
        self.stats.add("row_queries")
        return set(self._by_row.get(row_key, ()))

    def dirty_overlaps(
        self,
        row_key: tuple[int, int],
        candidate_keys: set[tuple[int, int]],
    ) -> set[tuple[int, int]]:
        """Dirty lines among ``candidate_keys``, restricted to one row.

        This is the Section 4.1 check: candidates are the <= c lines of
        the other pattern that overlap a line being fetched/modified.
        """
        self.stats.add("overlap_queries")
        entries = self._by_row.get(row_key)
        if not entries:
            return set()
        return entries & candidate_keys

    def total_dirty(self) -> int:
        """Number of dirty lines tracked (consistency checks in tests)."""
        return sum(len(entries) for entries in self._by_row.values())
