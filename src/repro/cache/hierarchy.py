"""Two-level cache hierarchy with pattern-overlap coherence.

Models the paper's memory system (Table 1): per-core 32 KB L1s, a
shared 2 MB L2, all with 64-byte lines, backed by one memory channel.

Design notes:

- **Functional + timed.** Lines hold real bytes. Stores apply to cache
  data immediately; fetch fills read the DRAM module functionally at
  completion time; writebacks write the module functionally at eviction
  time and submit a timed WRITE for bandwidth accounting. This keeps
  simulated answers exact while the timing model stays event-driven.
- **Synchronous hit fast path.** ``access`` returns ``(latency, data)``
  synchronously for cache hits so hits cost no simulation events; only
  misses schedule events. ``start_time`` lets a core issue an access
  logically in the future (it accumulates compute cycles locally).
- **Pattern coherence (Section 4.1).** Each data structure uses pattern
  0 plus one alternate pattern (from its page). On a store, the <= c
  overlapping lines of the other pattern are invalidated (flushed first
  if dirty); before a fetch, dirty overlapping lines of the other
  pattern are flushed. The Dirty-Block Index accelerates the dirty
  checks. Invariant: a dirty L1 line never has a stale L2 copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cache.cache import Cache
from repro.cache.dbi import DirtyBlockIndex
from repro.cache.prefetcher import PrefetchCandidate, StridePrefetcher
from repro.errors import CoherenceError
from repro.mem.controller import MemoryController
from repro.mem.request import MemoryRequest, RequestKind
from repro.utils.events import Engine
from repro.utils.statistics import StatGroup


@dataclass
class _Waiter:
    """A demand access merged into an outstanding miss."""

    core_id: int
    offset: int
    size: int
    is_write: bool
    payload: bytes | None
    callback: Callable[[bytes], None] | None


@dataclass
class _Miss:
    """One outstanding fetch (MSHR entry)."""

    line_address: int
    pattern: int
    shuffled: bool
    alt_pattern: int
    demand: bool
    waiters: list[_Waiter] = field(default_factory=list)
    issued_at: int = 0


class CacheHierarchy:
    """L1s + shared L2 + miss handling over a memory controller."""

    def __init__(
        self,
        engine: Engine,
        controller: MemoryController,
        num_cores: int = 1,
        l1_size: int = 32 * 1024,
        l1_assoc: int = 8,
        l1_latency: int = 4,
        l2_size: int = 2 * 1024 * 1024,
        l2_assoc: int = 8,
        l2_latency: int = 12,
        prefetcher: StridePrefetcher | None = None,
    ) -> None:
        self.engine = engine
        self.controller = controller
        self.module = controller.module
        line_bytes = self.module.line_bytes
        self.line_bytes = line_bytes
        self.l1s = [
            Cache(f"l1_core{i}", l1_size, l1_assoc, line_bytes, l1_latency)
            for i in range(num_cores)
        ]
        self.l2 = Cache("l2", l2_size, l2_assoc, line_bytes, l2_latency)
        self.dbi = DirtyBlockIndex()
        self.prefetcher = prefetcher
        self._misses: dict[tuple[int, int], _Miss] = {}
        self.stats = StatGroup("hierarchy")
        #: Optional structured tracer (:mod:`repro.obs.tracer`); hooks
        #: live on miss paths only, so ``None`` costs one check there
        #: and nothing on the synchronous hit fast path.
        self.tracer = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _line_address(self, address: int) -> int:
        return address & ~(self.line_bytes - 1)

    def _row_key(self, line_address: int) -> tuple[int, int]:
        loc = self.module.decode(line_address)
        return (loc.bank, loc.row)

    def _mark_dirty(self, line_address: int, pattern: int) -> None:
        self.dbi.mark_dirty(self._row_key(line_address), (line_address, pattern))

    def _mark_clean(self, line_address: int, pattern: int) -> None:
        self.dbi.mark_clean(self._row_key(line_address), (line_address, pattern))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def access(
        self,
        core_id: int,
        address: int,
        *,
        size: int = 8,
        is_write: bool = False,
        payload: bytes | None = None,
        pattern: int = 0,
        shuffled: bool = False,
        alt_pattern: int = 0,
        pc: int = 0,
        start_time: int | None = None,
        callback: Callable[[bytes], None] | None = None,
    ) -> tuple[int, bytes] | None:
        """One load/store/pattload/pattstore.

        Returns ``(latency, data)`` synchronously on a cache hit, or
        ``None`` when the access misses — then ``callback(data)`` fires
        when the fill completes (read ``engine.now`` for the time).
        ``start_time`` is the logical issue time (>= engine.now).
        """
        if start_time is None:
            start_time = self.engine.now
        line_address = self._line_address(address)
        offset = address - line_address
        if offset + size > self.line_bytes:
            raise CoherenceError(
                f"access of {size} bytes crosses a line boundary",
                core=core_id,
                address=address,
                pattern=pattern,
                cycle=start_time,
            )
        if is_write and payload is not None and len(payload) != size:
            raise CoherenceError(
                f"payload size {len(payload)} != access size {size}",
                core=core_id,
                address=address,
                pattern=pattern,
                cycle=start_time,
            )

        l1 = self.l1s[core_id]
        line = l1.lookup(line_address, pattern)
        if line is not None:
            l1.stats.add("hits")
            if is_write:
                # Upgrade: a store hit on a (possibly shared) line must
                # invalidate other cores' copies before writing.
                self._snoop_flush(line_address, pattern, exclude_core=core_id,
                                  start_time=start_time, invalidate=True)
                self._apply_store(core_id, line, offset, payload, pattern,
                                  shuffled, alt_pattern, start_time)
            return (l1.hit_latency, line.read(offset, size))
        l1.stats.add("misses")
        if self.tracer is not None:
            self.tracer.instant(
                "cache", "l1_miss", start_time, tid=core_id,
                args={"address": address, "pattern": pattern,
                      "write": is_write},
            )
        # Train the prefetcher on L1 misses only (standard practice; also
        # keeps gathered-line streams from triggering bogus next-line
        # prefetches on their intra-line hit sequences).
        self._train_prefetcher(core_id, pc, address, pattern, shuffled,
                               alt_pattern, start_time)

        # Another core may hold a dirty copy (write-invalidate protocol).
        self._snoop_flush(line_address, pattern, exclude_core=core_id,
                          start_time=start_time, invalidate=is_write)

        l2_line = self.l2.lookup(line_address, pattern)
        if l2_line is not None:
            self.l2.stats.add("hits")
            data = bytearray(l2_line.data)
            new_line = self._fill_l1(core_id, line_address, pattern, data, start_time)
            if is_write:
                # Dirty L1 lines must not leave a stale L2 copy behind.
                self.l2.invalidate(line_address, pattern)
                self._apply_store(core_id, new_line, offset, payload, pattern,
                                  shuffled, alt_pattern, start_time)
            latency = l1.hit_latency + self.l2.hit_latency
            return (latency, new_line.read(offset, size))
        self.l2.stats.add("misses")

        waiter = _Waiter(core_id, offset, size, is_write, payload, callback)
        self._start_fetch(
            line_address, pattern, shuffled, alt_pattern, pc,
            demand=True, waiter=waiter, start_time=start_time, core_id=core_id,
        )
        return None

    def drain_dirty(self) -> int:
        """Functionally write back every dirty line (end-of-run check).

        Returns the number of lines written. Timing-free: used by tests
        and oracles that compare final DRAM state.
        """
        written = 0
        for cache in [*self.l1s, self.l2]:
            for line in cache.dirty_lines():
                self.module.write_line(
                    line.line_address, bytes(line.data), line.pattern,
                    shuffled=self._line_shuffled(line),
                )
                line.dirty = False
                self._mark_clean(line.line_address, line.pattern)
                written += 1
        return written

    # ------------------------------------------------------------------
    # Stores and pattern-overlap coherence (Section 4.1)
    # ------------------------------------------------------------------
    def _apply_store(
        self,
        core_id: int,
        line,
        offset: int,
        payload: bytes | None,
        pattern: int,
        shuffled: bool,
        alt_pattern: int,
        start_time: int,
    ) -> None:
        if payload is None:
            raise CoherenceError("store without payload")
        was_dirty = line.dirty
        line.write(offset, payload)
        line.annotation_shuffled = shuffled  # remembered for writeback
        if not was_dirty:
            self._mark_dirty(line.line_address, pattern)
        # A dirty L1 line must not coexist with an L2 copy.
        self.l2.invalidate(line.line_address, pattern)
        self._invalidate_overlaps(
            line.line_address, pattern, alt_pattern, shuffled, start_time
        )

    def _overlap_keys(
        self, line_address: int, pattern: int, alt_pattern: int
    ) -> list[tuple[int, int]]:
        """Line keys of the *other* pattern sharing data with this line."""
        other = alt_pattern if pattern == 0 else 0
        nonzero = pattern if pattern != 0 else alt_pattern
        if nonzero == 0 or not self.module.supports_patterns:
            return []
        loc = self.module.decode(line_address)
        columns = self.module.overlapping_columns(loc.column, nonzero)
        return [
            (self.module.mapping.encode(loc.bank, loc.row, column), other)
            for column in sorted(columns)
        ]

    def _invalidate_overlaps(
        self,
        line_address: int,
        pattern: int,
        alt_pattern: int,
        shuffled: bool,
        start_time: int,
    ) -> None:
        """On a store: invalidate overlapping other-pattern lines everywhere."""
        for other_address, other_pattern in self._overlap_keys(
            line_address, pattern, alt_pattern
        ):
            self._evict_everywhere(other_address, other_pattern, shuffled, start_time)

    def _flush_dirty_overlaps(
        self,
        line_address: int,
        pattern: int,
        alt_pattern: int,
        shuffled: bool,
        start_time: int,
    ) -> None:
        """Before a fetch: flush dirty overlapping other-pattern lines."""
        candidates = self._overlap_keys(line_address, pattern, alt_pattern)
        if not candidates:
            return
        row_key = self._row_key(line_address)
        dirty = self.dbi.dirty_overlaps(row_key, set(candidates))
        for other_address, other_pattern in dirty:
            self.stats.add("prefetch_flushes")
            self._evict_everywhere(other_address, other_pattern, shuffled, start_time)

    def _evict_everywhere(
        self, line_address: int, pattern: int, shuffled: bool, start_time: int
    ) -> None:
        """Invalidate (line, pattern) in every cache, writing back if dirty.

        L2 is flushed before L1s so the freshest copy (L1) lands last in
        DRAM.
        """
        flushed = False
        for cache in [self.l2, *self.l1s]:
            line = cache.invalidate(line_address, pattern)
            if line is None:
                continue
            self.stats.add("coherence_invalidations")
            if line.dirty:
                self._writeback(line, start_time)
                flushed = True
        if flushed:
            self.stats.add("coherence_flushes")

    def _snoop_flush(
        self,
        line_address: int,
        pattern: int,
        exclude_core: int,
        start_time: int,
        invalidate: bool,
    ) -> None:
        """Flush (and on stores, invalidate) other cores' copies."""
        for core_id, cache in enumerate(self.l1s):
            if core_id == exclude_core:
                continue
            line = cache.lookup(line_address, pattern, touch=False)
            if line is None:
                continue
            if line.dirty:
                # Migrate the dirty copy down: write back and drop it.
                cache.invalidate(line_address, pattern)
                self._writeback(line, start_time)
                self.stats.add("snoop_flushes")
            elif invalidate:
                cache.invalidate(line_address, pattern)
                self.stats.add("snoop_invalidations")

    # ------------------------------------------------------------------
    # Fills, evictions, writebacks
    # ------------------------------------------------------------------
    def _line_shuffled(self, line) -> bool:
        if line.annotation_shuffled is None:
            return self.module.supports_patterns
        return line.annotation_shuffled

    def _writeback(self, line, start_time: int) -> None:
        """Functionally persist a dirty line now; account a timed WRITE."""
        shuffled = self._line_shuffled(line)
        self.module.write_line(
            line.line_address, bytes(line.data), line.pattern, shuffled
        )
        self._mark_clean(line.line_address, line.pattern)
        self.stats.add("writebacks")
        request = MemoryRequest(
            address=line.line_address,
            kind=RequestKind.WRITE,
            pattern=line.pattern,
            shuffled=shuffled,
        )
        request.annotations["no_data"] = True
        self._submit(request, start_time)

    def _fill_l1(
        self, core_id: int, line_address: int, pattern: int, data: bytearray,
        start_time: int,
    ):
        l1 = self.l1s[core_id]
        victim = l1.fill(line_address, pattern, data)
        if victim is not None and victim.dirty:
            self._demote_dirty(victim, start_time)
        return l1.lookup(line_address, pattern, touch=False)

    def _demote_dirty(self, victim, start_time: int) -> None:
        """A dirty L1 victim falls into L2 (staying dirty)."""
        l2_victim = self.l2.fill(
            victim.line_address, victim.pattern, victim.data, dirty=True
        )
        # Preserve the shuffle flag for the eventual writeback.
        line = self.l2.lookup(victim.line_address, victim.pattern, touch=False)
        if line is not None:
            line.annotation_shuffled = self._line_shuffled(victim)
        if l2_victim is not None and l2_victim.dirty:
            self._writeback(l2_victim, start_time)

    def _fill_l2(self, line_address: int, pattern: int, data: bytearray,
                 shuffled: bool, start_time: int):
        victim = self.l2.fill(line_address, pattern, data)
        line = self.l2.lookup(line_address, pattern, touch=False)
        if line is not None:
            line.annotation_shuffled = shuffled
        if victim is not None and victim.dirty:
            self._writeback(victim, start_time)
        return line

    # ------------------------------------------------------------------
    # Miss path
    # ------------------------------------------------------------------
    def _start_fetch(
        self,
        line_address: int,
        pattern: int,
        shuffled: bool,
        alt_pattern: int,
        pc: int,
        demand: bool,
        waiter: _Waiter | None,
        start_time: int,
        core_id: int,
    ) -> None:
        key = (line_address, pattern)
        miss = self._misses.get(key)
        if miss is not None:
            if waiter is not None:
                miss.waiters.append(waiter)
                self.stats.add("mshr_merges")
            if demand:
                miss.demand = True
            return
        miss = _Miss(line_address, pattern, shuffled, alt_pattern, demand,
                     issued_at=start_time)
        if waiter is not None:
            miss.waiters.append(waiter)
        self._misses[key] = miss
        self._flush_dirty_overlaps(
            line_address, pattern, alt_pattern, shuffled, start_time
        )
        request = MemoryRequest(
            address=line_address,
            kind=RequestKind.READ if demand else RequestKind.PREFETCH,
            pattern=pattern,
            shuffled=shuffled,
            pc=pc,
            core_id=core_id,
            callback=self._fill_complete,
        )
        request.annotations["no_data"] = True
        request.annotations["miss_key"] = key
        self._submit(request, start_time)

    def _submit(self, request: MemoryRequest, start_time: int) -> None:
        if start_time > self.engine.now:
            self.engine.schedule_at(start_time, self.controller.submit, request)
        else:
            self.controller.submit(request)

    def _fill_complete(self, request: MemoryRequest) -> None:
        key = request.annotations["miss_key"]
        miss = self._misses.pop(key)
        data = bytearray(
            self.module.read_line(miss.line_address, miss.pattern, miss.shuffled)
        )
        now = self.engine.now
        if self.tracer is not None:
            self.tracer.complete(
                "mshr",
                "demand_fetch" if miss.demand else "prefetch_fetch",
                miss.issued_at,
                max(0, now - miss.issued_at),
                args={"line": miss.line_address, "pattern": miss.pattern,
                      "waiters": len(miss.waiters)},
            )
        self._fill_l2(miss.line_address, miss.pattern, data, miss.shuffled, now)
        if not miss.demand:
            self.stats.add("prefetch_fills")
        # Waiters are served in arrival order; `current` threads each
        # store's effect through to later waiters (two merged stores must
        # not clobber each other with the pristine fetched data).
        current = data
        for waiter in miss.waiters:
            line = self._fill_l1(
                waiter.core_id, miss.line_address, miss.pattern,
                bytearray(current), now,
            )
            if waiter.is_write:
                # Write-invalidate: earlier waiters' copies in other L1s
                # (and the L2 copy) must go before this store lands.
                self._snoop_flush(
                    miss.line_address, miss.pattern,
                    exclude_core=waiter.core_id, start_time=now,
                    invalidate=True,
                )
                self.l2.invalidate(miss.line_address, miss.pattern)
                self._apply_store(
                    waiter.core_id, line, waiter.offset, waiter.payload,
                    miss.pattern, miss.shuffled, miss.alt_pattern, now,
                )
                current = bytearray(line.data)
            if waiter.callback is not None:
                waiter.callback(line.read(waiter.offset, waiter.size))

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def _train_prefetcher(
        self,
        core_id: int,
        pc: int,
        address: int,
        pattern: int,
        shuffled: bool,
        alt_pattern: int,
        start_time: int,
    ) -> None:
        if self.prefetcher is None or pc == 0:
            return
        for candidate in self.prefetcher.observe(
            pc, address, pattern, shuffled, alt_pattern, core_id=core_id
        ):
            self._issue_prefetch(candidate, start_time)

    def _issue_prefetch(self, candidate: PrefetchCandidate, start_time: int) -> None:
        line_address = self._line_address(candidate.address)
        if line_address >= self.module.geometry.capacity_bytes:
            return
        if (line_address, candidate.pattern) in self._misses:
            return
        if self.l2.lookup(line_address, candidate.pattern, touch=False) is not None:
            return
        self.stats.add("prefetches_issued")
        self._start_fetch(
            line_address, candidate.pattern, candidate.shuffled,
            candidate.alt_pattern, pc=0, demand=False, waiter=None,
            start_time=start_time, core_id=0,
        )
