"""Cache line with a pattern-extended tag (paper Section 4.1).

A GS-DRAM system identifies a cached line by *(line address, pattern
ID)*: the same DRAM column fetched with different patterns yields
different (partially overlapping) data, so the pattern ID is part of
the tag. Pattern 0 lines are ordinary cache lines.
"""

from __future__ import annotations


class CacheLine:
    """One resident cache line; presence in its set implies validity."""

    __slots__ = ("line_address", "pattern", "data", "dirty", "last_touch", "annotation_shuffled")

    def __init__(
        self,
        line_address: int,
        pattern: int,
        data: bytearray,
        dirty: bool = False,
    ) -> None:
        self.line_address = line_address
        self.pattern = pattern
        self.data = data
        self.dirty = dirty
        self.last_touch = 0
        self.annotation_shuffled: bool | None = None

    @property
    def key(self) -> tuple[int, int]:
        """The full tag: (line address, pattern ID)."""
        return (self.line_address, self.pattern)

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` within the line."""
        return bytes(self.data[offset : offset + size])

    def write(self, offset: int, payload: bytes) -> None:
        """Write ``payload`` at ``offset`` and mark the line dirty."""
        self.data[offset : offset + len(payload)] = payload
        self.dirty = True

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return f"CacheLine({self.line_address:#x}, patt={self.pattern}, {state})"
