"""PC-based stride prefetcher [Baer & Chen], degree 4 (Section 5.1).

The paper's analytics evaluation uses "a PC-based stride prefetcher
(with prefetching degree of 4) that prefetches data into the L2
cache". Each static load PC gets a table entry tracking its last
address and stride with a two-bit confidence state; once confident, the
prefetcher emits ``degree`` prefetch candidates ahead of the demand
stream.

Prefetches inherit the demand access's pattern ID: a strided pattload
stream prefetches *gathered* lines, which is precisely how GS-DRAM and
a column store both enjoy prefetching in Figure 10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.statistics import StatGroup


class _State(enum.Enum):
    INITIAL = 0
    TRANSIENT = 1
    STEADY = 2
    NO_PRED = 3


@dataclass
class _Entry:
    last_address: int
    stride: int = 0
    state: _State = _State.INITIAL


@dataclass(frozen=True)
class PrefetchCandidate:
    """One address the prefetcher wants in L2, with its access context."""

    address: int
    pattern: int
    shuffled: bool
    alt_pattern: int


class StridePrefetcher:
    """Reference-prediction-table stride prefetcher."""

    def __init__(self, degree: int = 4, table_size: int = 256,
                 line_bytes: int = 64) -> None:
        self.degree = degree
        self.table_size = table_size
        self.line_bytes = line_bytes
        self._table: dict[tuple[int, int], _Entry] = {}
        self.stats = StatGroup("prefetcher")

    def observe(
        self,
        pc: int,
        address: int,
        pattern: int,
        shuffled: bool,
        alt_pattern: int,
        core_id: int = 0,
    ) -> list[PrefetchCandidate]:
        """Train on a demand access; return prefetch candidates (if any).

        The table is keyed by (core, pc): each core has its own view of
        a static instruction's stride, as per-core hardware would.
        """
        key = (core_id, pc)
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self.table_size:
                # Evict an arbitrary (oldest-inserted) entry.
                self._table.pop(next(iter(self._table)))
            self._table[key] = _Entry(last_address=address)
            return []

        # Baer-Chen reference prediction table transitions. On a match:
        # INITIAL/TRANSIENT -> STEADY, NO_PRED -> TRANSIENT (a mispredicted
        # entry needs the full three confirmations before bursting again).
        # On a mismatch: INITIAL -> TRANSIENT, TRANSIENT -> NO_PRED,
        # STEADY -> INITIAL (the learned stride keeps one chance to
        # recover from a lone irregular access, so it is not overwritten).
        stride = address - entry.last_address
        if stride == entry.stride and stride != 0:
            if entry.state in (_State.INITIAL, _State.TRANSIENT):
                entry.state = _State.STEADY
            elif entry.state is _State.NO_PRED:
                entry.state = _State.TRANSIENT
        else:
            if entry.state is _State.STEADY:
                entry.state = _State.INITIAL
                entry.last_address = address
                return []
            if entry.state is _State.INITIAL:
                entry.state = _State.TRANSIENT
            else:
                entry.state = _State.NO_PRED
            entry.stride = stride
            entry.last_address = address
            return []
        entry.stride = stride
        entry.last_address = address

        if entry.state is not _State.STEADY:
            return []
        self.stats.add("predictions")
        # Sub-line strides are a stream sweeping consecutive cache lines;
        # prefetch at line granularity so the lookahead depth (in lines)
        # matches what the same prefetcher achieves on larger strides.
        if 0 < abs(stride) < self.line_bytes:
            step = self.line_bytes if stride > 0 else -self.line_bytes
            base = address - (address % self.line_bytes)
        else:
            step = stride
            base = address
        candidates = []
        for k in range(1, self.degree + 1):
            target = base + step * k
            if target < 0:
                break
            candidates.append(
                PrefetchCandidate(
                    address=target,
                    pattern=pattern,
                    shuffled=shuffled,
                    alt_pattern=alt_pattern,
                )
            )
        self.stats.add("candidates", len(candidates))
        return candidates
