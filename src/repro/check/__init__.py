"""Correctness tooling: differential oracle + property-fuzzing (PR 1).

The paper's claims rest on two invariants — column-ID shuffling is a
bijection per cache line, and CTL translation gathers exactly the
stride family of each pattern — but the timed machine layers caches,
coherence, and scheduling on top of them, so a regression anywhere can
silently corrupt results. This package provides:

- :mod:`repro.check.oracle` — a flat functional memory model that
  executes the same instruction stream as :class:`repro.sim.System`
  with no timing, caches, or shuffle machinery (ground truth);
- :mod:`repro.check.differential` — a runner that drives the system
  and the oracle side by side on a trace and diffs per-access values
  and final memory images;
- :mod:`repro.check.invariants` — reusable checkers (shuffle
  bijectivity, CTL gather-set correctness, DRAM timing-accounting
  conservation, energy sanity) callable from tests and the
  ``repro-check`` CLI;
- :mod:`repro.check.strategies` — seeded random trace generation plus
  Hypothesis strategies for property tests;
- :mod:`repro.check.fastpath` — event-vs-fast equivalence battery
  asserting the timing-free substrate (:mod:`repro.vec`) reproduces
  the event machine's functional results bit for bit.
"""

from repro.check.differential import (
    DifferentialReport,
    Mismatch,
    differential_configs,
    run_differential,
    run_trace,
)
from repro.check.fastpath import (
    FUNCTIONAL_FIELDS,
    FastPathDivergence,
    FastPathReport,
    fast_configs,
    run_fastpath,
    run_grid_equivalence,
    run_sweep_equivalence,
    run_trace_equivalence,
)
from repro.check.inference import InferenceReport, run_inference_check
from repro.check.invariants import (
    InvariantReport,
    Violation,
    check_ctl_translation,
    check_energy_sanity,
    check_shuffle_bijectivity,
    check_timing_conservation,
    run_all_invariants,
)
from repro.check.oracle import MemoryOracle
from repro.check.strategies import RegionSpec, TraceOp, TraceSpec, random_trace

__all__ = [
    "DifferentialReport",
    "FUNCTIONAL_FIELDS",
    "FastPathDivergence",
    "FastPathReport",
    "InferenceReport",
    "InvariantReport",
    "MemoryOracle",
    "Mismatch",
    "RegionSpec",
    "TraceOp",
    "TraceSpec",
    "Violation",
    "check_ctl_translation",
    "check_energy_sanity",
    "check_shuffle_bijectivity",
    "check_timing_conservation",
    "differential_configs",
    "fast_configs",
    "random_trace",
    "run_all_invariants",
    "run_differential",
    "run_fastpath",
    "run_grid_equivalence",
    "run_inference_check",
    "run_sweep_equivalence",
    "run_trace",
    "run_trace_equivalence",
]
