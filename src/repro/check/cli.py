"""``repro-check``: run the invariant battery + differential fuzzing.

Entry points:

- ``python -m repro check [options]``
- the ``repro-check`` console script

Runs every invariant checker and a seeded differential sweep, prints
one report per checker, and exits non-zero on any violation — suitable
as a CI gate and as a pre-flight before refactoring hot paths.
"""

from __future__ import annotations

import argparse

from repro.check.differential import run_differential
from repro.check.fastpath import run_fastpath
from repro.check.invariants import run_all_invariants

#: Stage names accepted as positional selectors (``repro check
#: inference`` runs just that battery).
STAGES = ("invariants", "differential", "fastpath", "oracles", "service",
          "cluster", "inference", "pim")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="GS-DRAM correctness battery: invariants + differential fuzzing",
    )
    parser.add_argument(
        "stages", nargs="*", choices=[[], *STAGES],
        help="run only the named stages (default: all, minus --skip-*); "
             f"stages: {', '.join(STAGES)}",
    )
    parser.add_argument(
        "--traces", type=int, default=16,
        help="randomized traces per machine configuration (default: 16)",
    )
    parser.add_argument(
        "--seed", type=int, default=2015,
        help="base seed for trace generation (default: 2015)",
    )
    parser.add_argument(
        "--max-ops", type=int, default=48,
        help="maximum operations per trace (default: 48)",
    )
    parser.add_argument(
        "--skip-differential", action="store_true",
        help="run only the invariant checkers",
    )
    parser.add_argument(
        "--skip-invariants", action="store_true",
        help="run only the differential sweep",
    )
    parser.add_argument(
        "--skip-fastpath", action="store_true",
        help="skip the event-vs-fast equivalence battery",
    )
    parser.add_argument(
        "--skip-oracles", action="store_true",
        help="skip the scalar-vs-vectorized oracle differential",
    )
    parser.add_argument(
        "--skip-service", action="store_true",
        help="skip the submitted-vs-direct service differential",
    )
    parser.add_argument(
        "--service-lines", type=int, default=64,
        help="patternscan size for the service differential (default: 64)",
    )
    parser.add_argument(
        "--skip-cluster", action="store_true",
        help="skip the sharded-cluster-vs-direct differential",
    )
    parser.add_argument(
        "--skip-inference", action="store_true",
        help="skip the inference-family differential battery",
    )
    parser.add_argument(
        "--skip-pim", action="store_true",
        help="skip the in-DRAM compute (MRA/SHIFT) battery",
    )
    parser.add_argument(
        "--list-stages", action="store_true",
        help="print the stage names, one per line, and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_stages:
        for stage in STAGES:
            print(stage)
        return 0
    failures = 0

    def wants(stage: str) -> bool:
        if args.stages:
            return stage in args.stages
        return not getattr(args, f"skip_{stage}")

    if wants("invariants"):
        for report in run_all_invariants():
            print(report.render())
            if not report.ok:
                failures += len(report.violations)

    if wants("differential"):
        report = run_differential(
            traces_per_config=args.traces,
            seed=args.seed,
            max_ops=args.max_ops,
        )
        print(report.render())
        if not report.ok:
            failures += len(report.mismatches)

    if wants("fastpath"):
        report = run_fastpath(
            traces_per_config=max(1, args.traces // 2),
            seed=args.seed,
            max_ops=args.max_ops,
        )
        print(report.render())
        if not report.ok:
            failures += len(report.divergences)

    if wants("oracles"):
        from repro.check.oracles import run_oracles

        report = run_oracles(seed=args.seed)
        print(report.render())
        if not report.ok:
            failures += len(report.divergences)

    if wants("service"):
        from repro.check.service import run_service_check

        report = run_service_check(lines=args.service_lines)
        print(report.render())
        if not report.ok:
            failures += len(report.divergences)

    if wants("cluster"):
        from repro.check.cluster import run_cluster_check

        report = run_cluster_check(lines=args.service_lines)
        print(report.render())
        if not report.ok:
            failures += len(report.divergences)

    if wants("inference"):
        from repro.check.inference import run_inference_check

        report = run_inference_check()
        print(report.render())
        if not report.ok:
            failures += len(report.divergences)

    if wants("pim"):
        from repro.check.pim import run_pim_check

        report = run_pim_check(seed=args.seed)
        print(report.render())
        if not report.ok:
            failures += len(report.divergences)

    if failures:
        print(f"repro-check: FAILED ({failures} violations)")
        return 1
    print("repro-check: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
