"""Cluster-level differential: sharded execution changes nothing.

The cluster layer (:mod:`repro.serve.cluster`) re-routes, steals,
speculates, and re-executes work; none of that may change a single
result bit. :func:`run_cluster_check` executes one fig7-style sweep
three ways and requires digest-identical records:

- **direct** — every spec through :func:`repro.perf.specs.execute_spec`
  in this process (the ground truth);
- **cluster** — the same sweep through a :class:`LocalCluster` of
  stock workers driven by a :class:`ClusterCoordinator`;
- **cluster under fire** — the sweep again on a fresh fleet, with one
  worker killed (simulated crash: no drain, no journal flush) right
  after it accepts its first job. The coordinator must detect the
  death, resubmit the dead worker's jobs elsewhere, and still produce
  the direct digests.

Digest equality uses :func:`repro.serve.protocol.result_digest`, the
same pinned-pickle digest the single-server differential
(:mod:`repro.check.service`) uses — so the whole stack from in-process
call to crash-tolerant sharded sweep is held to one oracle.

Wired into ``repro check`` (skippable with ``--skip-cluster``) and the
CI cluster-smoke job.
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, field

from repro.perf.cache import ResultCache
from repro.perf.specs import RunSpec, cache_key, execute_spec
from repro.serve.cluster import LocalCluster
from repro.serve.protocol import result_digest
from repro.serve.server import ServeConfig


@dataclass
class ClusterDivergence:
    label: str
    detail: str

    def render(self) -> str:
        return f"  {self.label}: {self.detail}"


@dataclass
class ClusterReportCard:
    checks: int = 0
    divergences: list[ClusterDivergence] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"[cluster] sharded-vs-direct differential: {status} "
            f"({self.checks} checks, {len(self.divergences)} divergences)"
        ]
        if self.stats:
            lines.append(
                "  under fire: "
                f"deaths_survived={self.stats.get('replacements', 0) > 0}, "
                f"resubmissions={self.stats.get('replacements', 0)}, "
                f"submitted={self.stats.get('submitted', 0)}"
            )
        lines.extend(d.render() for d in self.divergences)
        return "\n".join(lines)


def _sweep_specs(lines: int) -> list[RunSpec]:
    """A small fig7-style sweep across both variants and substrates."""
    return [
        RunSpec(
            kind="patternscan",
            params={"variant": variant, "stride": stride, "lines": lines},
            mode=mode,
        )
        for variant in ("scalar", "gathered")
        for stride in (2, 4, 8)
        for mode in ("fast", "event")
    ]


def _worker_config() -> ServeConfig:
    return ServeConfig(
        port=0, executor="thread", workers=1, state_dir=None,
        max_inflight=10_000, request_log=False,
    )


def _compare(
    report: ClusterReportCard,
    label: str,
    specs: list[RunSpec],
    expected: dict[str, str],
    cluster_report,
) -> None:
    for spec, record in zip(specs, cluster_report.records):
        report.checks += 1
        key = cache_key(spec)
        want = expected[key]
        if record is None:
            report.divergences.append(ClusterDivergence(
                label, f"no record for {spec.params} mode={spec.mode}"
            ))
            continue
        got = result_digest(record)
        if got != want:
            report.divergences.append(ClusterDivergence(
                label,
                f"digest mismatch for {spec.params} mode={spec.mode}: "
                f"direct={want[:16]} cluster={got[:16]}",
            ))


def run_cluster_check(
    lines: int = 64, workers: int = 3
) -> ClusterReportCard:
    """The three-way battery; returns a report suitable for ``repro check``."""
    report = ClusterReportCard()
    specs = _sweep_specs(lines)
    expected = {cache_key(s): result_digest(execute_spec(s)) for s in specs}

    # Healthy fleet.
    with tempfile.TemporaryDirectory(prefix="repro-cluster-check") as tmp:
        cache = ResultCache(f"{tmp}/cache")
        with LocalCluster(workers, cache=cache,
                          config=_worker_config()) as fleet:
            healthy = fleet.coordinator(poll=0.02).run_sweep(specs)
        _compare(report, "healthy", specs, expected, healthy)

    # Same sweep, one worker assassinated after its first acceptance.
    with tempfile.TemporaryDirectory(prefix="repro-cluster-check") as tmp:
        cache = ResultCache(f"{tmp}/cache")
        with LocalCluster(workers, cache=cache,
                          config=_worker_config()) as fleet:
            killed: list[str] = []
            lock = threading.Lock()

            def assassin(worker: str, job_id: str, key: str) -> None:
                with lock:
                    if killed:
                        return
                    killed.append(worker)
                index = int(worker.rsplit("-", 1)[1])
                # Kill from another thread: kill() joins the worker
                # thread, and the coordinator must keep driving the
                # sweep while the crash is in progress.
                threading.Thread(
                    target=fleet.kill_worker, args=(index,), daemon=True
                ).start()

            coordinator = fleet.coordinator(
                poll=0.02, after_submit=assassin
            )
            under_fire = coordinator.run_sweep(specs)
        _compare(report, "worker-killed", specs, expected, under_fire)
        report.stats = under_fire.stats
        report.checks += 1
        if not killed:
            report.divergences.append(ClusterDivergence(
                "worker-killed", "assassin hook never fired"
            ))
    return report
