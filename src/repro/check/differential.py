"""Differential execution: the timed machine vs the flat oracle.

:func:`run_trace` materialises one :class:`~repro.check.strategies.TraceSpec`
against a full :class:`repro.sim.System` (cores, caches, pattern-overlap
coherence, memory controller, DRAM timing) and against the
:class:`~repro.check.oracle.MemoryOracle` (flat memory, zero machinery),
then diffs three observables:

1. **per-access gathered values** — every load's bytes, in program
   order per core (the oracle is sequential; regions are single-owner,
   so per-core program order is the architectural order);
2. **final memory images** — every region's bytes after the run, with
   dirty cache lines drained (this exercises writeback paths and the
   Section 4.1 overlap invalidations: a pattstore must be visible to a
   later pattern-0 read and vice versa);
3. **clean completion** — any :class:`repro.errors.ReproError` escaping
   the timed machine while the oracle executed the same trace cleanly
   is itself a divergence.

Each mismatch is wrapped in a :class:`repro.errors.DivergenceError`
carrying structured context (cycle, core, address, pattern), so a
failing run reports *where* the machines diverged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.check.oracle import MemoryOracle
from repro.check.strategies import TraceSpec, random_trace
from repro.cpu.isa import Compute, Load, Store
from repro.dram.address import Geometry
from repro.errors import DivergenceError, ReproError
from repro.sim.config import SystemConfig, table1_config
from repro.sim.system import System


@dataclass
class Mismatch:
    """One observed divergence between the system and the oracle."""

    kind: str  # "load-value" | "memory-image" | "exception" | "shortfall"
    error: DivergenceError

    def render(self) -> str:
        return f"{self.kind}: {self.error}"


@dataclass
class DifferentialReport:
    """Aggregated outcome of one or more differential runs."""

    traces: int = 0
    accesses_compared: int = 0
    bytes_compared: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge(self, other: "DifferentialReport") -> None:
        self.traces += other.traces
        self.accesses_compared += other.accesses_compared
        self.bytes_compared += other.bytes_compared
        self.mismatches.extend(other.mismatches)

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        lines = [
            f"differential: {self.traces} traces, "
            f"{self.accesses_compared} loads and {self.bytes_compared} "
            f"memory bytes compared, {status}"
        ]
        lines.extend(f"  {m.render()}" for m in self.mismatches[:20])
        return "\n".join(lines)


def _initial_bytes(seed: int, region_index: int, size: int) -> bytes:
    """Deterministic initial contents for one region."""
    return random.Random((seed << 8) ^ region_index).randbytes(size)


def run_trace(config: SystemConfig, trace: TraceSpec) -> DifferentialReport:
    """Drive ``config``'s machine and the oracle through one trace."""
    report = DifferentialReport(traces=1)
    system = System(config)
    oracle = MemoryOracle.from_config(config)
    line_bytes = system.module.line_bytes

    bases = []
    for index, region in enumerate(trace.regions):
        base = system.pattmalloc(
            region.lines * line_bytes,
            shuffle=region.shuffled,
            pattern=region.alt_pattern,
        )
        data = _initial_bytes(trace.seed, index, region.lines * line_bytes)
        system.mem_write(base, data)
        oracle.write(base, data)
        bases.append(base)

    # Oracle pass: sequential per core, program order. Regions are
    # single-owner, so this is the architectural order of each access.
    expected: list[list[bytes]] = [[] for _ in range(trace.cores)]
    for core in range(trace.cores):
        for op in trace.ops_for_core(core):
            if op.kind == "compute":
                continue
            region = trace.regions[op.region]
            address = bases[op.region] + op.line * line_bytes + op.offset
            if op.kind == "load":
                expected[core].append(
                    oracle.load(address, op.size, op.pattern, region.shuffled)
                )
            else:
                oracle.store(address, op.payload, op.pattern, region.shuffled)

    # Timed pass: one instruction stream per core, loads record their
    # value and completion cycle.
    observed: list[list[tuple[bytes, int, int, int]]] = [
        [] for _ in range(trace.cores)
    ]

    def materialise(core: int):
        engine = system.engine
        for op in trace.ops_for_core(core):
            if op.kind == "compute":
                yield Compute(op.cycles)
                continue
            address = bases[op.region] + op.line * line_bytes + op.offset
            if op.kind == "load":
                record = observed[core].append
                yield Load(
                    address,
                    size=op.size,
                    pattern=op.pattern,
                    on_value=lambda data, a=address, p=op.pattern: record(
                        (data, engine.now, a, p)
                    ),
                )
            else:
                yield Store(address, op.payload, pattern=op.pattern)

    try:
        system.run([materialise(core) for core in range(trace.cores)])
    except ReproError as error:
        report.mismatches.append(
            Mismatch(
                "exception",
                DivergenceError(
                    f"timed machine raised {type(error).__name__}: {error}",
                    cycle=system.engine.now,
                    seed=trace.seed,
                ),
            )
        )
        return report

    # 1. Per-access load values.
    for core in range(trace.cores):
        want, got = expected[core], observed[core]
        if len(got) != len(want):
            report.mismatches.append(
                Mismatch(
                    "shortfall",
                    DivergenceError(
                        f"core completed {len(got)} of {len(want)} loads",
                        core=core,
                        seed=trace.seed,
                    ),
                )
            )
            continue
        for index, (reference, (data, cycle, address, pattern)) in enumerate(
            zip(want, got)
        ):
            report.accesses_compared += 1
            if data != reference:
                report.mismatches.append(
                    Mismatch(
                        "load-value",
                        DivergenceError(
                            f"load #{index} returned {data.hex()} "
                            f"(oracle: {reference.hex()})",
                            cycle=cycle,
                            core=core,
                            address=address,
                            pattern=pattern,
                            seed=trace.seed,
                        ),
                    )
                )

    # 2. Final memory images (drains dirty cache lines first).
    for index, region in enumerate(trace.regions):
        size = region.lines * line_bytes
        machine = system.mem_read(bases[index], size)
        reference = oracle.read(bases[index], size)
        report.bytes_compared += size
        if machine != reference:
            first = next(
                offset
                for offset, (a, b) in enumerate(zip(machine, reference))
                if a != b
            )
            report.mismatches.append(
                Mismatch(
                    "memory-image",
                    DivergenceError(
                        f"region {index} differs "
                        f"(machine {machine[first]:#04x} vs oracle "
                        f"{reference[first]:#04x})",
                        address=bases[index] + first,
                        pattern=region.alt_pattern,
                        core=region.owner,
                        seed=trace.seed,
                    ),
                )
            )
    return report


def differential_configs() -> list[SystemConfig]:
    """The checker's standard sweep: ≥3 geometries × machine variants.

    Small caches force evictions, writebacks, and coherence traffic;
    the variants cover both schedulers, the prefetcher, the store
    buffer, closed-page mode, partial shuffle stages, and two cores.
    """
    geometries = {
        8: Geometry(chips=8, banks=2, rows_per_bank=32, columns_per_row=16),
        4: Geometry(chips=4, banks=2, rows_per_bank=32, columns_per_row=16),
        2: Geometry(chips=2, banks=2, rows_per_bank=64, columns_per_row=16),
    }
    small_caches = dict(l1_size=1024, l1_assoc=2, l2_size=4096, l2_assoc=4)
    configs = []
    for chips, geometry in geometries.items():
        stages = chips.bit_length() - 1
        base = table1_config(
            geometry=geometry,
            shuffle_stages=stages,
            pattern_bits=stages,
            **small_caches,
        )
        configs.append(base)
        configs.append(base.with_(prefetch=True))
        configs.append(base.with_(store_buffer=4, open_row_policy=False))
        configs.append(base.with_(cores=2))
    # Partial shuffle stages: the oracle models the reduced shuffle too.
    partial = table1_config(
        geometry=geometries[8],
        shuffle_stages=2,
        pattern_bits=2,
        **small_caches,
    )
    configs.append(partial)
    return configs


def run_differential(
    traces_per_config: int = 20,
    seed: int = 2015,
    configs: list[SystemConfig] | None = None,
    max_ops: int = 48,
) -> DifferentialReport:
    """Run the standard differential sweep; returns the merged report."""
    configs = differential_configs() if configs is None else configs
    report = DifferentialReport()
    for config_index, config in enumerate(configs):
        for trace_index in range(traces_per_config):
            trace_seed = seed + 10_000 * config_index + trace_index
            trace = random_trace(trace_seed, config, max_ops=max_ops)
            report.merge(run_trace(config, trace))
    return report
