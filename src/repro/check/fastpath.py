"""Fast-path equivalence: the timing-free substrate vs the event machine.

The fast path (:mod:`repro.vec`) claims *bit-identical functional
results* on its supported configurations — not approximately equal, not
statistically close. This module makes that claim falsifiable on three
levels, mirroring how the differential oracle treats the timed machine:

1. **Random traces** (:func:`run_trace_pair`) — the differential
   generator's traces run on :class:`repro.sim.System` and
   :class:`repro.vec.fastpath.FastSystem` side by side; every loaded
   value, the final memory images, the functional result fields, and
   the full controller / cache statistic dictionaries must be equal.
2. **Pattern sweep** (:func:`run_sweep_equivalence`) — the fig7-style
   strided-scan sweep in both :func:`repro.harness.patternscan` modes;
   hit/miss totals, gathered-value digests, and per-bank row-locality
   profiles must be equal.
3. **Ablation grid** (:func:`run_grid_equivalence`) — an abl-3-shaped
   transactions + analytics grid across layouts and table sizes, run
   through the real drivers in both modes; functional counts, *every
   per-component statistic* (controller / L1 / L2 / hierarchy / DBI),
   and verified answers must be equal. A divergence names the first
   differing key path (``component.stat: event=... fast=...``), not a
   bare digest mismatch.
4. **Figure grids** (:func:`run_figure_grid_equivalence`) — every
   fig9/fig10/fig11/fig13 RunSpec from :func:`figure_specs` at a small
   scale, each fast spec paired with its event-mode twin through
   :func:`execute_spec`, compared with the same full stat-dict battery.

:func:`run_fastpath` bundles the four for the ``repro-check`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.differential import differential_configs, _initial_bytes
from repro.check.strategies import TraceSpec, random_trace
from repro.cpu.isa import Compute, Load, Store
from repro.db.engine import run_analytics, run_transactions
from repro.db.workload import AnalyticsQuery, TransactionMix
from repro.errors import ReproError
from repro.harness.common import Scale
from repro.perf.specs import make_layout
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.vec.fastpath import FastSystem, fast_supported

#: RunResult fields the fast path must reproduce exactly. Timing
#: outputs (cycles, energy, queue delays, engine events) are excluded
#: by design: the fast path defines them as zero.
FUNCTIONAL_FIELDS = (
    "instructions",
    "loads",
    "stores",
    "l1_hits",
    "l1_misses",
    "l2_hits",
    "l2_misses",
    "dram_reads",
    "dram_writes",
    "row_hits",
    "row_misses",
    "prefetches",
    "coherence_invalidations",
    "writebacks",
)


@dataclass
class FastPathDivergence:
    """One observed event-vs-fast difference."""

    where: str  # which comparison (trace/sweep/grid + point label)
    what: str  # which observable differed, with both values

    def render(self) -> str:
        return f"{self.where}: {self.what}"


@dataclass
class FastPathReport:
    """Aggregated outcome of the fast-path equivalence battery."""

    runs: int = 0
    values_compared: int = 0
    fields_compared: int = 0
    divergences: list[FastPathDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def merge(self, other: "FastPathReport") -> None:
        self.runs += other.runs
        self.values_compared += other.values_compared
        self.fields_compared += other.fields_compared
        self.divergences.extend(other.divergences)

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        lines = [
            f"fastpath: {self.runs} event/fast run pairs, "
            f"{self.values_compared} values and {self.fields_compared} "
            f"stat fields compared, {status}"
        ]
        lines.extend(f"  {d.render()}" for d in self.divergences[:20])
        return "\n".join(lines)


def _compare_result_fields(
    where: str, event_result, fast_result, report: FastPathReport
) -> None:
    for name in FUNCTIONAL_FIELDS:
        report.fields_compared += 1
        a, b = getattr(event_result, name), getattr(fast_result, name)
        if a != b:
            report.divergences.append(
                FastPathDivergence(where, f"{name}: event={a} fast={b}")
            )


def _compare_stat_dicts(
    where: str, component: str, event_stats: dict, fast_stats: dict,
    report: FastPathReport,
) -> None:
    for key in sorted(set(event_stats) | set(fast_stats)):
        report.fields_compared += 1
        a, b = event_stats.get(key, 0), fast_stats.get(key, 0)
        if a != b:
            report.divergences.append(
                FastPathDivergence(
                    where, f"{component}.{key}: event={a} fast={b}"
                )
            )


#: Component stat dicts captured by the drivers (see
#: :func:`repro.vec.shim.component_snapshot`).
STAT_COMPONENTS = ("controller", "l1", "l2", "hierarchy", "dbi")

_MISSING = object()


def _compare_records(where: str, event_record, fast_record,
                     report: FastPathReport) -> None:
    """Full battery over two driver records: result fields, every
    per-component statistic, and the functional outputs."""
    _compare_result_fields(where, event_record.result, fast_record.result,
                           report)
    event_stats = getattr(event_record, "component_stats", None)
    fast_stats = getattr(fast_record, "component_stats", None)
    if event_stats is None or fast_stats is None:
        report.divergences.append(
            FastPathDivergence(
                where,
                "component_stats: "
                f"event={'present' if event_stats else 'missing'} "
                f"fast={'present' if fast_stats else 'missing'}",
            )
        )
    else:
        for component in STAT_COMPONENTS:
            _compare_stat_dicts(
                where, component,
                event_stats.get(component, {}),
                fast_stats.get(component, {}),
                report,
            )
    for name in ("verified", "answer"):
        a = getattr(event_record, name, _MISSING)
        b = getattr(fast_record, name, _MISSING)
        if a is _MISSING and b is _MISSING:
            continue
        report.values_compared += 1
        if a != b:
            report.divergences.append(
                FastPathDivergence(where, f"{name}: event={a} fast={b}")
            )


def fast_configs() -> list[SystemConfig]:
    """The fast-compatible subset of the differential config sweep."""
    return [c for c in differential_configs() if fast_supported(c)]


# ----------------------------------------------------------------------
# 1. Random traces: System vs FastSystem, full-state comparison
# ----------------------------------------------------------------------
def run_trace_pair(config: SystemConfig, trace: TraceSpec) -> FastPathReport:
    """Run one trace on both substrates and diff everything observable."""
    report = FastPathReport(runs=1)
    where = f"trace seed={trace.seed}"

    def execute(system):
        line_bytes = system.module.line_bytes
        bases = []
        for index, region in enumerate(trace.regions):
            base = system.pattmalloc(
                region.lines * line_bytes,
                shuffle=region.shuffled,
                pattern=region.alt_pattern,
            )
            system.mem_write(
                base, _initial_bytes(trace.seed, index, region.lines * line_bytes)
            )
            bases.append(base)
        loaded: list[bytes] = []

        def ops():
            for op in trace.ops_for_core(0):
                if op.kind == "compute":
                    yield Compute(op.cycles)
                    continue
                address = bases[op.region] + op.line * line_bytes + op.offset
                if op.kind == "load":
                    yield Load(address, size=op.size, pattern=op.pattern,
                               on_value=loaded.append)
                else:
                    yield Store(address, op.payload, pattern=op.pattern)

        result = system.run([ops()])
        images = [
            system.mem_read(base, region.lines * line_bytes)
            for base, region in zip(bases, trace.regions)
        ]
        stats = {
            "controller": dict(system.controller.stats.as_dict()),
            "l1": dict(system.hierarchy.l1s[0].stats.as_dict()),
            "l2": dict(system.hierarchy.l2.stats.as_dict()),
            "hierarchy": dict(system.hierarchy.stats.as_dict()),
        }
        return result, loaded, images, stats

    try:
        event_result, event_loaded, event_images, event_stats = execute(
            System(config)
        )
        fast_result, fast_loaded, fast_images, fast_stats = execute(
            FastSystem(config)
        )
    except ReproError as error:
        report.divergences.append(
            FastPathDivergence(
                where, f"raised {type(error).__name__}: {error}"
            )
        )
        return report

    if len(event_loaded) != len(fast_loaded):
        report.divergences.append(
            FastPathDivergence(
                where,
                f"load count: event={len(event_loaded)} fast={len(fast_loaded)}",
            )
        )
    else:
        for index, (a, b) in enumerate(zip(event_loaded, fast_loaded)):
            report.values_compared += 1
            if a != b:
                report.divergences.append(
                    FastPathDivergence(
                        where,
                        f"load #{index}: event={a.hex()} fast={b.hex()}",
                    )
                )
    for index, (a, b) in enumerate(zip(event_images, fast_images)):
        report.values_compared += 1
        if a != b:
            report.divergences.append(
                FastPathDivergence(where, f"memory image of region {index}")
            )
    _compare_result_fields(where, event_result, fast_result, report)
    for component in ("controller", "l1", "l2", "hierarchy"):
        _compare_stat_dicts(
            where, component, event_stats[component], fast_stats[component],
            report,
        )
    return report


def run_trace_equivalence(
    traces_per_config: int = 8,
    seed: int = 4811,
    max_ops: int = 48,
    configs: list[SystemConfig] | None = None,
) -> FastPathReport:
    """Random-trace stage over every fast-compatible config."""
    configs = fast_configs() if configs is None else configs
    report = FastPathReport()
    for config_index, config in enumerate(configs):
        for trace_index in range(traces_per_config):
            trace_seed = seed + 10_000 * config_index + trace_index
            trace = random_trace(trace_seed, config, max_ops=max_ops)
            report.merge(run_trace_pair(config, trace))
    return report


# ----------------------------------------------------------------------
# 2. Pattern sweep: run_patternscan in both modes
# ----------------------------------------------------------------------
def run_sweep_equivalence(lines: int = 256) -> FastPathReport:
    """The fig7-style strided sweep: counts, values digest, row profile."""
    from repro.harness.patternscan import SWEEP_STRIDES, VARIANTS, run_patternscan

    report = FastPathReport()
    for variant in VARIANTS:
        for stride in SWEEP_STRIDES:
            report.runs += 1
            where = f"sweep {variant} stride={stride}"
            event = run_patternscan(variant, stride, lines=lines, mode="event")
            fast = run_patternscan(variant, stride, lines=lines, mode="fast")
            _compare_result_fields(where, event.result, fast.result, report)
            for name in ("answer", "verified", "values_digest"):
                report.values_compared += 1
                a, b = getattr(event, name), getattr(fast, name)
                if a != b:
                    report.divergences.append(
                        FastPathDivergence(where, f"{name}: event={a} fast={b}")
                    )
            report.values_compared += 1
            if event.row_profile != fast.row_profile:
                report.divergences.append(
                    FastPathDivergence(
                        where,
                        f"row_profile: event={event.row_profile} "
                        f"fast={fast.row_profile}",
                    )
                )
    return report


# ----------------------------------------------------------------------
# 3. Ablation grid: the real DB drivers in both modes
# ----------------------------------------------------------------------
def run_grid_equivalence(
    sizes: tuple[int, ...] = (1024, 4096),
    transactions: int = 100,
) -> FastPathReport:
    """An abl-3-shaped layouts x sizes grid through the DB drivers."""
    report = FastPathReport()
    mix = TransactionMix(4, 2, 2)
    query = AnalyticsQuery((0,))
    for layout_name in ("Row Store", "Column Store", "GS-DRAM"):
        for tuples in sizes:
            for workload in ("txn", "anl"):
                report.runs += 1
                where = f"grid {layout_name} {workload} tuples={tuples}"
                if workload == "txn":
                    event = run_transactions(
                        make_layout(layout_name), mix,
                        num_tuples=tuples, count=transactions,
                    )
                    fast = run_transactions(
                        make_layout(layout_name), mix,
                        num_tuples=tuples, count=transactions, mode="fast",
                    )
                else:
                    event = run_analytics(
                        make_layout(layout_name), query, num_tuples=tuples
                    )
                    fast = run_analytics(
                        make_layout(layout_name), query,
                        num_tuples=tuples, mode="fast",
                    )
                _compare_records(where, event, fast, report)
    return report


# ----------------------------------------------------------------------
# 4. Figure grids: every fig9/10/11/13 spec, fast vs event twin
# ----------------------------------------------------------------------

#: Small scale for the figure-grid battery: big enough for every layout
#: path (GS gathers need multiples of 8; the HTAP L2 override must fit
#: real traffic), small enough that event-mode runs stay in seconds.
CHECK_SCALE = Scale(
    name="check",
    db_tuples=512,
    db_transactions=50,
    htap_tuples=512,
    htap_l2_size=16 * 1024,
    gemm_sizes=(16,),
)


def run_figure_grid_equivalence(
    scale: Scale | None = None,
    figures: tuple[str, ...] | None = None,
) -> FastPathReport:
    """Every figure RunSpec at a small scale, fast vs its event twin.

    The fast specs come from :func:`figure_specs(..., mode="fast")` —
    the exact specs the harnesses, bench suite, and serve jobs submit —
    and each is compared against ``dataclasses.replace(spec,
    mode="event")`` run through the same :func:`execute_spec` dispatch.
    """
    import dataclasses

    from repro.harness.specsets import SPEC_FIGURES, figure_specs, spec_label
    from repro.perf.specs import execute_spec

    scale = scale or CHECK_SCALE
    report = FastPathReport()
    for figure in figures or SPEC_FIGURES:
        for fast_spec in figure_specs(figure, scale, mode="fast"):
            report.runs += 1
            where = f"{figure} {spec_label(fast_spec)}"
            event_spec = dataclasses.replace(fast_spec, mode="event")
            event = execute_spec(event_spec)
            fast = execute_spec(fast_spec)
            _compare_records(where, event, fast, report)
    return report


def run_fastpath(
    traces_per_config: int = 8,
    seed: int = 4811,
    max_ops: int = 48,
    sweep_lines: int = 256,
) -> FastPathReport:
    """The full fast-path battery (traces + sweep + grids)."""
    report = run_trace_equivalence(
        traces_per_config=traces_per_config, seed=seed, max_ops=max_ops
    )
    report.merge(run_sweep_equivalence(lines=sweep_lines))
    report.merge(run_grid_equivalence())
    report.merge(run_figure_grid_equivalence())
    return report
