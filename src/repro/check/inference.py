"""Inference-family differentials: generated vs replayed vs ingested.

The ``repro.infer`` family makes three equivalence promises, each
falsifiable here:

1. **Trace fidelity** — a recorded workload survives serialisation:
   text round-trip reproduces the records exactly, including under
   CRLF line endings and interleaved ``#`` comments, and replaying the
   trace on an identically built machine reproduces the generated
   run's result fields, every per-component statistic, and the final
   memory image.
2. **Mode equivalence** — the fast-mode twin of each workload matches
   the event run on every functional field, stat dict, and output
   digest (the same battery :mod:`repro.check.fastpath` applies to the
   figure grids).
3. **Ingest equivalence** — compiling a scalar trace with the pattern
   rewrite enabled returns bit-identical loaded values while strictly
   reducing DRAM line traffic (on a cache-thrashing machine), in both
   modes.

``run_inference_check`` bundles the three for ``repro check``.
"""

from __future__ import annotations

import io

from repro.check.fastpath import (
    STAT_COMPONENTS,
    FastPathDivergence,
    FastPathReport,
    _compare_records,
    _compare_result_fields,
    _compare_stat_dicts,
)
from repro.infer.ingest import run_ingested
from repro.infer.runner import replay_infer, run_infer
from repro.trace.format import load_trace, save_trace, trace_from_text

#: Small shapes: every code path (all three workloads, both variants),
#: seconds of event-mode wall clock.
CHECK_SHAPES = {
    "gemv": {"m": 16, "n": 16, "batch": 1},
    "embed": {"vocab": 32, "bags": 4, "bag_size": 3},
    "kvcache": {"steps": 4},
}

#: Cache sizing for the ingest-rewrite differential: small enough that
#: the scalar lane-walk thrashes, so the rewrite's line-traffic win is
#: observable (with roomy caches both sides are cold-miss-bound and the
#:  traffic ties — correct, but asserting nothing).
THRASH_CACHE = {"l1_size": 512, "l1_assoc": 2, "l2_size": 1024, "l2_assoc": 2}


class InferenceReport(FastPathReport):
    """FastPathReport with an inference-flavoured headline."""

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        lines = [
            f"inference: {self.runs} differential pairs, "
            f"{self.values_compared} values and {self.fields_compared} "
            f"stat fields compared, {status}"
        ]
        lines.extend(f"  {d.render()}" for d in self.divergences[:20])
        return "\n".join(lines)


def _diverge(report, where: str, what: str) -> None:
    report.divergences.append(FastPathDivergence(where, what))


def _check_roundtrip(report, where: str, records) -> None:
    """Text round-trip, plus CRLF + comment robustness."""
    buffer = io.StringIO()
    save_trace(records, buffer)
    report.values_compared += 1
    if load_trace(io.StringIO(buffer.getvalue())) != records:
        _diverge(report, where, "trace text round-trip changed records")
    # The same trace as a foreign tool might write it: CRLF endings,
    # a banner comment, and stray blank lines.
    lines = buffer.getvalue().splitlines()
    hostile = "# generated elsewhere\r\n\r\n" + "\r\n".join(lines) + "\r\n"
    report.values_compared += 1
    if trace_from_text(hostile) != records:
        _diverge(report, where, "CRLF/comment trace parsed differently")


def _check_workload(workload: str, variant: str, report) -> None:
    where = f"infer {workload}/{variant}"
    params = CHECK_SHAPES[workload]
    records: list = []
    event = run_infer(workload, variant, mode="event",
                      record_to=records, **params)
    report.values_compared += 1
    if not event.verified:
        _diverge(report, where, "event run failed its oracle")

    _check_roundtrip(report, where, records)

    # Replaying the trace must rebuild the same machine state: the
    # result fields and stat dicts match because the op stream is the
    # same stream, not merely an equivalent one. (Replays carry no
    # Python-side value consumers, so the answer digest is excluded —
    # the memory-image comparison below covers the outputs.)
    report.runs += 1
    replay = replay_infer(workload, variant, records, mode="event", **params)
    _compare_result_fields(f"{where} replay", event.result, replay.result,
                           report)
    for component in STAT_COMPONENTS:
        _compare_stat_dicts(
            f"{where} replay", component,
            (event.component_stats or {}).get(component, {}),
            (replay.component_stats or {}).get(component, {}),
            report,
        )
    report.values_compared += 1
    if replay.memory_digest != event.memory_digest:
        _diverge(report, where, "replayed memory image differs")
    report.values_compared += 1
    if not replay.verified:
        _diverge(report, where, "replayed image failed the oracle")

    report.runs += 1
    fast = run_infer(workload, variant, mode="fast", **params)
    _compare_records(f"{where} fast", event, fast, report)
    report.values_compared += 1
    if fast.memory_digest != event.memory_digest:
        _diverge(report, where, "fast memory image differs from event")

    report.runs += 1
    fast_replay = replay_infer(workload, variant, records, mode="fast",
                               **params)
    report.values_compared += 1
    if fast_replay.memory_digest != event.memory_digest:
        _diverge(report, where, "fast replay memory image differs")


def _check_ingest(report) -> None:
    """The rewrite differential on a generated scalar gemv trace."""
    where = "infer ingest gemv"
    records: list = []
    run_infer("gemv", "baseline", mode="event", record_to=records,
              **CHECK_SHAPES["gemv"])
    report.runs += 1
    scalar = run_ingested(records, rewrite=False,
                          config_overrides=dict(THRASH_CACHE))
    gathered = run_ingested(records, rewrite=True,
                            config_overrides=dict(THRASH_CACHE))
    report.values_compared += 1
    if gathered.compiled.gather_runs == 0:
        _diverge(report, where, "pattern inference rewrote no runs")
    report.values_compared += 1
    if scalar.values_digest != gathered.values_digest:
        _diverge(report, where, "rewrite changed the loaded values")
    report.fields_compared += 1
    if gathered.result.dram_reads >= scalar.result.dram_reads:
        _diverge(
            report, where,
            f"rewrite did not reduce DRAM reads: scalar="
            f"{scalar.result.dram_reads} gathered={gathered.result.dram_reads}",
        )
    for rewrite, event in ((False, scalar), (True, gathered)):
        report.runs += 1
        fast = run_ingested(records, rewrite=rewrite, mode="fast",
                            config_overrides=dict(THRASH_CACHE))
        label = f"{where} rewrite={rewrite} fast"
        _compare_records(label, event, fast, report)
        report.values_compared += 1
        if fast.values_digest != event.values_digest:
            _diverge(report, label, "fast loaded values differ")
        report.values_compared += 1
        if fast.memory_digest != event.memory_digest:
            _diverge(report, label, "fast memory image differs")


def run_inference_check() -> InferenceReport:
    """The full inference battery; see the module docstring."""
    report = InferenceReport()
    for workload in CHECK_SHAPES:
        for variant in ("baseline", "gs"):
            _check_workload(workload, variant, report)
    _check_ingest(report)
    return report
