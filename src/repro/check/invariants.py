"""Reusable machine-checkable invariants of the GS-DRAM substrate.

Each checker sweeps one correctness property and returns an
:class:`InvariantReport`; :func:`run_all_invariants` aggregates the
standard battery. They are called from the test suite and from the
``repro-check`` CLI (``python -m repro check``).

The four properties mirror the paper's correctness arguments:

- **shuffle bijectivity** (Section 3.2): for every column ID, the
  shuffle is a permutation of the line's values and its own inverse,
  and the stage-by-stage butterfly equals the XOR closed form;
- **CTL gather-set correctness** (Section 3.3): for every
  ``(pattern, column)``, the module's lane map gathers exactly the
  index family of the analytical model, with no duplicates, assembled
  in ascending row-buffer order, and translation is an involution;
- **timing-accounting conservation**: after a run, command counts,
  request counts, and cache accesses obey the conservation identities
  of the controller's command protocol (every request is served by
  exactly one column command, every row miss by exactly one ACTIVATE,
  precharges never outnumber activates by more than the bank count);
- **energy sanity**: every component of the energy breakdown is
  non-negative and the totals are consistent sums.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.pattern import gather_spec
from repro.core.shuffle import (
    LSBShuffle,
    MaskedShuffle,
    NoShuffle,
    ShuffleFunction,
    XorFoldShuffle,
    shuffle_stagewise,
)
from repro.cpu.isa import Compute, Load, Store
from repro.dram.address import Geometry
from repro.errors import ReproError
from repro.sim.config import SystemConfig, table1_config
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.utils.bitops import ilog2, mask


@dataclass
class Violation:
    """One invariant violation, with locating context."""

    detail: str
    context: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        if not self.context:
            return self.detail
        where = ", ".join(f"{k}={v}" for k, v in self.context.items())
        return f"{self.detail} [{where}]"


@dataclass
class InvariantReport:
    """Outcome of one invariant checker."""

    name: str
    checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fail(self, detail: str, **context: Any) -> None:
        self.violations.append(Violation(detail, context))

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        lines = [f"{self.name}: {self.checks} checks, {status}"]
        lines.extend(f"  FAIL: {v.render()}" for v in self.violations[:20])
        return "\n".join(lines)


# ----------------------------------------------------------------------
# 1. Shuffle bijectivity
# ----------------------------------------------------------------------
def check_shuffle_bijectivity(
    functions: list[ShuffleFunction] | None = None,
    columns: int = 64,
    lanes: int | None = None,
) -> InvariantReport:
    """Every shuffle function must permute lanes and invert itself."""
    report = InvariantReport("shuffle-bijectivity")
    if functions is None:
        functions = [
            NoShuffle(),
            *(LSBShuffle(stages) for stages in (1, 2, 3, 4)),
            MaskedShuffle(stages=3, stage_mask=0b101),
            MaskedShuffle(stages=2, stage_mask=0b10),
            XorFoldShuffle(2),
            XorFoldShuffle(3),
        ]
    for fn in functions:
        lane_count = lanes or max(2, 1 << fn.stages)
        identity = list(range(lane_count))
        for column in range(columns):
            shuffled = fn.apply(identity, column)
            report.checks += 1
            if sorted(shuffled) != identity:
                report.fail(
                    "shuffle is not a permutation",
                    shuffle=repr(fn), column=column,
                )
            report.checks += 1
            if fn.invert(shuffled, column) != identity:
                report.fail(
                    "shuffle is not an involution",
                    shuffle=repr(fn), column=column,
                )
            # The hardware butterfly (stage by stage) must agree with
            # the closed form used on the hot paths.
            report.checks += 1
            stagewise = shuffle_stagewise(
                identity, fn.control_bits(column), fn.stages
            )
            if stagewise != shuffled:
                report.fail(
                    "stagewise butterfly disagrees with closed form",
                    shuffle=repr(fn), column=column,
                )
    return report


# ----------------------------------------------------------------------
# 2. CTL gather-set correctness
# ----------------------------------------------------------------------
def check_ctl_translation(
    chip_counts: tuple[int, ...] = (2, 4, 8, 16),
    columns_per_row: int = 32,
) -> InvariantReport:
    """The module must gather exactly the analytical index family.

    Builds a fully-shuffled GS module per chip count and sweeps every
    ``(pattern, column)`` pair, comparing the machinery's lane map to
    :func:`repro.core.pattern.gather_spec` (the closed-form model) and
    checking CTL involution plus duplicate-free ascending assembly.
    """
    from repro.core.module import GSModule

    report = InvariantReport("ctl-gather-sets")
    for chips in chip_counts:
        stages = ilog2(chips)
        geometry = Geometry(
            chips=chips, banks=2, rows_per_bank=8,
            columns_per_row=columns_per_row,
        )
        module = GSModule(
            geometry=geometry,
            shuffle=LSBShuffle(stages),
            pattern_bits=max(1, stages),
        )
        for pattern in range(1 << module.pattern_bits):
            for column in range(columns_per_row):
                lanes = module.lane_map(column, pattern)
                row_indices = [entry[2] for entry in lanes]
                spec = gather_spec(chips, pattern, column)
                report.checks += 1
                if sorted(row_indices) != list(spec.indices):
                    report.fail(
                        f"gather set {sorted(row_indices)} != "
                        f"analytical {list(spec.indices)}",
                        chips=chips, pattern=pattern, column=column,
                    )
                report.checks += 1
                if len(set(row_indices)) != chips:
                    report.fail(
                        "gather touches duplicate row-buffer values",
                        chips=chips, pattern=pattern, column=column,
                    )
                # CTL translation is an involution per (chip, pattern).
                report.checks += 1
                rank = module.rank
                if any(
                    rank.chip_column(chip, rank.chip_column(chip, column, pattern), pattern)
                    != column
                    for chip in range(chips)
                ):
                    report.fail(
                        "CTL translation is not an involution",
                        chips=chips, pattern=pattern, column=column,
                    )
                # Assembly order is ascending row-buffer order.
                report.checks += 1
                order = module.assembly_order(column, pattern)
                assembled = [lanes[chip][2] for chip in order]
                if assembled != sorted(row_indices):
                    report.fail(
                        "assembly is not in ascending row-buffer order",
                        chips=chips, pattern=pattern, column=column,
                    )
    return report


# ----------------------------------------------------------------------
# 3. DRAM timing-accounting conservation
# ----------------------------------------------------------------------
def _exercise(config: SystemConfig, seed: int = 7, accesses: int = 200) -> tuple[System, RunResult]:
    """Run a small mixed workload on ``config`` and return the system."""
    system = System(config)
    line_bytes = system.module.line_bytes
    supports = system.module.supports_patterns
    pattern = mask(config.pattern_bits) if supports else 0
    span = 8 * 1024
    base = system.pattmalloc(span, shuffle=supports, pattern=pattern)
    rng = random.Random(seed)

    def program():
        for _ in range(accesses):
            address = base + rng.randrange(span // 8) * 8
            use_pattern = pattern if (supports and rng.random() < 0.4) else 0
            if rng.random() < 0.5:
                yield Load(address, pattern=use_pattern)
            else:
                yield Store(address, b"\xabGSDRAM!", pattern=use_pattern)
            yield Compute(rng.randint(1, 8))

    result = system.run([program()])
    return system, result


def check_timing_conservation(
    configs: list[SystemConfig] | None = None,
) -> InvariantReport:
    """Command/request/cache accounting identities after real runs."""
    report = InvariantReport("timing-conservation")
    if configs is None:
        geometry = Geometry(chips=8, banks=2, rows_per_bank=32, columns_per_row=16)
        small = dict(l1_size=1024, l1_assoc=2, l2_size=4096, l2_assoc=4)
        base = table1_config(geometry=geometry, **small)
        configs = [
            base,
            base.with_(open_row_policy=False),
            base.with_(store_buffer=4),
        ]
    for index, config in enumerate(configs):
        try:
            system, result = _exercise(config)
        except ReproError as error:
            report.checks += 1
            report.fail(f"workload raised {error}", config=index)
            continue
        mc = system.controller.stats

        def expect(condition: bool, detail: str) -> None:
            report.checks += 1
            if not condition:
                report.fail(detail, config=index, stats=mc.as_dict())

        requests = mc.get("requests")
        column_commands = mc.get("cmd_RD") + mc.get("cmd_WR")
        expect(
            requests
            == mc.get("requests_read")
            + mc.get("requests_write")
            + mc.get("requests_prefetch"),
            "request kinds do not sum to total requests",
        )
        expect(
            column_commands == requests,
            "each request must be served by exactly one column command",
        )
        expect(
            mc.get("row_hits") + mc.get("row_misses") == column_commands,
            "row hit/miss accounting does not cover the column commands",
        )
        expect(
            mc.get("cmd_ACT") == mc.get("row_misses"),
            "each row miss must issue exactly one ACTIVATE",
        )
        expect(
            mc.get("cmd_ACT") - mc.get("cmd_PRE")
            <= config.geometry.banks,
            "precharge/activate imbalance exceeds the bank count",
        )
        expect(
            result.l1_hits + result.l1_misses == result.loads + result.stores,
            "every memory instruction must make exactly one L1 access",
        )
        expect(result.cycles > 0, "run completed in zero cycles")
        expect(
            all(
                core.finish_time is not None and core.finish_time <= result.cycles
                for core in system.cores
            ),
            "a core finished after the reported runtime",
        )
    return report


# ----------------------------------------------------------------------
# 4. Energy sanity
# ----------------------------------------------------------------------
def check_energy_sanity(results: list[RunResult] | None = None) -> InvariantReport:
    """Every energy component is non-negative; totals are exact sums."""
    report = InvariantReport("energy-sanity")
    if results is None:
        geometry = Geometry(chips=8, banks=2, rows_per_bank=32, columns_per_row=16)
        small = dict(l1_size=1024, l1_assoc=2, l2_size=4096, l2_assoc=4)
        results = [
            _exercise(table1_config(geometry=geometry, **small))[1],
            _exercise(
                table1_config(geometry=geometry, refresh=True, **small)
            )[1],
        ]
    for index, result in enumerate(results):
        energy = result.energy
        components = {
            "cpu.static_mj": energy.cpu.static_mj,
            "cpu.dynamic_mj": energy.cpu.dynamic_mj,
            "dram.dynamic_mj": energy.dram.dynamic_mj,
            "dram.background_mj": energy.dram.background_mj,
        }
        for name, value in components.items():
            report.checks += 1
            if value < 0:
                report.fail(f"negative energy component {name}={value}",
                            run=index)
        report.checks += 1
        if abs(energy.total_mj - sum(components.values())) > 1e-9:
            report.fail("total energy is not the sum of its components",
                        run=index)
    return report


def run_all_invariants() -> list[InvariantReport]:
    """The standard battery, in declaration order."""
    return [
        check_shuffle_bijectivity(),
        check_ctl_translation(),
        check_timing_conservation(),
        check_energy_sanity(),
    ]
