"""Flat functional reference model of a GS-DRAM machine.

:class:`MemoryOracle` executes the same architectural operations as the
full simulator — plain loads/stores plus ``pattload``/``pattstore`` —
against one flat byte array, with no timing, no caches, no coherence
protocol, no butterfly network, and no CTL objects. It is the ground
truth the differential runner (:mod:`repro.check.differential`) diffs
the timed machine against.

The gather semantics are re-derived here straight from the paper rather
than imported from :mod:`repro.core`, so a bug in the production shuffle
or CTL machinery cannot silently agree with the oracle:

- Section 3.3: for a column command with address ``c`` and pattern
  ``p``, chip ``d`` accesses its local column ``(d AND p) XOR c``.
- Section 3.2: under column-ID shuffling with ``s`` stages, the value
  chip ``d`` holds of logical line ``c'`` is value ``d XOR (c' mod
  2^s)`` of that line.
- Section 3.5: the controller assembles the gathered values in
  ascending row-buffer order.

Composing the three rules gives, for each chip, one flat byte address;
a gathered line is those ``chips`` values concatenated in ascending
address order. Pattern-0 accesses (and accesses to unshuffled pages)
degenerate to the identity mapping — a contiguous cache line.
"""

from __future__ import annotations

from repro.errors import AddressError, PatternError


def _ilog2(value: int) -> int:
    if value <= 0 or value & (value - 1):
        raise PatternError(f"expected a power of two, got {value}")
    return value.bit_length() - 1


def _effective_chip_id(chip_id: int, chip_bits: int, pattern_bits: int) -> int:
    """Section 6.2: repeat the physical chip ID to fill wide patterns."""
    if pattern_bits <= chip_bits:
        return chip_id & ((1 << pattern_bits) - 1)
    repeated, filled = 0, 0
    while filled < pattern_bits:
        repeated |= chip_id << filled
        filled += chip_bits
    return repeated & ((1 << pattern_bits) - 1)


class MemoryOracle:
    """Ground-truth functional memory for differential checking.

    The oracle owns a flat ``capacity_bytes`` byte array. ``load`` and
    ``store`` implement the architectural semantics of the paper's
    instructions; ``read``/``write`` give raw (pattern-0) access for
    preloading data and diffing final images.
    """

    def __init__(
        self,
        chips: int,
        banks: int,
        rows_per_bank: int,
        columns_per_row: int,
        column_bytes: int = 8,
        shuffle_stages: int | None = None,
        pattern_bits: int | None = None,
        bank_interleaved: bool = False,
    ) -> None:
        self.chips = chips
        self.banks = banks
        self.rows_per_bank = rows_per_bank
        self.columns_per_row = columns_per_row
        self.column_bytes = column_bytes
        self.line_bytes = chips * column_bytes
        self.chip_bits = _ilog2(chips)
        self.shuffle_stages = (
            self.chip_bits if shuffle_stages is None else shuffle_stages
        )
        self.pattern_bits = (
            self.chip_bits if pattern_bits is None else pattern_bits
        )
        self.bank_interleaved = bank_interleaved
        self._offset_bits = _ilog2(self.line_bytes)
        self._column_bits = _ilog2(columns_per_row)
        self._bank_bits = _ilog2(banks)
        self.capacity_bytes = banks * rows_per_bank * columns_per_row * self.line_bytes
        self._memory = bytearray(self.capacity_bytes)
        #: Architectural access log: (kind, address, pattern, bytes).
        self.log: list[tuple[str, int, int, bytes]] = []

    @classmethod
    def from_config(cls, config) -> "MemoryOracle":
        """Build an oracle mirroring a :class:`repro.sim.SystemConfig`.

        Only the *architectural* parameters are read (geometry, shuffle
        stages, pattern bits, mapping policy); all timing parameters are
        irrelevant to the oracle by design.
        """
        from repro.dram.address import MappingPolicy
        from repro.sim.config import Mechanism

        geometry = config.geometry
        is_gs = config.mechanism is Mechanism.GS_DRAM
        return cls(
            chips=geometry.chips,
            banks=geometry.banks,
            rows_per_bank=geometry.rows_per_bank,
            columns_per_row=geometry.columns_per_row,
            column_bytes=geometry.column_bytes,
            shuffle_stages=config.shuffle_stages if is_gs else 0,
            pattern_bits=config.pattern_bits if is_gs else 0,
            bank_interleaved=(
                config.mapping_policy is MappingPolicy.BANK_INTERLEAVED
            ),
        )

    # ------------------------------------------------------------------
    # Address arithmetic (independent of repro.dram.address)
    # ------------------------------------------------------------------
    def _decode(self, line_address: int) -> tuple[int, int, int]:
        """(bank, row, column) of a line-aligned address."""
        line = line_address >> self._offset_bits
        if self.bank_interleaved:
            bank = line & (self.banks - 1)
            line >>= self._bank_bits
            column = line & (self.columns_per_row - 1)
            row = line >> self._column_bits
        else:
            column = line & (self.columns_per_row - 1)
            line >>= self._column_bits
            bank = line & (self.banks - 1)
            row = line >> self._bank_bits
        return bank, row, column

    def _encode(self, bank: int, row: int, column: int) -> int:
        if self.bank_interleaved:
            line = ((row << self._column_bits) | column) << self._bank_bits | bank
        else:
            line = ((row << self._bank_bits) | bank) << self._column_bits | column
        return line << self._offset_bits

    # ------------------------------------------------------------------
    # Gather geometry
    # ------------------------------------------------------------------
    def gather_addresses(self, line_address: int, pattern: int) -> list[int]:
        """Flat byte address of each value of the gathered line.

        Entry ``i`` is where the ``i``-th ``column_bytes``-wide value of
        the gathered cache line lives in the flat address space, in
        ascending row-buffer (= ascending address) order.
        """
        if pattern < 0 or pattern >= (1 << self.pattern_bits):
            raise PatternError(
                f"pattern {pattern} does not fit in {self.pattern_bits} bits"
            )
        bank, row, column = self._decode(line_address)
        if pattern == 0:
            return [
                line_address + value * self.column_bytes
                for value in range(self.chips)
            ]
        shuffle_mask = (1 << self.shuffle_stages) - 1
        slots = []
        for chip in range(self.chips):
            wide_chip = _effective_chip_id(chip, self.chip_bits, self.pattern_bits)
            chip_column = (wide_chip & pattern) ^ column
            if chip_column >= self.columns_per_row:
                raise AddressError(
                    "translated column exceeds row width",
                    address=line_address,
                    pattern=pattern,
                )
            value_index = chip ^ (chip_column & shuffle_mask)
            slots.append((chip_column * self.chips + value_index, chip_column))
        slots.sort()
        addresses = []
        for row_index, chip_column in slots:
            base = self._encode(bank, row, chip_column)
            addresses.append(base + (row_index % self.chips) * self.column_bytes)
        return addresses

    def _byte_addresses(
        self, address: int, size: int, pattern: int, shuffled: bool
    ) -> list[int]:
        """Flat address of every byte the access touches, in order."""
        line_address = address & ~(self.line_bytes - 1)
        offset = address - line_address
        if offset + size > self.line_bytes:
            raise AddressError(
                f"access of {size} bytes crosses a line boundary",
                address=address,
                pattern=pattern,
            )
        if pattern == 0 or not shuffled:
            return list(range(address, address + size))
        slots = self.gather_addresses(line_address, pattern)
        out = []
        for position in range(offset, offset + size):
            slot, within = divmod(position, self.column_bytes)
            out.append(slots[slot] + within)
        return out

    # ------------------------------------------------------------------
    # Architectural operations
    # ------------------------------------------------------------------
    def load(
        self, address: int, size: int = 8, pattern: int = 0, shuffled: bool = False
    ) -> bytes:
        """Execute one load / ``pattload``; returns the loaded bytes."""
        data = bytes(
            self._memory[byte]
            for byte in self._byte_addresses(address, size, pattern, shuffled)
        )
        self.log.append(("load", address, pattern, data))
        return data

    def store(
        self,
        address: int,
        payload: bytes,
        pattern: int = 0,
        shuffled: bool = False,
    ) -> None:
        """Execute one store / ``pattstore`` (scatter)."""
        targets = self._byte_addresses(address, len(payload), pattern, shuffled)
        for byte, value in zip(targets, payload):
            self._memory[byte] = value
        self.log.append(("store", address, pattern, bytes(payload)))

    # ------------------------------------------------------------------
    # Raw (flat) access for preloading and diffing
    # ------------------------------------------------------------------
    def write(self, address: int, data: bytes) -> None:
        if address < 0 or address + len(data) > self.capacity_bytes:
            raise AddressError("write outside oracle memory", address=address)
        self._memory[address : address + len(data)] = data

    def read(self, address: int, length: int) -> bytes:
        if address < 0 or address + length > self.capacity_bytes:
            raise AddressError("read outside oracle memory", address=address)
        return bytes(self._memory[address : address + length])
