"""Scalar-vs-vectorized oracle differential (``repro check oracles``).

Phase 3 replaced the per-transaction Python oracle with columnar numpy
twins (:class:`~repro.db.table.VecOracleTable`, and the batch workload
generator behind it). The two implementations share no algorithm — the
scalar table replays transactions sequentially; the vectorized table
sorts writes by cell and resolves observed reads with a searchsorted
last-write lookup — so agreement over randomized workloads is strong
evidence both are right, and the figure pipelines may verify fast-mode
runs with the cheap oracle without circularity.

Each trial draws a random table shape and transaction batch, applies
it through both oracles, and compares:

- every observed read value, in program order;
- the final table state (row-for-row) and its content digest;
- every analytics answer: per-field column sums, filtered aggregates
  under each comparison operator (including ``COUNT(*)``), and a
  grouped sum over a deliberately low-cardinality key column.

Edge trials cover the empty table, the single-tuple table (every
transaction collides), an all-writes mix, and hand-built duplicate-key
transactions that write the same field of the same tuple repeatedly —
the last-write-wins resolution both oracles must implement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.db.queries import (
    Comparison,
    FilterQuery,
    GroupByQuery,
    oracle_filter,
    oracle_groupby,
)
from repro.db.schema import TableSchema
from repro.db.table import OracleTable, VecOracleTable, table_digest
from repro.db.workload import (
    AnalyticsQuery,
    FieldOp,
    Transaction,
    TransactionMix,
    generate_transaction_arrays,
)

#: Randomized (num_fields, num_tuples, mix, count) trial grid.
TRIAL_SHAPES = (
    (8, 64, TransactionMix(1, 0, 1), 96),
    (8, 256, TransactionMix(2, 4, 0), 128),
    (8, 512, TransactionMix(4, 2, 2), 160),
    (4, 128, TransactionMix(1, 1, 1), 96),
    (2, 32, TransactionMix(1, 1, 0), 64),
    (16, 128, TransactionMix(6, 1, 0), 96),
    # Single tuple: every transaction hits the same row, so observed
    # reads chain through the whole batch's write history.
    (8, 1, TransactionMix(2, 2, 2), 64),
    # All writes: no observed reads, pure last-write-wins state.
    (8, 64, TransactionMix(0, 6, 0), 128),
)


@dataclass
class OracleDivergence:
    """One scalar-vs-vectorized disagreement."""

    where: str
    what: str

    def render(self) -> str:
        return f"{self.where}: {self.what}"


@dataclass
class OracleReport:
    """Aggregated outcome of the oracle differential."""

    trials: int = 0
    values_compared: int = 0
    divergences: list[OracleDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        lines = [
            f"oracles: {self.trials} scalar-vs-vectorized trials, "
            f"{self.values_compared} values compared, {status}"
        ]
        lines.extend(f"  {d.render()}" for d in self.divergences[:20])
        return "\n".join(lines)


def _random_rows(rng: random.Random, num_tuples: int,
                 num_fields: int) -> list[list[int]]:
    return [
        [rng.randrange(1 << 32) for _ in range(num_fields)]
        for _ in range(num_tuples)
    ]


def _compare_tables(report: OracleReport, where: str,
                    scalar: OracleTable, vec: VecOracleTable,
                    observed_scalar: list[int],
                    observed_vec: np.ndarray) -> None:
    report.values_compared += len(observed_scalar) or 1
    if observed_scalar != observed_vec.tolist():
        report.divergences.append(OracleDivergence(
            where, "observed read values differ between oracles"))
    report.values_compared += 1
    if scalar.rows != vec.snapshot():
        report.divergences.append(OracleDivergence(
            where, "final table state differs between oracles"))
    report.values_compared += 1
    if table_digest(scalar.rows) != vec.digest():
        report.divergences.append(OracleDivergence(
            where, "table content digests differ between oracles"))


def _compare_analytics(report: OracleReport, where: str,
                       scalar: OracleTable, vec: VecOracleTable,
                       num_fields: int, rng: random.Random) -> None:
    for k in range(num_fields):
        query = AnalyticsQuery((k,))
        report.values_compared += 1
        if scalar.column_sum(query) != vec.column_sum(query):
            report.divergences.append(OracleDivergence(
                where, f"column_sum(f{k}) differs between oracles"))
    if num_fields < 2:
        return
    threshold = rng.randrange(1 << 32)
    for op in Comparison:
        for value_field in (None, 1):
            query = FilterQuery(predicate_field=0, op=op,
                                threshold=threshold,
                                value_field=value_field)
            expected = oracle_filter(scalar.rows, query)
            got = vec.filter(query)
            report.values_compared += 2
            if (expected.matches, expected.aggregate) != (
                    got.matches, got.aggregate):
                report.divergences.append(OracleDivergence(
                    where, f"filter [{query.label}] differs between oracles"))
    group = GroupByQuery(key_field=0, value_field=1)
    report.values_compared += 1
    if oracle_groupby(scalar.rows, group) != vec.groupby(group):
        report.divergences.append(OracleDivergence(
            where, f"groupby [{group.label}] differs between oracles"))


def _duplicate_key_transactions(rng: random.Random, num_tuples: int,
                                num_fields: int,
                                count: int) -> list[Transaction]:
    """Transactions that repeatedly read+write one (tuple, field) cell.

    The batch generator draws *distinct* fields within a transaction;
    these hand-built transactions hammer the same cell several times in
    one transaction, so each read must observe the immediately
    preceding write, not merely the last one in the batch.
    """
    txns = []
    for _ in range(count):
        tuple_id = rng.randrange(num_tuples)
        fld = rng.randrange(num_fields)
        ops: list[FieldOp] = []
        for _ in range(rng.randrange(2, 5)):
            ops.append(FieldOp(fld, write=False))
            ops.append(FieldOp(fld, write=True, value=rng.randrange(1 << 40)))
        txns.append(Transaction(tuple_id, tuple(ops)))
    return txns


def run_oracles(seed: int = 2015) -> OracleReport:
    """Run the full scalar-vs-vectorized oracle differential."""
    report = OracleReport()
    rng = random.Random(seed)

    for index, (num_fields, num_tuples, mix, count) in enumerate(TRIAL_SHAPES):
        where = (f"trial[{index}] fields={num_fields} tuples={num_tuples} "
                 f"mix={mix.label}")
        schema = TableSchema(num_fields=num_fields)
        rows = _random_rows(rng, num_tuples, num_fields)
        arrays = generate_transaction_arrays(
            schema, num_tuples, mix, count, seed=seed + index
        )
        scalar = OracleTable(schema, [list(row) for row in rows])
        vec = VecOracleTable(schema, rows)
        observed_scalar = scalar.apply_all(arrays.to_transactions())
        observed_vec = vec.apply_all(arrays)
        report.trials += 1
        _compare_tables(report, where, scalar, vec,
                        observed_scalar, observed_vec)
        _compare_analytics(report, where, scalar, vec, num_fields, rng)

    # Empty cases: no tuples, and a no-op transaction batch.
    schema = TableSchema()
    empty_scalar = OracleTable(schema, [])
    empty_vec = VecOracleTable(schema, [])
    report.trials += 1
    _compare_tables(report, "trial[empty-table]", empty_scalar, empty_vec,
                    empty_scalar.apply_all([]),
                    empty_vec.apply_all([]))

    rows = _random_rows(rng, 16, schema.num_fields)
    scalar = OracleTable(schema, [list(row) for row in rows])
    vec = VecOracleTable(schema, rows)
    empty_batch = generate_transaction_arrays(
        schema, 16, TransactionMix(1, 1, 0), 0, seed=seed
    )
    report.trials += 1
    _compare_tables(report, "trial[empty-batch]", scalar, vec,
                    scalar.apply_all(empty_batch.to_transactions()),
                    vec.apply_all(empty_batch))

    # Duplicate-key updates (object-form transactions on both sides).
    for num_tuples in (1, 8, 64):
        where = f"trial[dup-key] tuples={num_tuples}"
        rows = _random_rows(rng, num_tuples, schema.num_fields)
        txns = _duplicate_key_transactions(
            rng, num_tuples, schema.num_fields, count=48
        )
        scalar = OracleTable(schema, [list(row) for row in rows])
        vec = VecOracleTable(schema, rows)
        report.trials += 1
        _compare_tables(report, where, scalar, vec,
                        scalar.apply_all(txns), vec.apply_all(txns))
        _compare_analytics(report, where, scalar, vec,
                           schema.num_fields, rng)

    return report
