"""PIM differentials: device semantics vs numpy, event vs fast.

The ``repro.pim`` subsystem makes two falsifiable promises:

1. **Primitive fidelity** — every MRA (AND/OR over 2-3 rows, MAJ over
   3) and every SHIFT executed against the real per-chip byte arrays
   is byte-for-byte identical to the numpy reference semantics in
   :mod:`repro.pim.reference`, over seeded random row contents,
   operand counts, shift amounts and directions.
2. **Mode equivalence** — for each ablation quadrant (sum/filter x
   gs/pim) the fast twin reproduces the event run's answer, memory
   digest, functional result fields and per-component statistics, and
   the two variants agree on the aggregate (both already being
   oracle-checked against numpy).

``run_pim_check`` bundles both for ``repro check pim``.
"""

from __future__ import annotations

import numpy as np

from repro.check.fastpath import (
    FastPathDivergence,
    FastPathReport,
    _compare_records,
    _compare_stat_dicts,
)
from repro.dram.module import DRAMModule
from repro.pim.driver import WORKLOADS, run_pim
from repro.pim.executor import PIMExecutor
from repro.pim.reference import combine_reference, shift_reference
from repro.sim.config import plain_dram_config

#: Small enough for seconds of event-mode wall clock, large enough to
#: exercise multi-level tree reduction and a multi-byte match mask.
CHECK_TUPLES = 512

#: (op, fan-in) pairs the command set admits.
PRIMITIVE_CASES = (("AND", 2), ("AND", 3), ("OR", 2), ("OR", 3), ("MAJ", 3))


class PIMReport(FastPathReport):
    """FastPathReport with a PIM-flavoured headline."""

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        lines = [
            f"pim: {self.runs} differential pairs, "
            f"{self.values_compared} values and {self.fields_compared} "
            f"stat fields compared, {status}"
        ]
        lines.extend(f"  {d.render()}" for d in self.divergences[:20])
        return "\n".join(lines)


def _diverge(report, where: str, what: str) -> None:
    report.divergences.append(FastPathDivergence(where, what))


def _check_primitives(report: PIMReport, seed: int, trials: int = 4) -> None:
    """Every MRA/SHIFT shape on the device vs the numpy reference."""
    config = plain_dram_config()
    module = DRAMModule(
        geometry=config.geometry,
        cpu_per_bus=config.cpu_per_bus,
        policy=config.mapping_policy,
    )
    executor = PIMExecutor(module, timed=True)
    row_bytes = module.geometry.row_bytes
    rng = np.random.default_rng(seed)
    top = module.geometry.rows_per_bank
    for trial in range(trials):
        bank = int(rng.integers(module.geometry.banks))
        src = [top - 1 - i for i in range(3)]
        dest = top - 4
        contents = rng.integers(0, 256, size=(3, row_bytes), dtype=np.uint8)
        for row, data in zip(src, contents):
            executor.load_row(bank, row, data.tobytes())
        for op, fan_in in PRIMITIVE_CASES:
            report.runs += 1
            executor.mra(bank, tuple(src[:fan_in]), dest, op)
            device = module.rank.read_row(bank, dest)
            expected = combine_reference(
                [c.tobytes() for c in contents[:fan_in]], op)
            report.values_compared += 1
            if device != expected:
                _diverge(
                    report, f"pim primitive {op}{fan_in} trial {trial}",
                    "device row differs from numpy reference",
                )
        for direction in ("left", "right"):
            amount = int(rng.integers(1, 4 * row_bytes))
            report.runs += 1
            executor.load_row(bank, dest, contents[0].tobytes())
            executor.shift(bank, dest, amount, direction)
            device = module.rank.read_row(bank, dest)
            expected = shift_reference(contents[0].tobytes(), amount,
                                       direction)
            report.values_compared += 1
            if device != expected:
                _diverge(
                    report,
                    f"pim shift {direction} by {amount} trial {trial}",
                    "device row differs from numpy reference",
                )
    report.values_compared += 1
    if executor.cycles <= 0:
        _diverge(report, "pim primitives", "timed executor reported 0 cycles")


def _check_quadrant(report: PIMReport, workload: str, variant: str):
    """Event vs fast over one ablation quadrant; returns the event run."""
    where = f"pim {workload}/{variant}"
    report.runs += 1
    event = run_pim(workload, variant, mode="event", num_tuples=CHECK_TUPLES)
    fast = run_pim(workload, variant, mode="fast", num_tuples=CHECK_TUPLES)
    for run, mode in ((event, "event"), (fast, "fast")):
        report.values_compared += 1
        if not run.verified:
            _diverge(report, where, f"{mode} run failed its numpy oracle")
    _compare_records(where, event, fast, report)
    _compare_stat_dicts(
        where, "pim",
        (event.component_stats or {}).get("pim", {}),
        (fast.component_stats or {}).get("pim", {}),
        report,
    )
    report.values_compared += 1
    if fast.answer != event.answer:
        _diverge(report, where,
                 f"answer: event={event.answer} fast={fast.answer}")
    report.values_compared += 1
    if fast.memory_digest != event.memory_digest:
        _diverge(report, where, "fast memory digest differs from event")
    report.values_compared += 1
    if event.cycles <= 0:
        _diverge(report, where, "event run reported 0 cycles")
    report.values_compared += 1
    if fast.cycles != 0:
        _diverge(report, where, f"fast run reported {fast.cycles} cycles")
    return event


def run_pim_check(seed: int = 2015) -> PIMReport:
    """The full PIM battery; see the module docstring."""
    report = PIMReport()
    _check_primitives(report, seed=seed)
    for workload in WORKLOADS:
        runs = {
            variant: _check_quadrant(report, workload, variant)
            for variant in ("gs", "pim")
        }
        report.values_compared += 1
        if runs["gs"].answer != runs["pim"].answer:
            _diverge(
                report, f"pim {workload}",
                f"variants disagree: gs={runs['gs'].answer} "
                f"pim={runs['pim'].answer}",
            )
    return report
