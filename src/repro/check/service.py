"""Service-level differential smoke: the HTTP door changes nothing.

The serving layer (:mod:`repro.serve`) must be a transparent transport
around :func:`repro.perf.specs.execute_spec`: a spec submitted over
HTTP must produce a record that digests bit-identically to the same
spec executed directly in-process, and N identical concurrent
submissions must execute the underlying simulation exactly once.

:func:`run_service_check` verifies both, per execution mode:

- **fast** — a fig7-style gathered patternscan on the numpy fast path;
- **event** — the same point on the full event-driven machine.

Each spec is (1) executed directly with :func:`execute_spec`, (2)
submitted to a private in-process server (fresh cache + no journal, so
nothing is pre-warmed) and fetched back over the wire, and (3)
submitted several more times to confirm coalescing/caching: the
server's ``serve.queue`` counters must show exactly one ``executed``
per distinct spec, with every extra submission accounted as coalesced
or cache-hit. Digest equality uses the pinned-pickle
:func:`repro.serve.protocol.result_digest` on both sides.

Wired into ``repro check`` (skippable with ``--skip-service``) and the
CI serve-smoke job.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

from repro.perf.cache import ResultCache
from repro.perf.specs import RunSpec, execute_spec
from repro.serve.protocol import result_digest
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread


@dataclass
class ServiceDivergence:
    label: str
    detail: str

    def render(self) -> str:
        return f"  {self.label}: {self.detail}"


@dataclass
class ServiceReport:
    checks: int = 0
    divergences: list[ServiceDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"[service] submitted-vs-direct differential: {status} "
            f"({self.checks} checks, {len(self.divergences)} divergences)"
        ]
        lines.extend(d.render() for d in self.divergences)
        return "\n".join(lines)


def _smoke_specs(lines: int) -> list[RunSpec]:
    """One fast-mode and one event-mode fig7-style point."""
    return [
        RunSpec(
            kind="patternscan",
            params={"variant": "gathered", "stride": 4, "lines": lines},
            mode="fast",
        ),
        RunSpec(
            kind="patternscan",
            params={"variant": "scalar", "stride": 2, "lines": lines},
            mode="event",
        ),
    ]


def run_service_check(
    lines: int = 64,
    duplicates: int = 4,
    specs: list[RunSpec] | None = None,
) -> ServiceReport:
    """Run the battery against a private in-process server."""
    report = ServiceReport()
    specs = _smoke_specs(lines) if specs is None else specs
    with tempfile.TemporaryDirectory(prefix="repro-service-check") as tmp:
        cache = ResultCache(f"{tmp}/cache")
        config = ServeConfig(
            port=0, executor="thread", state_dir=None, workers=2,
            request_log=False,
        )
        with ServerThread(config, cache=cache) as handle:
            client = handle.client(client_id="service-check")
            for spec in specs:
                _check_spec(report, client, spec, duplicates)
            _check_counters(report, client, specs, duplicates)
    return report


def _check_spec(report, client, spec: RunSpec, duplicates: int) -> None:
    label = f"{spec.kind}:{spec.params.get('variant')}:{spec.mode}"
    direct = execute_spec(spec)
    expected = result_digest(direct)

    report.checks += 1
    response = client.submit(spec, wait=True, timeout=300.0)
    job = response["job"]
    if job["state"] != "done":
        report.divergences.append(ServiceDivergence(
            label, f"job ended {job['state']!r}: {job.get('error')}"
        ))
        return
    if job["digest"] != expected:
        report.divergences.append(ServiceDivergence(
            label,
            f"digest mismatch: direct={expected[:16]} "
            f"served={str(job['digest'])[:16]}",
        ))
        return
    # The payload itself must decode to a record with the same digest
    # (transport integrity, not just server-side bookkeeping).
    record = client.result(job["job_id"])
    report.checks += 1
    if result_digest(record) != expected:
        report.divergences.append(ServiceDivergence(
            label, "decoded wire payload digests differently"
        ))
        return

    # Duplicate submissions, fired without waiting so they overlap any
    # still-running execution: each must resolve to the same digest
    # while executing nothing new (counters verified below). Whether a
    # given duplicate coalesces onto an in-flight job or lands a fresh
    # job served from the cache depends on timing; both paths are
    # "reused", and neither may re-run the simulation.
    pending = [
        client.submit(spec, wait=False)["job"]["job_id"]
        for _ in range(duplicates)
    ]
    for job_id in pending:
        report.checks += 1
        job = client.wait(job_id, timeout=300.0)
        if job["state"] != "done" or job["digest"] != expected:
            report.divergences.append(ServiceDivergence(
                label,
                f"duplicate submission ended state={job['state']!r} "
                f"digest={str(job['digest'])[:16]} (want {expected[:16]})",
            ))
            return


def _check_counters(report, client, specs, duplicates: int) -> None:
    """Exactly one execution per distinct spec, everything else reused."""
    counters = client.metrics()["counters"].get("serve.queue", {})
    executed = counters.get("executed", 0)
    reused = counters.get("coalesced", 0) + counters.get("cache_hits", 0)
    report.checks += 1
    if executed != len(specs):
        report.divergences.append(ServiceDivergence(
            "counters",
            f"expected exactly {len(specs)} executions, "
            f"counters say {executed} ({counters})",
        ))
    report.checks += 1
    if reused != len(specs) * duplicates:
        report.divergences.append(ServiceDivergence(
            "counters",
            f"expected {len(specs) * duplicates} reused submissions, "
            f"counters say {reused} ({counters})",
        ))
