"""Trace specifications and randomized generators for the checker.

Two layers:

- **Seeded generation** (:func:`random_trace`) — pure ``random.Random``
  based, no third-party dependencies, used by the differential CLI and
  the fixed-seed regression tests. A ``(seed, config)`` pair always
  produces the same trace.
- **Hypothesis strategies** (:func:`geometries`, :func:`pattern_ids`,
  :func:`shuffle_functions`, :func:`trace_specs`) — used by the
  property-test suite. Hypothesis is an optional dev dependency, so it
  is imported lazily inside each strategy factory.

A trace is machine-agnostic: it names *regions* (what ``pattmalloc``
will allocate) and *operations* against (region, line, offset) triples.
:mod:`repro.check.differential` materialises the same trace against
both the timed system and the flat oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Byte sizes plain (pattern-0) accesses may use.
_PLAIN_SIZES = (1, 2, 4, 8)

#: Page granularity of the simulator's page table (PageTable default).
_PAGE_BYTES = 4096


@dataclass(frozen=True)
class RegionSpec:
    """One allocation the trace operates on.

    ``alt_pattern`` is the one non-zero pattern the region may be
    accessed with (the Section 4.1 coherence restriction); it requires
    ``shuffled``. ``owner`` is the core that accesses the region —
    regions are single-owner so the final memory image is independent
    of cross-core interleaving and the sequential oracle stays exact.
    """

    lines: int
    shuffled: bool = False
    alt_pattern: int = 0
    owner: int = 0


@dataclass(frozen=True)
class TraceOp:
    """One architectural operation (or compute burst) in a trace."""

    kind: str  # "load" | "store" | "compute"
    core: int = 0
    region: int = 0
    line: int = 0
    offset: int = 0
    size: int = 8
    pattern: int = 0
    payload: bytes | None = None  # stores only
    cycles: int = 1  # compute only


@dataclass(frozen=True)
class TraceSpec:
    """A complete differential test case."""

    seed: int
    cores: int
    regions: tuple[RegionSpec, ...]
    ops: tuple[TraceOp, ...]
    extra: dict = field(default_factory=dict, compare=False)

    def ops_for_core(self, core: int) -> list[TraceOp]:
        return [op for op in self.ops if op.core == core]


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def _plan_regions(
    rng: random.Random, config, max_regions: int, cores: int
) -> list[RegionSpec]:
    """Pick regions that provably fit the bump allocator's layout."""
    geometry = config.geometry
    line_bytes = geometry.line_bytes
    capacity = geometry.capacity_bytes
    supports_patterns = config.is_gs
    regions: list[RegionSpec] = []
    next_free = 0
    for index in range(rng.randint(1, max_regions)):
        shuffled = supports_patterns and rng.random() < 0.75
        lines = rng.randint(1, 8)
        size = lines * line_bytes
        # Mirror PattAllocator's alignment arithmetic to stay in budget.
        if shuffled:
            alignment = max(geometry.row_bytes, _PAGE_BYTES)
            start = _align(next_free, alignment)
            reserved_end = _align(start + size, _PAGE_BYTES)
        else:
            start = _align(next_free, line_bytes)
            reserved_end = start + size
        if reserved_end > capacity:
            break
        next_free = reserved_end
        alt_pattern = 0
        if shuffled and config.pattern_bits > 0 and rng.random() < 0.9:
            alt_pattern = rng.randint(1, (1 << config.pattern_bits) - 1)
        regions.append(
            RegionSpec(
                lines=lines,
                shuffled=shuffled,
                alt_pattern=alt_pattern,
                owner=index % cores,
            )
        )
    if not regions:
        raise ConfigError(
            f"geometry too small for even one trace region "
            f"(capacity {capacity} bytes)"
        )
    return regions


def random_trace(
    seed: int,
    config,
    max_regions: int = 3,
    max_ops: int = 48,
) -> TraceSpec:
    """Deterministically generate one trace for ``config`` from ``seed``."""
    rng = random.Random(seed)
    cores = config.cores
    regions = _plan_regions(rng, config, max_regions, cores)
    line_bytes = config.geometry.line_bytes
    value_bytes = config.geometry.column_bytes
    ops: list[TraceOp] = []
    for _ in range(rng.randint(4, max_ops)):
        roll = rng.random()
        if roll < 0.2:
            core = rng.randrange(cores)
            ops.append(
                TraceOp(kind="compute", core=core, cycles=rng.randint(1, 20))
            )
            continue
        region_index = rng.randrange(len(regions))
        region = regions[region_index]
        line = rng.randrange(region.lines)
        patterned = region.alt_pattern != 0 and rng.random() < 0.5
        if patterned:
            pattern = region.alt_pattern
            slots = line_bytes // value_bytes
            size = value_bytes if rng.random() < 0.7 else 2 * value_bytes
            slot = rng.randrange(max(1, slots - size // value_bytes + 1))
            offset = slot * value_bytes
        else:
            pattern = 0
            size = rng.choice(_PLAIN_SIZES)
            offset = rng.randrange(line_bytes - size + 1)
        is_store = roll >= 0.65
        ops.append(
            TraceOp(
                kind="store" if is_store else "load",
                core=region.owner,
                region=region_index,
                line=line,
                offset=offset,
                size=size,
                pattern=pattern,
                payload=rng.randbytes(size) if is_store else None,
            )
        )
    return TraceSpec(seed=seed, cores=cores, regions=tuple(regions), ops=tuple(ops))


# ----------------------------------------------------------------------
# Hypothesis strategies (lazy imports: hypothesis is a dev dependency)
# ----------------------------------------------------------------------
def geometries(chip_choices: tuple[int, ...] = (2, 4, 8, 16)):
    """Strategy for small, sweepable DRAM geometries."""
    import hypothesis.strategies as st

    from repro.dram.address import Geometry

    return st.builds(
        Geometry,
        chips=st.sampled_from(chip_choices),
        banks=st.sampled_from((2, 4)),
        rows_per_bank=st.sampled_from((8, 16)),
        columns_per_row=st.sampled_from((16, 32)),
    )


def pattern_ids(pattern_bits: int):
    """Strategy for every pattern ID encodable in ``pattern_bits``."""
    import hypothesis.strategies as st

    return st.integers(min_value=0, max_value=(1 << pattern_bits) - 1)


def shuffle_functions(max_stages: int = 4):
    """Strategy over every ShuffleFunction subclass at random stages."""
    import hypothesis.strategies as st

    from repro.core.shuffle import (
        LSBShuffle,
        MaskedShuffle,
        NoShuffle,
        XorFoldShuffle,
    )

    stages = st.integers(min_value=1, max_value=max_stages)
    return st.one_of(
        st.builds(LSBShuffle, stages=stages),
        stages.flatmap(
            lambda s: st.builds(
                MaskedShuffle,
                stages=st.just(s),
                stage_mask=st.integers(min_value=0, max_value=(1 << s) - 1),
            )
        ),
        st.builds(XorFoldShuffle, stages=stages),
        st.just(NoShuffle()),
    )


def trace_specs(config, max_regions: int = 3, max_ops: int = 32):
    """Strategy for differential traces against one system config."""
    import hypothesis.strategies as st

    return st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda seed: random_trace(
            seed, config, max_regions=max_regions, max_ops=max_ops
        )
    )
