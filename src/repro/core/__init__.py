"""The paper's contribution: the Gather-Scatter DRAM substrate.

Shuffle (Section 3.2) + CTL (Section 3.3) + the GS module (Section 3.4)
+ the facade (:class:`GSDRAM`) + Section 6 extensions.
"""

from repro.core.ctl import CTLCost, ColumnTranslationLogic, build_ctls, rank_ctl_cost
from repro.core.extensions import EccGSModule, EccWord, TiledChip
from repro.core.module import GSModule, GSRank
from repro.core.pattern import (
    DEFAULT_PATTERN,
    GatherSpec,
    chip_conflicts,
    gather_spec,
    gathered_values,
    pattern_for_stride,
    pattern_table,
    stride_for_pattern,
    supported_strides,
    validate_pattern,
)
from repro.core.shuffle import (
    LSBShuffle,
    MaskedShuffle,
    NoShuffle,
    ShuffleFunction,
    XorFoldShuffle,
    butterfly_stage,
    shuffle,
    shuffle_key,
    shuffle_stagewise,
    unshuffle,
)
from repro.core.substrate import GSDRAM, HardwareCost
from repro.core.verify import CheckReport, verify_substrate

__all__ = [
    "CTLCost",
    "CheckReport",
    "ColumnTranslationLogic",
    "DEFAULT_PATTERN",
    "EccGSModule",
    "EccWord",
    "GSDRAM",
    "GSModule",
    "GSRank",
    "GatherSpec",
    "HardwareCost",
    "LSBShuffle",
    "MaskedShuffle",
    "NoShuffle",
    "ShuffleFunction",
    "TiledChip",
    "XorFoldShuffle",
    "build_ctls",
    "butterfly_stage",
    "chip_conflicts",
    "gather_spec",
    "gathered_values",
    "pattern_for_stride",
    "pattern_table",
    "rank_ctl_cost",
    "shuffle",
    "shuffle_key",
    "shuffle_stagewise",
    "stride_for_pattern",
    "supported_strides",
    "unshuffle",
    "validate_pattern",
    "verify_substrate",
]
