"""Column Translation Logic (paper Section 3.3, Figure 5).

Each chip (or the module, on the chips' behalf) carries one CTL that
computes the chip-local column address for every column command:

    chip_column = (chip_id AND pattern_id) XOR issued_column

The CTL is two bitwise operations plus a chip-ID register and a mux
that bypasses translation for non-column commands — the entire
hardware cost of GS-DRAM on the DRAM side (Section 4.4).

Section 6.2's *wider pattern IDs* repeat the physical chip ID to fill
the pattern width (chip 3 of 8 with a 6-bit pattern uses ``011011``),
which this class supports via ``pattern_bits`` > ``log2(chips)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern import validate_pattern
from repro.errors import PatternError
from repro.utils.bitops import ilog2, mask, repeat_to_width


@dataclass(frozen=True)
class CTLCost:
    """Gate/register cost of one CTL instance (Section 4.4)."""

    and_gates: int
    xor_gates: int
    mux_gates: int
    register_bits: int

    @property
    def total_gates(self) -> int:
        return self.and_gates + self.xor_gates + self.mux_gates


class ColumnTranslationLogic:
    """Per-chip column translation: ``(chip_id & pattern) ^ column``."""

    def __init__(self, chip_id: int, num_chips: int, pattern_bits: int) -> None:
        if num_chips <= 0 or chip_id < 0 or chip_id >= num_chips:
            raise PatternError(
                f"chip_id {chip_id} invalid for {num_chips}-chip rank"
            )
        if pattern_bits <= 0:
            raise PatternError("pattern_bits must be positive")
        self.chip_id = chip_id
        self.num_chips = num_chips
        self.pattern_bits = pattern_bits
        chip_bits = ilog2(num_chips)
        if pattern_bits > chip_bits:
            # Section 6.2: widen by repeating the physical chip ID.
            self.effective_chip_id = repeat_to_width(chip_id, chip_bits, pattern_bits)
        else:
            self.effective_chip_id = chip_id & mask(pattern_bits)

    def translate(self, column: int, pattern: int, is_column_command: bool = True) -> int:
        """Chip-local column for an issued ``column`` and ``pattern``.

        The mux in Figure 5 forwards the address untranslated for
        non-column commands (ACTIVATE row addresses must never be
        translated).
        """
        if not is_column_command:
            return column
        validate_pattern(pattern, self.pattern_bits)
        return (self.effective_chip_id & pattern) ^ column

    def cost(self) -> CTLCost:
        """Hardware cost in gates/bits for this CTL (Section 4.4).

        One p-bit bitwise AND, one p-bit bitwise XOR, and a p-bit 2:1
        mux count as ``p`` gates each; the chip-ID register is ``p``
        bits. For GS-DRAM(8, 3, 3) the rank total is 8 * 9 = 72 gates
        and 24 register bits, matching the paper.
        """
        p = self.pattern_bits
        return CTLCost(and_gates=p, xor_gates=p, mux_gates=p, register_bits=p)

    def __repr__(self) -> str:
        return (
            f"CTL(chip={self.chip_id}, effective={self.effective_chip_id:0{self.pattern_bits}b},"
            f" pattern_bits={self.pattern_bits})"
        )


def build_ctls(num_chips: int, pattern_bits: int) -> list[ColumnTranslationLogic]:
    """One CTL per chip, as placed in the module (Figure 6)."""
    return [
        ColumnTranslationLogic(chip_id, num_chips, pattern_bits)
        for chip_id in range(num_chips)
    ]


def rank_ctl_cost(num_chips: int, pattern_bits: int) -> CTLCost:
    """Aggregate CTL cost across a rank."""
    per_chip = ColumnTranslationLogic(0, num_chips, pattern_bits).cost()
    return CTLCost(
        and_gates=per_chip.and_gates * num_chips,
        xor_gates=per_chip.xor_gates * num_chips,
        mux_gates=per_chip.mux_gates * num_chips,
        register_bits=per_chip.register_bits * num_chips,
    )
