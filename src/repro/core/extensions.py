"""Section 6 extensions: programmable shuffling, wider patterns,
intra-chip column translation, and ECC support.

Programmable shuffle functions live in :mod:`repro.core.shuffle`
(``MaskedShuffle``, ``XorFoldShuffle``); wider pattern IDs live in the
CTL (chip-ID repetition). This module adds the remaining two pieces:

- **Intra-chip column translation** (Section 6.3): each DRAM chip is a
  2-D collection of tiles (MATs), each contributing equally to the
  chip's 8-byte column. Placing a CTL per tile lets a single READ
  gather values *smaller* than 8 bytes (e.g. 4-byte floats).
- **ECC** (Section 6.3): with an ECC chip that supports intra-chip
  translation, a gather with a non-zero pattern can fetch each data
  value's ECC word from a different tile of the ECC chip, keeping ECC
  coverage for all patterns with no extra bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ctl import ColumnTranslationLogic
from repro.errors import PatternError
from repro.utils.bitops import ilog2, is_power_of_two


class TiledChip:
    """A DRAM chip modelled as ``tiles`` MATs with per-tile CTLs.

    Each column access normally reads ``tiles`` sub-values, one per
    tile, concatenated into the chip's output word. With intra-chip
    translation, each tile applies its own CTL using the *tile ID* in
    place of the chip ID, so a single column command can select a
    different column per tile.
    """

    def __init__(
        self,
        tiles: int,
        columns_per_row: int,
        tile_bytes: int,
        pattern_bits: int,
    ) -> None:
        if not is_power_of_two(tiles):
            raise PatternError(f"tile count must be a power of two, got {tiles}")
        self.tiles = tiles
        self.columns_per_row = columns_per_row
        self.tile_bytes = tile_bytes
        self.pattern_bits = pattern_bits
        self.ctls = [
            ColumnTranslationLogic(tile, tiles, pattern_bits) for tile in range(tiles)
        ]
        # Rows allocated lazily: row -> bytearray of columns * tiles * tile_bytes.
        self._rows: dict[int, bytearray] = {}

    def _row(self, row: int) -> bytearray:
        data = self._rows.get(row)
        if data is None:
            data = bytearray(self.columns_per_row * self.tiles * self.tile_bytes)
            self._rows[row] = data
        return data

    def _slot(self, column: int, tile: int) -> slice:
        start = (column * self.tiles + tile) * self.tile_bytes
        return slice(start, start + self.tile_bytes)

    def write_column(self, row: int, column: int, data: bytes, pattern: int = 0) -> None:
        """Scatter one chip word across tiles (tile CTLs applied)."""
        if len(data) != self.tiles * self.tile_bytes:
            raise PatternError(
                f"chip word is {self.tiles * self.tile_bytes} bytes, got {len(data)}"
            )
        storage = self._row(row)
        for tile, ctl in enumerate(self.ctls):
            tile_column = ctl.translate(column, pattern) % self.columns_per_row
            lane = data[tile * self.tile_bytes : (tile + 1) * self.tile_bytes]
            storage[self._slot(tile_column, tile)] = lane

    def read_column(self, row: int, column: int, pattern: int = 0) -> bytes:
        """Gather one chip word: tile ``t`` reads column ``(t & p) ^ c``."""
        storage = self._rows.get(row)
        if storage is None:
            return bytes(self.tiles * self.tile_bytes)
        parts = []
        for ctl in self.ctls:
            tile_column = ctl.translate(column, pattern) % self.columns_per_row
            parts.append(bytes(storage[self._slot(tile_column, ctl.chip_id)]))
        return b"".join(parts)


@dataclass(frozen=True)
class EccWord:
    """An ECC codeword for one 8-byte data value (SECDED-style parity).

    We model the code as an 8-bit XOR checksum per value — enough to
    demonstrate coverage (any single-byte corruption is detected), while
    keeping the model simple.
    """

    parity: int

    @classmethod
    def of(cls, value: bytes) -> "EccWord":
        parity = 0
        for byte in value:
            parity ^= byte
        return cls(parity=parity)

    def check(self, value: bytes) -> bool:
        return EccWord.of(value).parity == self.parity


class EccGSModule:
    """A GS module plus an ECC chip with intra-chip translation.

    Wraps a :class:`~repro.core.module.GSModule` and maintains one ECC
    byte per 8-byte value in a :class:`TiledChip` with as many tiles as
    the module has data chips. On a gather with pattern ``p``, the ECC
    chip's tile ``t`` translates the column exactly like data chip
    ``t``, so the gathered ECC line covers the gathered data line
    value-for-value.
    """

    def __init__(self, module) -> None:
        from repro.core.module import GSModule  # local to avoid cycle at import

        if not isinstance(module, GSModule):
            raise PatternError("EccGSModule requires a GSModule")
        self.module = module
        geometry = module.geometry
        self.ecc_chip = TiledChip(
            tiles=geometry.chips,
            columns_per_row=geometry.columns_per_row,
            tile_bytes=1,
            pattern_bits=module.pattern_bits,
        )
        self._ecc_rows: dict[tuple[int, int], bool] = {}

    def _ecc_row_key(self, bank: int, row: int) -> int:
        """Flatten (bank, row) into the ECC chip's row index."""
        return bank * self.module.geometry.rows_per_bank + row

    def write_line(
        self, address: int, data: bytes, pattern: int = 0, shuffled: bool = True
    ) -> None:
        """Write data + recompute the ECC bytes for the written values."""
        self.module.write_line(address, data, pattern, shuffled)
        loc = self.module.decode(address)
        width = self.module.geometry.column_bytes
        # ECC tile t must hold the parity of whatever data chip t holds;
        # recompute parity lane-aligned with the chips' stored columns.
        lanes = self.module.lane_map(loc.column, pattern, shuffled)
        order = self.module.assembly_order(loc.column, pattern, shuffled)
        ecc_row = self._ecc_row_key(loc.bank, loc.row)
        current = bytearray(
            self.ecc_chip.read_column(ecc_row, loc.column, pattern)
        )
        for position, chip_id in enumerate(order):
            value = data[position * width : (position + 1) * width]
            current[chip_id] = EccWord.of(value).parity
        self.ecc_chip.write_column(ecc_row, loc.column, bytes(current), pattern)

    def read_line_checked(
        self, address: int, pattern: int = 0, shuffled: bool = True
    ) -> bytes:
        """Read a (gathered) line, verifying every value against its ECC."""
        data = self.module.read_line(address, pattern, shuffled)
        loc = self.module.decode(address)
        width = self.module.geometry.column_bytes
        order = self.module.assembly_order(loc.column, pattern, shuffled)
        ecc_row = self._ecc_row_key(loc.bank, loc.row)
        ecc = self.ecc_chip.read_column(ecc_row, loc.column, pattern)
        for position, chip_id in enumerate(order):
            value = data[position * width : (position + 1) * width]
            if not EccWord(parity=ecc[chip_id]).check(value):
                raise PatternError(
                    f"ECC mismatch at address {address:#x}, pattern {pattern}, "
                    f"value {position}"
                )
        return data

    def corrupt_value(self, address: int, value_index: int) -> None:
        """Flip one byte of a stored value (fault injection for tests)."""
        line = bytearray(self.module.read_line(address, pattern=0))
        width = self.module.geometry.column_bytes
        line[value_index * width] ^= 0xFF
        # Bypass ECC update: write through the raw module only.
        self.module.write_line(address, bytes(line), pattern=0)
