"""The GS-DRAM module: shuffled data mapping + per-chip CTL (Figure 6).

:class:`GSRank` extends the plain rank with one Column Translation
Logic per chip; :class:`GSModule` extends the plain module with the
controller-side data shuffling datapath. Together they implement the
full substrate: a READ with pattern ``p`` and column ``c`` returns a
cache line whose 8-byte values are gathered from per-chip columns
``(chip & p) ^ c``, assembled in ascending row-buffer order; a WRITE
scatters symmetrically.

The *shuffle flag* (Section 4.3) is honoured per access: pages whose
data structures never use strided patterns are stored unshuffled, and
behave exactly like commodity DRAM.
"""

from __future__ import annotations

from repro.core.ctl import ColumnTranslationLogic, build_ctls
from repro.core.shuffle import LSBShuffle, ShuffleFunction
from repro.dram.address import Geometry, MappingPolicy
from repro.dram.module import DRAMModule
from repro.dram.rank import Rank
from repro.dram.timing import DEFAULT_CPU_PER_BUS, DRAMTiming
from repro.errors import AddressError, PatternError
from repro.utils.bitops import ilog2, mask


class GSRank(Rank):
    """A rank whose chips each own a CTL (Figure 6's CTL-0 .. CTL-3)."""

    def __init__(
        self,
        chips: int,
        banks: int,
        rows_per_bank: int,
        columns_per_row: int,
        column_bytes: int,
        pattern_bits: int,
    ) -> None:
        super().__init__(chips, banks, rows_per_bank, columns_per_row, column_bytes)
        self.pattern_bits = pattern_bits
        self.ctls: list[ColumnTranslationLogic] = build_ctls(chips, pattern_bits)

    def chip_column(self, chip_id: int, column: int, pattern: int) -> int:
        """Per-chip column via the CTL; wraps within the row."""
        translated = self.ctls[chip_id].translate(column, pattern)
        if translated >= self.columns_per_row:
            raise AddressError(
                f"translated column {translated} exceeds row width "
                f"{self.columns_per_row}"
            )
        return translated


class GSModule(DRAMModule):
    """GS-DRAM(c, s, p): a module with shuffling and pattern support.

    Parameters mirror the paper's ``GS-DRAM_{c,s,p}`` notation:
    ``geometry.chips`` is *c*, ``shuffle.stages`` is *s*, and
    ``pattern_bits`` is *p*. The paper's evaluation configuration is
    GS-DRAM(8, 3, 3) — the defaults here.
    """

    def __init__(
        self,
        geometry: Geometry | None = None,
        timing: DRAMTiming | None = None,
        cpu_per_bus: int = DEFAULT_CPU_PER_BUS,
        policy: MappingPolicy = MappingPolicy.ROW_BANK_COLUMN,
        shuffle: ShuffleFunction | None = None,
        pattern_bits: int = 3,
    ) -> None:
        self.pattern_bits = pattern_bits
        self._shuffle_fn: ShuffleFunction | None = shuffle  # read by _build_rank
        super().__init__(geometry, timing, cpu_per_bus, policy)
        if shuffle is None:
            shuffle = LSBShuffle(stages=ilog2(self.geometry.chips))
        self.shuffle = shuffle
        if shuffle.stages > ilog2(self.geometry.chips):
            raise PatternError(
                f"{shuffle.stages} shuffle stages exceed log2(chips)="
                f"{ilog2(self.geometry.chips)}"
            )

    def _build_rank(self) -> Rank:
        g = self.geometry
        return GSRank(
            g.chips, g.banks, g.rows_per_bank, g.columns_per_row,
            g.column_bytes, self.pattern_bits,
        )

    @property
    def supports_patterns(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Gather geometry
    # ------------------------------------------------------------------
    def lane_map(
        self, column: int, pattern: int, shuffled: bool = True
    ) -> list[tuple[int, int, int]]:
        """Per-chip (chip_column, value_index, row_index) for an access.

        ``value_index`` is which logical 8-byte value of pattern-0 line
        ``chip_column`` the chip supplies; ``row_index`` is the global
        8-byte-value index within the logical row buffer
        (``chip_column * chips + value_index``). Entry ``i`` describes
        chip ``i``.
        """
        chips = self.geometry.chips
        rank: GSRank = self.rank  # type: ignore[assignment]
        entries = []
        for chip_id in range(chips):
            chip_column = rank.chip_column(chip_id, column, pattern)
            key = self.shuffle.control_bits(chip_column) if shuffled else 0
            value_index = chip_id ^ key
            entries.append(
                (chip_column, value_index, chip_column * chips + value_index)
            )
        return entries

    def assembly_order(
        self, column: int, pattern: int, shuffled: bool = True
    ) -> list[int]:
        """Chip IDs in the order their lanes appear in the gathered line.

        The controller assembles gathered values in ascending row-buffer
        order, which for stride patterns is the natural gather order and
        for pattern 0 reproduces the original line.
        """
        lanes = self.lane_map(column, pattern, shuffled)
        order = sorted(range(len(lanes)), key=lambda chip: lanes[chip][2])
        row_indices = [lanes[chip][2] for chip in order]
        if len(set(row_indices)) != len(row_indices):
            raise PatternError(
                f"pattern {pattern} at column {column} gathers duplicate values "
                "(insufficient shuffle stages for this pattern)"
            )
        return order

    def gathers_correctly(self, pattern: int) -> bool:
        """True if ``pattern`` gathers its intended value family here.

        The intent of pattern ``p`` is defined by the fully-shuffled
        geometry (:func:`repro.core.pattern.gather_spec`): e.g. pattern
        7 means "stride 8". With fewer shuffle stages, the CTL still
        returns one value per chip, but they are the *wrong* values —
        this check catches that (ablation abl-1 territory).
        """
        from repro.core.pattern import gather_spec

        chips = self.geometry.chips
        try:
            for column in range(min(self.geometry.columns_per_row, 16)):
                actual = sorted(
                    entry[2] for entry in self.lane_map(column, pattern)
                )
                intended = list(gather_spec(chips, pattern, column).indices)
                if actual != intended:
                    return False
                self.assembly_order(column, pattern)
        except PatternError:
            return False
        return True

    # ------------------------------------------------------------------
    # Functional data movement (overrides add shuffle + patterns)
    # ------------------------------------------------------------------
    def read_line(self, address: int, pattern: int = 0, shuffled: bool = True) -> bytes:
        """Read one (possibly gathered) cache line.

        For pattern 0 this unshuffles back to the logical line; for a
        stride pattern the result holds the gathered values in ascending
        address order.
        """
        loc = self.mapping.decode(address)
        if loc.offset != 0:
            raise AddressError(f"line read of unaligned address {address:#x}")
        rank: GSRank = self.rank  # type: ignore[assignment]
        lanes = self.lane_map(loc.column, pattern, shuffled)
        order = self.assembly_order(loc.column, pattern, shuffled)
        parts = []
        for chip_id in order:
            chip_column = lanes[chip_id][0]
            parts.append(rank.chips[chip_id].read_column(loc.bank, loc.row, chip_column))
        return b"".join(parts)

    def write_line(
        self, address: int, data: bytes, pattern: int = 0, shuffled: bool = True
    ) -> None:
        """Write (scatter) one cache line; exact inverse of read_line."""
        loc = self.mapping.decode(address)
        if loc.offset != 0:
            raise AddressError(f"line write of unaligned address {address:#x}")
        if len(data) != self.line_bytes:
            raise AddressError(
                f"line write of {len(data)} bytes, line size is {self.line_bytes}"
            )
        rank: GSRank = self.rank  # type: ignore[assignment]
        width = self.geometry.column_bytes
        lanes = self.lane_map(loc.column, pattern, shuffled)
        order = self.assembly_order(loc.column, pattern, shuffled)
        for position, chip_id in enumerate(order):
            chip_column = lanes[chip_id][0]
            lane = data[position * width : (position + 1) * width]
            rank.chips[chip_id].write_column(loc.bank, loc.row, chip_column, lane)

    # ------------------------------------------------------------------
    # Overlap geometry for cache coherence (Section 4.1)
    # ------------------------------------------------------------------
    def constituents(
        self, address: int, pattern: int, shuffled: bool = True
    ) -> list[tuple[int, int]]:
        """(pattern-0 line address, byte offset) per gathered value.

        Entry ``i`` locates the ``i``-th 8-byte value of the gathered
        line within the flat physical address space. Used by the cache
        coherence layer to find overlapping lines of the *other*
        pattern.
        """
        loc = self.mapping.decode(address)
        if loc.offset != 0:
            raise AddressError(f"constituents of unaligned address {address:#x}")
        lanes = self.lane_map(loc.column, pattern, shuffled)
        order = self.assembly_order(loc.column, pattern, shuffled)
        width = self.geometry.column_bytes
        result = []
        for chip_id in order:
            chip_column, value_index, _row_index = lanes[chip_id]
            base = self.mapping.encode(loc.bank, loc.row, chip_column)
            result.append((base, value_index * width))
        return result

    def overlapping_columns(self, column: int, pattern: int) -> set[int]:
        """Columns of pattern-0 lines that share data with this gather."""
        chips = self.geometry.chips
        return {
            (chip_id & pattern) ^ column & mask(self.mapping.column_bits)
            for chip_id in range(chips)
        }
