"""Pattern-ID algebra for GS-DRAM.

A *pattern ID* is the small modifier the memory controller sends with
each column command (Section 3.3). Pattern ``0`` is the default
(contiguous) access; pattern ``2^k - 1`` gathers data with stride
``2^k``. This module holds the pure arithmetic relating patterns,
strides, and the global row-buffer indices each (pattern, column) pair
gathers — the content of the paper's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PatternError
from repro.utils.bitops import ilog2, is_power_of_two, mask

#: The default pattern: a conventional contiguous cache-line access.
DEFAULT_PATTERN = 0


def validate_pattern(pattern: int, pattern_bits: int) -> None:
    """Raise PatternError unless ``pattern`` fits in ``pattern_bits``."""
    if pattern < 0 or pattern > mask(pattern_bits):
        raise PatternError(
            f"pattern {pattern} does not fit in {pattern_bits} pattern bits"
        )


def pattern_for_stride(stride: int) -> int:
    """Pattern ID that gathers ``stride``-strided values: ``stride - 1``.

    Only power-of-2 strides are supported (Section 3.1): stride 2 ->
    pattern 1, stride 4 -> pattern 3, stride 8 -> pattern 7.

    >>> pattern_for_stride(8)
    7
    """
    if not is_power_of_two(stride):
        raise PatternError(f"GS-DRAM supports power-of-2 strides, got {stride}")
    return stride - 1


def stride_for_pattern(pattern: int) -> int | None:
    """Stride gathered by ``pattern``, or None for mixed patterns.

    Patterns of the form ``2^k - 1`` gather a uniform stride ``2^k``.
    Other patterns (e.g. pattern 2 with 4 chips) gather useful but
    non-uniform index sets — the paper's "dual stride (1, 7)".
    """
    if pattern < 0:
        raise PatternError(f"negative pattern {pattern}")
    if is_power_of_two(pattern + 1):
        return pattern + 1
    return None


@dataclass(frozen=True)
class GatherSpec:
    """Geometry of one gather: which values a (pattern, column) fetches.

    ``indices`` are global 8-byte-value indices within the logical row
    buffer, listed in ascending order (the order in which the memory
    controller assembles the gathered cache line).
    """

    chips: int
    pattern: int
    column: int
    indices: tuple[int, ...]

    @property
    def is_contiguous(self) -> bool:
        first = self.indices[0]
        return all(idx == first + i for i, idx in enumerate(self.indices))

    @property
    def uniform_stride(self) -> int | None:
        """The single stride between gathered values, if uniform."""
        gaps = {
            second - first
            for first, second in zip(self.indices, self.indices[1:])
        }
        if len(gaps) == 1:
            return gaps.pop()
        return None


def gathered_values(
    chips: int,
    pattern: int,
    column: int,
    shuffle_mask: int | None = None,
) -> list[tuple[int, int, int]]:
    """Per-chip (chip_id, chip_column, value_index) for one gather.

    ``value_index`` is the logical 8-byte value (of line ``chip_column``)
    that chip ``chip_id`` holds under column-ID shuffling with
    ``shuffle_mask`` (defaults to the full ``chips - 1`` mask, i.e.
    ``log2(chips)`` shuffle stages).

    This is the analytical model of the hardware: chip ``d`` accesses
    column ``(d & pattern) XOR column`` (the CTL), and under shuffling
    that column's value ``d XOR (chip_column & shuffle_mask)`` lives on
    chip ``d``.
    """
    if not is_power_of_two(chips):
        raise PatternError(f"chip count must be a power of two, got {chips}")
    chip_mask = chips - 1
    if shuffle_mask is None:
        shuffle_mask = chip_mask
    results = []
    for chip_id in range(chips):
        chip_column = (chip_id & pattern) ^ column
        value_index = chip_id ^ (chip_column & shuffle_mask)
        results.append((chip_id, chip_column, value_index))
    return results


def gather_spec(
    chips: int,
    pattern: int,
    column: int,
    shuffle_mask: int | None = None,
) -> GatherSpec:
    """Global row-buffer indices gathered by (pattern, column).

    Reproduces one cell family of the paper's Figure 7: e.g. with 4
    chips, pattern 3, column 0 gathers indices (0, 4, 8, 12).

    >>> gather_spec(4, 3, 0).indices
    (0, 4, 8, 12)
    """
    per_chip = gathered_values(chips, pattern, column, shuffle_mask)
    indices = sorted(
        chip_column * chips + value_index
        for _chip_id, chip_column, value_index in per_chip
    )
    return GatherSpec(chips=chips, pattern=pattern, column=column, indices=tuple(indices))


def pattern_table(chips: int, columns: int, pattern_bits: int) -> dict[int, list[tuple[int, ...]]]:
    """Full Figure 7 table: pattern -> list of gathered index tuples.

    For each pattern, the list holds the gathered tuple for every column
    ID ``0 .. columns-1``.
    """
    table: dict[int, list[tuple[int, ...]]] = {}
    for pattern in range(1 << pattern_bits):
        validate_pattern(pattern, pattern_bits)
        table[pattern] = [
            gather_spec(chips, pattern, column).indices for column in range(columns)
        ]
    return table


def chip_conflicts(chips: int, stride: int, shuffle_mask: int, count: int | None = None) -> int:
    """Maximum number of stride-``stride`` values mapped to one chip.

    This is the paper's "chip conflict" metric (Challenge 1): the
    number of READ commands needed to gather ``count`` values (default:
    one value per chip) with the given shuffle. With no shuffling
    (``shuffle_mask = 0``) and stride >= chips, every value lands on the
    same chip, so a gather costs ``chips`` READs; with full shuffling it
    costs exactly 1.
    """
    if count is None:
        count = chips
    per_chip: dict[int, int] = {}
    for i in range(count):
        index = i * stride
        line, value = divmod(index, chips)
        chip = value ^ (line & shuffle_mask)
        per_chip[chip] = per_chip.get(chip, 0) + 1
    return max(per_chip.values())


def supported_strides(chips: int, shuffle_stages: int, pattern_bits: int) -> list[int]:
    """Strides gathered in a single READ by GS-DRAM(c, s, p).

    A stride ``2^k`` needs pattern ``2^k - 1`` to fit in ``pattern_bits``
    and its shuffle to be covered by ``shuffle_stages`` stages (and at
    most ``chips`` distinct values per line family).
    """
    strides = []
    k = 1
    while True:
        stride = 1 << k
        pattern = stride - 1
        if pattern > mask(pattern_bits):
            break
        if pattern <= mask(min(shuffle_stages, ilog2(chips))):
            strides.append(stride)
        k += 1
    return strides
