"""Column-ID-based data shuffling (paper Section 3.2, Figure 4).

When the memory controller writes the cache line with column address
``C``, an ``s``-stage butterfly network permutes the line's 8-byte
values across chips: stage ``k`` (0-based) swaps groups of ``2^k``
values iff bit ``k`` of ``C`` is set. The net effect is the closed form

    chip(value j, column C) = j XOR (C mod 2^s)

The butterfly is implemented both stage-by-stage (mirroring the
hardware of Figure 4) and via the XOR closed form; the test suite
checks they agree, and the closed form is what the hot paths use.

Section 6.1's *programmable shuffling* generalises which column bits
drive the stages; that is captured by the :class:`ShuffleFunction`
hierarchy here and consumed by the GS module.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import PatternError
from repro.utils.bitops import mask, xor_fold

T = TypeVar("T")


def butterfly_stage(values: list[T], stage: int) -> list[T]:
    """Apply one shuffle stage: swap adjacent groups of ``2^stage`` values.

    Stage 0 swaps adjacent values, stage 1 swaps adjacent pairs, etc.
    (Figure 4's Stage 1 and Stage 2, 0-indexed here.)
    """
    group = 1 << stage
    if len(values) % (2 * group) != 0:
        raise PatternError(
            f"stage {stage} needs a multiple of {2 * group} values, "
            f"got {len(values)}"
        )
    out = list(values)
    for base in range(0, len(values), 2 * group):
        out[base : base + group] = values[base + group : base + 2 * group]
        out[base + group : base + 2 * group] = values[base : base + group]
    return out


def shuffle_stagewise(values: Sequence[T], control: int, stages: int) -> list[T]:
    """Run the butterfly network with explicit per-stage ``control`` bits.

    Bit ``k`` of ``control`` enables stage ``k``. This mirrors the
    hardware datapath; prefer :func:`shuffle` for bulk use.
    """
    out = list(values)
    for stage in range(stages):
        if control >> stage & 1:
            out = butterfly_stage(out, stage)
    return out


def shuffle(values: Sequence[T], column: int, stages: int) -> list[T]:
    """Shuffle a line's values for storage at ``column``.

    Closed form of the butterfly: output chip ``i`` receives input value
    ``i XOR (column mod 2^stages)``. The butterfly is an involution, so
    the same function unshuffles (see :func:`unshuffle`).
    """
    key = column & mask(stages)
    if key == 0:
        return list(values)
    return [values[i ^ key] for i in range(len(values))]


def unshuffle(values: Sequence[T], column: int, stages: int) -> list[T]:
    """Inverse of :func:`shuffle` (identical, since XOR is an involution)."""
    return shuffle(values, column, stages)


def shuffle_key(column: int, stages: int) -> int:
    """The XOR key applied to value indices for this column."""
    return column & mask(stages)


class ShuffleFunction:
    """Maps a column ID to the butterfly's per-stage control bits.

    The default hardware (Section 3.2) uses the ``s`` least-significant
    column bits directly. Section 6.1 allows a *shuffle mask* disabling
    some stages, or arbitrary bit combinations (e.g. XOR of bit groups).

    All concrete functions must be XOR-linear in a loose sense: the
    controller needs to invert them, and since the butterfly with
    control ``k`` is "XOR index with k", inversion is automatic — the
    same control bits unshuffle.
    """

    #: Number of stages this function drives (log2 of chips, usually).
    stages: int

    def control_bits(self, column: int) -> int:
        """Per-stage control word for ``column``."""
        raise NotImplementedError

    def apply(self, values: Sequence[T], column: int) -> list[T]:
        """Shuffle ``values`` according to this function at ``column``."""
        key = self.control_bits(column)
        if key == 0:
            return list(values)
        return [values[i ^ key] for i in range(len(values))]

    def invert(self, values: Sequence[T], column: int) -> list[T]:
        """Unshuffle; identical to :meth:`apply` (XOR involution)."""
        return self.apply(values, column)


class LSBShuffle(ShuffleFunction):
    """The paper's default: stages driven by the column ID's LSBs."""

    def __init__(self, stages: int) -> None:
        if stages < 0:
            raise PatternError(f"negative shuffle stage count: {stages}")
        self.stages = stages

    def control_bits(self, column: int) -> int:
        return column & mask(self.stages)

    def __repr__(self) -> str:
        return f"LSBShuffle(stages={self.stages})"


class MaskedShuffle(ShuffleFunction):
    """Section 6.1: an explicit mask disables selected stages.

    ``MaskedShuffle(stages=2, stage_mask=0b10)`` disables the
    adjacent-value swap and keeps the pair swap.
    """

    def __init__(self, stages: int, stage_mask: int) -> None:
        if stage_mask < 0 or stage_mask > mask(stages):
            raise PatternError(
                f"stage_mask {stage_mask:#b} does not fit in {stages} stages"
            )
        self.stages = stages
        self.stage_mask = stage_mask

    def control_bits(self, column: int) -> int:
        return column & self.stage_mask

    def __repr__(self) -> str:
        return f"MaskedShuffle(stages={self.stages}, mask={self.stage_mask:#b})"


class XorFoldShuffle(ShuffleFunction):
    """Section 6.1: control bits from an XOR of column-bit groups.

    Folding the whole column ID into ``stages`` bits spreads shuffle
    decisions across high and low column bits, in the spirit of
    XOR-scheme interleaving [Frailong+ ICPP'85].
    """

    def __init__(self, stages: int) -> None:
        if stages <= 0:
            raise PatternError("XorFoldShuffle needs at least one stage")
        self.stages = stages

    def control_bits(self, column: int) -> int:
        return xor_fold(column, self.stages)

    def __repr__(self) -> str:
        return f"XorFoldShuffle(stages={self.stages})"


class NoShuffle(ShuffleFunction):
    """Shuffling disabled: the Section 2 direct mapping (ablation abl-1)."""

    stages = 0

    def control_bits(self, column: int) -> int:
        return 0

    def __repr__(self) -> str:
        return "NoShuffle()"
