"""The GS-DRAM substrate facade: the paper-facing functional API.

:class:`GSDRAM` wraps a :class:`~repro.core.module.GSModule` with the
operations the paper describes — gather/scatter by stride, pattern
support queries, chip-conflict analysis, and the Section 4.4 hardware
cost model. The timed path (memory controller, caches, cores) is built
on the same module in :mod:`repro.sim.system`; this facade is the
timing-free entry point used by examples and by the functional layers
of the applications.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.ctl import rank_ctl_cost
from repro.core.module import GSModule
from repro.core.pattern import (
    DEFAULT_PATTERN,
    chip_conflicts,
    gather_spec,
    pattern_for_stride,
    stride_for_pattern,
    supported_strides,
)
from repro.core.shuffle import LSBShuffle, NoShuffle, ShuffleFunction
from repro.dram.address import Geometry
from repro.errors import PatternError
from repro.utils.bitops import ilog2, mask


@dataclass(frozen=True)
class HardwareCost:
    """Section 4.4 hardware cost summary for a GS-DRAM configuration."""

    dram_logic_gates: int
    dram_register_bits: int
    extra_channel_pins: int
    cache_tag_bits_per_line: int
    cache_area_overhead: float

    def render(self) -> str:
        return (
            f"DRAM-side: {self.dram_logic_gates} gates, "
            f"{self.dram_register_bits} register bits; "
            f"{self.extra_channel_pins} extra channel pin(s); "
            f"cache: +{self.cache_tag_bits_per_line} tag bits/line "
            f"({self.cache_area_overhead:.2%} area)"
        )


class GSDRAM:
    """GS-DRAM(c, s, p): functional gather/scatter over a DRAM module.

    >>> gs = GSDRAM.configure(chips=8, shuffle_stages=3, pattern_bits=3)
    >>> gs.supported_strides()
    [2, 4, 8]
    """

    def __init__(self, module: GSModule) -> None:
        self.module = module

    @classmethod
    def configure(
        cls,
        chips: int = 8,
        shuffle_stages: int | None = None,
        pattern_bits: int = 3,
        geometry: Geometry | None = None,
        shuffle: ShuffleFunction | None = None,
    ) -> "GSDRAM":
        """Build a GS-DRAM(c, s, p) with a default or custom geometry."""
        if geometry is None:
            geometry = Geometry(chips=chips)
        elif geometry.chips != chips:
            raise PatternError(
                f"geometry has {geometry.chips} chips but {chips} requested"
            )
        if shuffle is None:
            stages = ilog2(chips) if shuffle_stages is None else shuffle_stages
            shuffle = LSBShuffle(stages) if stages > 0 else NoShuffle()
        module = GSModule(geometry=geometry, shuffle=shuffle, pattern_bits=pattern_bits)
        return cls(module)

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def chips(self) -> int:
        return self.module.geometry.chips

    @property
    def shuffle_stages(self) -> int:
        return self.module.shuffle.stages

    @property
    def pattern_bits(self) -> int:
        return self.module.pattern_bits

    @property
    def line_bytes(self) -> int:
        return self.module.line_bytes

    @property
    def value_bytes(self) -> int:
        """Size of one gathered value (one chip's column width)."""
        return self.module.geometry.column_bytes

    def name(self) -> str:
        """Paper notation, e.g. ``GS-DRAM(8,3,3)``."""
        return f"GS-DRAM({self.chips},{self.shuffle_stages},{self.pattern_bits})"

    def supported_strides(self) -> list[int]:
        """Strides gatherable in one READ under this configuration."""
        return supported_strides(self.chips, self.shuffle_stages, self.pattern_bits)

    def pattern_for_stride(self, stride: int) -> int:
        """Pattern ID for a power-of-2 ``stride``; validates support."""
        pattern = pattern_for_stride(stride)
        if pattern > mask(self.pattern_bits):
            raise PatternError(
                f"stride {stride} needs pattern {pattern}, which exceeds "
                f"{self.pattern_bits} pattern bits"
            )
        return pattern

    def reads_required(self, stride: int, shuffled: bool = True) -> int:
        """READ commands needed to gather ``chips`` stride-spaced values.

        With shuffling and a supported stride this is 1; without
        shuffling (Section 2's direct mapping) a stride >= chips puts
        every value on one chip, costing ``chips`` READs.
        """
        shuffle_mask = (
            mask(self.shuffle_stages) if shuffled and self.shuffle_stages else 0
        )
        return chip_conflicts(self.chips, stride, shuffle_mask)

    def gather_indices(self, pattern: int, column: int) -> tuple[int, ...]:
        """Row-buffer value indices gathered by (pattern, column) (Fig. 7)."""
        shuffle_mask = mask(self.shuffle_stages)
        return gather_spec(self.chips, pattern, column, shuffle_mask).indices

    def pattern_stride(self, pattern: int) -> int | None:
        """Uniform stride of ``pattern`` or None (e.g. the dual-stride 2)."""
        return stride_for_pattern(pattern)

    # ------------------------------------------------------------------
    # Functional gather/scatter
    # ------------------------------------------------------------------
    def read(self, address: int, pattern: int = DEFAULT_PATTERN, shuffled: bool = True) -> bytes:
        """Read one (gathered) cache line at ``address``."""
        return self.module.read_line(address, pattern, shuffled)

    def write(
        self,
        address: int,
        data: bytes,
        pattern: int = DEFAULT_PATTERN,
        shuffled: bool = True,
    ) -> None:
        """Write (scatter) one cache line at ``address``."""
        self.module.write_line(address, data, pattern, shuffled)

    def read_values(
        self, address: int, pattern: int = DEFAULT_PATTERN, shuffled: bool = True
    ) -> list[int]:
        """Read a line and decode it as unsigned 64-bit little-endian values."""
        data = self.read(address, pattern, shuffled)
        count = len(data) // 8
        return list(struct.unpack(f"<{count}Q", data))

    def write_values(
        self,
        address: int,
        values: list[int],
        pattern: int = DEFAULT_PATTERN,
        shuffled: bool = True,
    ) -> None:
        """Encode unsigned 64-bit values and scatter them at ``address``."""
        data = struct.pack(f"<{len(values)}Q", *values)
        self.write(address, data, pattern, shuffled)

    # ------------------------------------------------------------------
    # Self-verification
    # ------------------------------------------------------------------
    def self_check(self, columns: int | None = None):
        """Exhaustively verify this configuration's gather semantics.

        Returns a :class:`repro.core.verify.CheckReport`; ``report.ok``
        is True when every (pattern, column) combination round-trips,
        covers one value per chip, matches its intended index family,
        and keeps the coherence overlap relation symmetric. Intended
        for custom shuffle functions / geometries; NOTE: it writes to
        the first two DRAM rows.
        """
        from repro.core.verify import verify_substrate

        return verify_substrate(self, columns=columns)

    # ------------------------------------------------------------------
    # Cost model (Section 4.4)
    # ------------------------------------------------------------------
    def hardware_cost(self, tag_bits: int = 48) -> HardwareCost:
        """Hardware cost of this configuration.

        The cache area overhead is the added pattern-ID tag bits over a
        line's data+tag storage: 3 bits over (512 data + ``tag_bits``)
        is ~0.54%, the paper's "<0.6% cache area cost". DDR4's column
        command has two spare address pins, so a 3-bit pattern needs one
        extra pin.
        """
        ctl = rank_ctl_cost(self.chips, self.pattern_bits)
        line_bits = self.line_bytes * 8 + tag_bits
        spare_pins = 2  # DDR4 column commands have two spare address pins
        return HardwareCost(
            dram_logic_gates=ctl.total_gates,
            dram_register_bits=ctl.register_bits,
            extra_channel_pins=max(0, self.pattern_bits - spare_pins),
            cache_tag_bits_per_line=self.pattern_bits,
            cache_area_overhead=self.pattern_bits / line_bits,
        )
