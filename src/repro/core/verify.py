"""Exhaustive self-verification of a GS-DRAM configuration.

For small geometries these checks are *complete* (every pattern x
column x payload-structure combination), making them a useful sanity
gate when experimenting with custom shuffle functions, wide pattern
IDs, or unusual chip counts:

- **involution** — write-then-read round-trips for every pattern;
- **coverage** — a gather touches one value per chip, no duplicates;
- **family correctness** — each pattern gathers its intended index
  family (stride ``p+1`` for full patterns);
- **overlap symmetry** — the coherence overlap relation is symmetric;
- **scatter/gather duality** — scattering then gathering returns the
  payload, and the scattered values land at their constituents.

``GSDRAM.self_check()`` runs all of them and returns a report.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field


@dataclass
class CheckReport:
    """Outcome of a self-check run."""

    checks_run: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def note_failure(self, message: str) -> None:
        self.failures.append(message)

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [f"self-check: {self.checks_run} checks, {status}"]
        lines.extend(f"  FAIL: {message}" for message in self.failures[:20])
        return "\n".join(lines)


def _pack(values: list[int]) -> bytes:
    return struct.pack(f"<{len(values)}Q", *values)


def _unpack(data: bytes) -> list[int]:
    return list(struct.unpack(f"<{len(data) // 8}Q", data))


def verify_substrate(gs, columns: int | None = None,
                     patterns: list[int] | None = None) -> CheckReport:
    """Run the exhaustive checks against a GSDRAM facade.

    ``columns`` bounds the column sweep (default: one full row);
    ``patterns`` defaults to every pattern the configuration encodes.
    """
    from repro.core.pattern import gather_spec, stride_for_pattern

    report = CheckReport()
    module = gs.module
    chips = gs.chips
    if columns is None:
        columns = module.geometry.columns_per_row
    if patterns is None:
        patterns = list(range(1 << gs.pattern_bits))
    row_values = columns * chips

    # Populate one row with value == global index.
    for column in range(columns):
        gs.write_values(column * gs.line_bytes,
                        list(range(column * chips, (column + 1) * chips)))

    supported = set(gs.supported_strides())
    for pattern in patterns:
        stride = stride_for_pattern(pattern)
        for column in range(columns):
            address = column * gs.line_bytes
            gathered = gs.read_values(address, pattern=pattern)
            spec = gather_spec(chips, pattern, column)

            report.checks_run += 1
            if len(set(gathered)) != chips:
                report.note_failure(
                    f"pattern {pattern} col {column}: duplicate values"
                )

            report.checks_run += 1
            if gathered != sorted(gathered):
                report.note_failure(
                    f"pattern {pattern} col {column}: not in address order"
                )

            report.checks_run += 1
            if module.shuffle.stages == (chips - 1).bit_length():
                if tuple(gathered) != spec.indices:
                    report.note_failure(
                        f"pattern {pattern} col {column}: family mismatch "
                        f"{gathered} != {list(spec.indices)}"
                    )

            if stride is not None and stride in supported:
                report.checks_run += 1
                gaps = {b - a for a, b in zip(gathered, gathered[1:])}
                if gaps != {stride}:
                    report.note_failure(
                        f"pattern {pattern} col {column}: stride {gaps} "
                        f"!= {stride}"
                    )

        # Overlap symmetry.
        for column in range(columns):
            report.checks_run += 1
            for other in module.overlapping_columns(column, pattern):
                if column not in module.overlapping_columns(other, pattern):
                    report.note_failure(
                        f"pattern {pattern}: overlap not symmetric "
                        f"({column} -> {other})"
                    )
                    break

    # Scatter/gather duality on a fresh region (second row).
    row_bytes = module.geometry.row_bytes
    for pattern in patterns:
        for column in range(min(columns, 8)):
            address = row_bytes + column * gs.line_bytes
            payload = [0x1000 * (pattern + 1) + i for i in range(chips)]
            gs.write_values(address, payload, pattern=pattern)
            report.checks_run += 1
            if gs.read_values(address, pattern=pattern) != payload:
                report.note_failure(
                    f"pattern {pattern} col {column}: scatter/gather "
                    "round-trip failed"
                )
            # Each value must sit at its constituent location.
            report.checks_run += 1
            for position, (line, offset) in enumerate(
                module.constituents(address, pattern)
            ):
                line_values = gs.read_values(line)
                if line_values[offset // 8] != payload[position]:
                    report.note_failure(
                        f"pattern {pattern} col {column}: constituent "
                        f"{position} misplaced"
                    )
                    break
    return report
