"""CPU model: instruction-stream ops and the in-order core."""

from repro.cpu.core import Core
from repro.cpu.isa import Compute, Load, Store, as_u64, pattload, pattstore, store_u64

__all__ = [
    "Compute",
    "Core",
    "Load",
    "Store",
    "as_u64",
    "pattload",
    "pattstore",
    "store_u64",
]
