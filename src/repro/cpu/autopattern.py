"""Dynamic pattern detection — the paper's stated future work.

Section 4 of the paper: "It is also possible for the processor to
dynamically identify different access patterns present in an
application and exploit GS-DRAM to accelerate such patterns
transparently to the application. [...] we leave the design of such an
automatic mechanism for future work."

This module implements that mechanism. The key observation making it
safe: on a shuffled page with alternate pattern ``p = 2^k - 1``, the
value at byte address ``base + t*L + f*w`` (field ``f`` of record
``t``, line size ``L``, value size ``w``, ``L = (p+1) * w``) is *also*
the ``(t mod (p+1))``-th value of the gathered line whose issued column
is ``(t - t mod (p+1)) + f``. Rewriting a scalar load to that gathered
(address, pattern) pair returns the identical bytes — conversion can
never change program semantics, only locality.

So the unit mirrors a stride predictor: per load PC it tracks the
recent stride; when a PC streams with stride exactly one record
(``L`` bytes) through a pattern-capable page, its loads are rewritten
into ``pattload``-equivalent accesses. A misprediction wastes locality
(the gathered line brings sibling records' fields) but is never wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.statistics import StatGroup


@dataclass
class _Entry:
    last_address: int
    stride: int = 0
    confidence: int = 0


@dataclass(frozen=True)
class Conversion:
    """A rewritten access: gathered line addressing + pattern ID."""

    address: int
    pattern: int


class AutoPatternUnit:
    """Per-core dynamic gather conversion (the paper's future work).

    ``observe`` is consulted on every load; it returns a
    :class:`Conversion` when the access should be issued as a gather.
    """

    #: Confirmations of the record stride required before converting.
    THRESHOLD = 2

    def __init__(self, line_bytes: int = 64, value_bytes: int = 8,
                 table_size: int = 128) -> None:
        self.line_bytes = line_bytes
        self.value_bytes = value_bytes
        self.table_size = table_size
        self._table: dict[int, _Entry] = {}
        self.stats = StatGroup("auto_pattern")

    def observe(
        self,
        pc: int,
        address: int,
        pattern: int,
        shuffled: bool,
        alt_pattern: int,
        size: int = 8,
    ) -> Conversion | None:
        """Consider one load; maybe return a gather conversion.

        Only single-value (8-byte) pattern-0 loads on shuffled pages
        whose alternate pattern is a full-stride pattern (2^k - 1) are
        candidates; explicit pattloads are left alone. Wider loads span
        multiple fields of one record, which a gathered line does not
        hold contiguously — they are never converted.
        """
        if pc == 0 or pattern != 0 or not shuffled or alt_pattern == 0:
            return None
        if size != self.value_bytes:
            return None
        group = alt_pattern + 1
        if group & (group - 1):
            return None  # not a 2^k - 1 pattern
        if group * self.value_bytes != self.line_bytes:
            return None  # record size does not match the gather group

        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _Entry(last_address=address)
            return None
        stride = address - entry.last_address
        entry.last_address = address
        if stride == self.line_bytes and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.THRESHOLD + 1)
        else:
            entry.stride = stride
            entry.confidence = 0
            return None
        if entry.confidence < self.THRESHOLD:
            return None

        self.stats.add("conversions")
        return Conversion(
            address=self._gathered_address(address, alt_pattern),
            pattern=alt_pattern,
        )

    def _gathered_address(self, address: int, pattern: int) -> int:
        """Map a scalar element address to its gathered-line location.

        With record index ``t = (address // L) mod columns`` and field
        ``f = (address mod L) / w``: the gathered line's column is
        ``(t & ~p) + f`` and the element sits at position ``t & p``.
        """
        group = pattern + 1
        line_index = address // self.line_bytes
        offset = address % self.line_bytes
        field = offset // self.value_bytes
        aligned = line_index - (line_index % group)
        gathered_line = aligned + field
        position = line_index % group
        return gathered_line * self.line_bytes + position * self.value_bytes
