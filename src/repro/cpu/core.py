"""In-order core timing model.

The paper simulates 1-2 in-order x86 cores at 4 GHz (Table 1). This
model executes an instruction stream with CPI 1 for compute and
blocking loads/stores through the cache hierarchy.

Compute bursts are *block-compressed*: the core accumulates cycles
locally and touches the event engine only at memory operations (or
after ``sync_interval`` accumulated cycles, which bounds the clock skew
visible to other cores in multi-core runs). Cache hits are resolved
synchronously by the hierarchy's fast path, so simulation events scale
with cache *misses*, not instructions — this is what makes paper-shaped
workloads feasible in pure Python.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.autopattern import AutoPatternUnit
from repro.cpu.isa import Compute, Load, Store
from repro.errors import SimulationError
from repro.utils.events import Engine
from repro.utils.statistics import StatGroup

#: translate(vaddr) -> (paddr, shuffled, alt_pattern)
TranslateFn = Callable[[int], tuple[int, bool, int]]


def _identity_translate(address: int) -> tuple[int, bool, int]:
    return (address, False, 0)


class Core:
    """One in-order core executing an op stream against the hierarchy."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        hierarchy: CacheHierarchy,
        translate: TranslateFn | None = None,
        sync_interval: int = 400,
        auto_pattern: AutoPatternUnit | None = None,
        store_buffer: int = 0,
    ) -> None:
        self.engine = engine
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.translate = translate or _identity_translate
        self.sync_interval = sync_interval
        self.auto_pattern = auto_pattern
        #: Store-buffer depth: 0 = blocking stores (the default model);
        #: N > 0 lets execution continue past up to N store misses
        #: (loads still block, preserving the in-order load model).
        self.store_buffer = store_buffer
        self._outstanding_stores = 0
        #: Outstanding buffered stores split by access pattern: a
        #: younger access must not bypass an older buffered store of the
        #: *other* pattern class (their footprints can overlap via the
        #: gather/scatter constituents, Section 4.1), so cross-pattern
        #: accesses drain the buffer first.
        self._outstanding_plain = 0
        self._outstanding_patterned = 0
        self._stalled_store: Store | None = None
        self._draining = False
        self.stats = StatGroup(f"core{core_id}")
        self.finish_time: int | None = None
        self._ops: Iterator | None = None
        self._accum = 0
        self._pending_op: Load | Store | None = None
        self._on_done: Callable[["Core"], None] | None = None
        self._cancelled = False

    @property
    def running(self) -> bool:
        return self._ops is not None

    def run(
        self,
        ops: Iterable,
        on_done: Callable[["Core"], None] | None = None,
    ) -> None:
        """Begin executing ``ops``; drive with ``engine.run()``."""
        if self.running:
            raise SimulationError(
                "core is already running a program",
                core=self.core_id,
                cycle=self.engine.now,
            )
        self._ops = iter(ops)
        self._on_done = on_done
        self._accum = 0
        self._cancelled = False
        self.finish_time = None
        self.engine.schedule(0, self._execute)

    def cancel(self) -> None:
        """Stop after the current instruction (HTAP's open-ended thread)."""
        self._cancelled = True

    # ------------------------------------------------------------------
    def _execute(self) -> None:
        """Consume ops until blocked on a miss or out of ops."""
        if self._ops is None:
            return  # already finished (stale wake-up)
        ops = self._ops
        while True:
            if self._cancelled:
                self._finish()
                return
            # Periodically realize accumulated cycles as engine time so
            # other cores and the controller see a bounded clock skew.
            if self._accum >= self.sync_interval:
                accum, self._accum = self._accum, 0
                self.engine.schedule(accum, self._execute)
                return
            op = next(ops, None)
            if op is None:
                if self._outstanding_stores > 0:
                    # Drain the store buffer before retiring.
                    self._draining = True
                    return
                self._finish()
                return
            if isinstance(op, Compute):
                self._accum += op.count
                self.stats.add("instructions", op.count)
                continue
            if not self._issue_memory(op):
                return  # blocked on a miss; resumes in _memory_done

    def _buffer_hazard(self, pattern: int) -> bool:
        """Would this access bypass an overlapping buffered store?

        Pattern-0 lines and patterned (gathered) lines of the same rows
        share bytes, so ordering between the two pattern classes must be
        preserved; within a class, distinct line keys are disjoint (and
        same-key accesses are ordered by MSHR merging).
        """
        if self._outstanding_stores == 0:
            return False
        if pattern:
            return self._outstanding_plain > 0
        return self._outstanding_patterned > 0

    def _issue_memory(self, op) -> bool:
        """Issue a Load/Store. True if execution continues immediately."""
        is_write = isinstance(op, Store)
        if self._buffer_hazard(op.pattern):
            # Drain the store buffer before crossing pattern classes.
            self._stalled_store = op
            self.stats.add("store_buffer_drains")
            return False
        if is_write and self.store_buffer > 0:
            if self._outstanding_stores >= self.store_buffer:
                self._stalled_store = op
                self.stats.add("store_buffer_stalls")
                return False
            return self._issue_buffered_store(op)
        self.stats.add("instructions")
        self.stats.add("stores" if is_write else "loads")
        paddr, shuffled, alt_pattern = self.translate(op.address)
        pattern = op.pattern
        if self.auto_pattern is not None and not is_write:
            # Future-work mechanism (paper Section 4): transparently
            # rewrite detected record-strided loads into gathers.
            conversion = self.auto_pattern.observe(
                op.pc, paddr, pattern, shuffled, alt_pattern, op.size
            )
            if conversion is not None:
                paddr = conversion.address
                pattern = conversion.pattern
                self.stats.add("auto_gathers")
        start_time = self.engine.now + self._accum
        result = self.hierarchy.access(
            self.core_id,
            paddr,
            size=op.size,
            is_write=is_write,
            payload=op.payload if is_write else None,
            pattern=pattern,
            shuffled=shuffled,
            alt_pattern=alt_pattern,
            pc=op.pc,
            start_time=start_time,
            callback=self._memory_done,
        )
        if result is not None:
            latency, data = result
            self._accum += 1 + latency
            if not is_write and op.on_value is not None:
                op.on_value(data)
            return True
        self._pending_op = op
        self.stats.add("misses_blocked")
        return False

    def _issue_buffered_store(self, op: Store) -> bool:
        """Issue a store without blocking; track it in the buffer."""
        self.stats.add("instructions")
        self.stats.add("stores")
        paddr, shuffled, alt_pattern = self.translate(op.address)
        start_time = self.engine.now + self._accum
        result = self.hierarchy.access(
            self.core_id,
            paddr,
            size=op.size,
            is_write=True,
            payload=op.payload,
            pattern=op.pattern,
            shuffled=shuffled,
            alt_pattern=alt_pattern,
            pc=op.pc,
            start_time=start_time,
            callback=lambda data, patterned=bool(op.pattern): self._store_done(
                patterned
            ),
        )
        if result is not None:
            latency, _data = result
            self._accum += 1 + latency
            return True
        self._outstanding_stores += 1
        if op.pattern:
            self._outstanding_patterned += 1
        else:
            self._outstanding_plain += 1
        self.stats.add("stores_overlapped")
        self._accum += 1  # issue cycle only; the miss drains in background
        return True

    def _store_done(self, patterned: bool) -> None:
        """A buffered store's miss completed."""
        self._outstanding_stores -= 1
        if patterned:
            self._outstanding_patterned -= 1
        else:
            self._outstanding_plain -= 1
        if self._stalled_store is not None:
            op, self._stalled_store = self._stalled_store, None
            self._accum = 0
            if self._issue_memory(op):
                self._execute()
            return
        if self._draining and self._outstanding_stores == 0:
            self._draining = False
            self._accum = 0
            self._finish()

    def _memory_done(self, data: bytes) -> None:
        """A blocking miss completed; account stall time and resume."""
        op = self._pending_op
        self._pending_op = None
        if op is None:
            raise SimulationError(
                "spurious memory completion",
                core=self.core_id,
                cycle=self.engine.now,
            )
        # engine.now is the fill completion; execution resumes one cycle
        # later (the memory instruction itself retires).
        self._accum = 1
        if isinstance(op, Load) and op.on_value is not None:
            op.on_value(data)
        self._execute()

    def _finish(self) -> None:
        self.finish_time = self.engine.now + self._accum
        self._ops = None
        self.stats.add("finished")
        if self._on_done is not None:
            # Realize remaining local cycles before reporting completion.
            self.engine.schedule(self._accum, self._on_done, self)
        self._accum = 0
