"""Instruction-stream operations executed by the core model.

Workloads are generators of these ops. The vocabulary is deliberately
small — the paper's evaluation needs loads, stores, their pattern
variants (``pattload``/``pattstore``, Section 4.2), and compute:

- :class:`Compute` — ``count`` back-to-back single-cycle instructions
  (the in-order core's CPI is 1 for non-memory work).
- :class:`Load` / :class:`Store` — ordinary memory accesses
  (pattern 0).
- :func:`pattload` / :func:`pattstore` — accesses carrying a non-zero
  pattern ID, exactly the new instructions of Section 4.2. The paper
  implements pattload by gathering into ``rax`` (8 bytes) or ``xmm0``
  (16 bytes); ``size`` models the destination width.

Ops are plain ``__slots__`` objects: workloads create millions of them
(lazily, via generators), so they must stay cheap.
"""

from __future__ import annotations

import struct
from typing import Callable


class Compute:
    """``count`` ALU instructions, one cycle each."""

    __slots__ = ("count",)

    def __init__(self, count: int = 1) -> None:
        self.count = count

    def __repr__(self) -> str:
        return f"Compute({self.count})"


class Load:
    """A load of ``size`` bytes; ``on_value`` receives the loaded bytes.

    ``pc`` identifies the static instruction for the stride prefetcher.
    A non-zero ``pattern`` makes this a ``pattload``.
    """

    __slots__ = ("address", "size", "pattern", "pc", "on_value")

    def __init__(
        self,
        address: int,
        size: int = 8,
        pattern: int = 0,
        pc: int = 0,
        on_value: Callable[[bytes], None] | None = None,
    ) -> None:
        self.address = address
        self.size = size
        self.pattern = pattern
        self.pc = pc
        self.on_value = on_value

    def __repr__(self) -> str:
        return f"Load({self.address:#x}, size={self.size}, patt={self.pattern})"


class Store:
    """A store of ``payload`` bytes; non-zero ``pattern`` = ``pattstore``."""

    __slots__ = ("address", "payload", "pattern", "pc")

    def __init__(
        self,
        address: int,
        payload: bytes,
        pattern: int = 0,
        pc: int = 0,
    ) -> None:
        self.address = address
        self.payload = payload
        self.pattern = pattern
        self.pc = pc

    @property
    def size(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        return f"Store({self.address:#x}, size={self.size}, patt={self.pattern})"


def pattload(
    address: int,
    pattern: int,
    size: int = 8,
    pc: int = 0,
    on_value: Callable[[bytes], None] | None = None,
) -> Load:
    """``pattload reg, addr, patt`` (Section 4.2)."""
    return Load(address, size=size, pattern=pattern, pc=pc, on_value=on_value)


def pattstore(address: int, payload: bytes, pattern: int, pc: int = 0) -> Store:
    """``pattstore reg, addr, patt`` (Section 4.2)."""
    return Store(address, payload, pattern=pattern, pc=pc)


def store_u64(address: int, value: int, pattern: int = 0, pc: int = 0) -> Store:
    """Store one little-endian unsigned 64-bit value."""
    return Store(address, struct.pack("<Q", value), pattern=pattern, pc=pc)


def as_u64(data: bytes) -> int:
    """Decode 8 bytes as a little-endian unsigned 64-bit value."""
    return struct.unpack("<Q", data)[0]
