"""In-memory database application (paper Section 5.1)."""

from repro.db.engine import (
    AnalyticsRun,
    HTAPRun,
    TransactionRun,
    run_analytics,
    run_htap,
    run_transactions,
    system_for,
)
from repro.db.layouts import ColumnStore, GSDRAMStore, RowStore, StorageLayout, all_layouts
from repro.db.queries import (
    Comparison,
    FilterQuery,
    FilterResult,
    GroupByQuery,
    filter_ops,
    groupby_ops,
    oracle_filter,
    oracle_groupby,
)
from repro.db.schema import TableSchema
from repro.db.table import OracleTable
from repro.db.workload import (
    FIGURE9_MIXES,
    AnalyticsQuery,
    FieldOp,
    HTAPWorkload,
    Transaction,
    TransactionMix,
    generate_transactions,
    make_rows,
)

__all__ = [
    "AnalyticsQuery",
    "AnalyticsRun",
    "ColumnStore",
    "Comparison",
    "FilterQuery",
    "FilterResult",
    "GroupByQuery",
    "filter_ops",
    "groupby_ops",
    "oracle_filter",
    "oracle_groupby",
    "FIGURE9_MIXES",
    "FieldOp",
    "GSDRAMStore",
    "HTAPRun",
    "HTAPWorkload",
    "OracleTable",
    "RowStore",
    "StorageLayout",
    "TableSchema",
    "Transaction",
    "TransactionMix",
    "TransactionRun",
    "all_layouts",
    "generate_transactions",
    "make_rows",
    "run_analytics",
    "run_htap",
    "run_transactions",
    "system_for",
]
