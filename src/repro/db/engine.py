"""Experiment drivers: run DB workloads on a layout and verify answers.

Each driver builds a fresh simulated machine appropriate for the
layout (commodity DRAM for Row/Column Store, GS-DRAM for the GS
store), loads the table, runs the workload to completion, verifies the
functional answers against :class:`~repro.db.table.OracleTable`, and
returns the :class:`~repro.sim.results.RunResult`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.db.layouts import GSDRAMStore, StorageLayout
from repro.db.schema import TableSchema
from repro.db.table import OracleTable
from repro.db.workload import (
    AnalyticsQuery,
    HTAPWorkload,
    Transaction,
    TransactionMix,
    generate_transactions,
    make_rows,
)
from repro.errors import ConfigError, WorkloadError
from repro.sim.config import SystemConfig, plain_dram_config, table1_config
from repro.sim.results import RunResult
from repro.sim.system import System


def system_for(layout: StorageLayout, cores: int = 1, prefetch: bool = False,
               mode: str = "event", **overrides):
    """A machine matched to the layout's substrate.

    ``mode="fast"`` builds a :class:`repro.vec.fastpath.FastSystem`
    (same caches and DRAM module, timing-free controller) instead of
    the event-driven :class:`System`; it raises
    :class:`~repro.errors.ConfigError` for configurations whose
    functional behaviour depends on timing (see docs/PERFORMANCE.md).
    """
    if isinstance(layout, GSDRAMStore):
        config = table1_config(cores=cores, prefetch=prefetch, **overrides)
    else:
        config = plain_dram_config(cores=cores, prefetch=prefetch, **overrides)
    if mode == "fast":
        from repro.vec.fastpath import FastSystem

        return FastSystem(config)
    if mode != "event":
        raise ConfigError(f"unknown run mode {mode!r}")
    return System(config)


@dataclass
class TransactionRun:
    """Outcome of a transaction-only run (Figure 9 point)."""

    layout: str
    mix_label: str
    result: RunResult
    verified: bool


def run_transactions(
    layout: StorageLayout,
    mix: TransactionMix,
    num_tuples: int = 8192,
    count: int = 1000,
    seed: int = 42,
    prefetch: bool = False,
    config_overrides: dict | None = None,
    mode: str = "event",
) -> TransactionRun:
    """Execute ``count`` transactions of one i-j-k mix on ``layout``."""
    schema = layout.schema
    rows = make_rows(schema, num_tuples)
    oracle = OracleTable(schema, rows)
    txns = generate_transactions(schema, num_tuples, mix, count, seed)
    expected_reads = oracle.apply_all(txns)

    system = system_for(layout, prefetch=prefetch, mode=mode,
                        **(config_overrides or {}))
    layout.attach(system, num_tuples)
    layout.load_rows(rows)

    observed: list[int] = []
    result = system.run([layout.transactions_program(txns, observed.append)])

    verified = observed == expected_reads and layout.read_rows() == oracle.rows
    return TransactionRun(layout.name, mix.label, result, verified)


@dataclass
class AnalyticsRun:
    """Outcome of an analytics run (Figure 10 point)."""

    layout: str
    query_label: str
    prefetch: bool
    result: RunResult
    answer: int
    verified: bool


def run_analytics(
    layout: StorageLayout,
    query: AnalyticsQuery,
    num_tuples: int = 8192,
    prefetch: bool = False,
    config_overrides: dict | None = None,
    mode: str = "event",
) -> AnalyticsRun:
    """Sum the queried columns on ``layout``."""
    schema = layout.schema
    rows = make_rows(schema, num_tuples)
    oracle = OracleTable(schema, rows)
    expected = oracle.column_sum(query)

    system = system_for(layout, prefetch=prefetch, mode=mode,
                        **(config_overrides or {}))
    layout.attach(system, num_tuples)
    layout.load_rows(rows)

    total = [0]

    def add(value: int) -> None:
        total[0] += value

    result = system.run([layout.analytics_ops(query, add)])
    return AnalyticsRun(
        layout.name, query.label, prefetch, result, total[0], total[0] == expected
    )


@dataclass
class HTAPRun:
    """Outcome of an HTAP run (Figure 11 point)."""

    layout: str
    prefetch: bool
    analytics_cycles: int
    committed_txns: int
    txn_throughput_mps: float  # million transactions per second
    result: RunResult


def _endless_transactions(
    layout: StorageLayout,
    mix: TransactionMix,
    num_tuples: int,
    seed: int,
    committed: list[int],
):
    """Open-ended transaction stream; counts committed transactions."""
    schema = layout.schema
    rng = random.Random(seed)
    for txn_index in itertools.count():
        txns = generate_transactions(
            schema, num_tuples, mix, 1, seed=rng.randrange(1 << 30)
        )
        yield from layout.transaction_ops(txns[0])
        committed[0] += 1


def run_htap(
    layout: StorageLayout,
    workload: HTAPWorkload | None = None,
    num_tuples: int = 8192,
    prefetch: bool = False,
    cpu_ghz: float = 4.0,
    config_overrides: dict | None = None,
) -> HTAPRun:
    """One analytics thread + one transaction thread on two cores.

    The transaction thread runs until the analytics thread completes
    (``stop_on_core=0``), matching the paper's setup.
    """
    workload = workload or HTAPWorkload()
    schema = layout.schema
    rows = make_rows(schema, num_tuples)
    oracle = OracleTable(schema, rows)

    system = system_for(layout, cores=2, prefetch=prefetch,
                        **(config_overrides or {}))
    layout.attach(system, num_tuples)
    layout.load_rows(rows)

    total = [0]
    committed = [0]
    analytics = layout.analytics_ops(workload.analytics, lambda v: total.__setitem__(0, total[0] + v))
    txn_stream = _endless_transactions(
        layout, workload.txn_mix, num_tuples, workload.txn_seed, committed
    )
    result = system.run([analytics, txn_stream], stop_on_core=0)

    analytics_cycles = system.cores[0].finish_time or result.cycles
    if analytics_cycles <= 0:
        raise WorkloadError("analytics thread did not run")
    seconds = analytics_cycles / (cpu_ghz * 1e9)
    throughput = committed[0] / seconds / 1e6
    return HTAPRun(
        layout.name,
        prefetch,
        analytics_cycles,
        committed[0],
        throughput,
        result,
    )
