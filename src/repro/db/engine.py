"""Experiment drivers: run DB workloads on a layout and verify answers.

Each driver builds a fresh simulated machine appropriate for the
layout (commodity DRAM for Row/Column Store, GS-DRAM for the GS
store), loads the table, runs the workload to completion, verifies the
functional answers against the table oracles, and returns the
:class:`~repro.sim.results.RunResult`.

Verification is mode-matched (phase 3): event runs check against the
scalar :class:`~repro.db.table.OracleTable`, vectorized fast runs
check against :class:`~repro.db.table.VecOracleTable` — a numpy oracle
whose algorithms are independent of the fast engines' kernels, so the
comparison stays a real check while paper-scale verification runs in
milliseconds (``repro check oracles`` holds the two oracles equal).
Every driver stamps per-stage wall times (setup / generate / run /
verify) onto ``result.stages``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

import numpy as np

from repro.db.layouts import GSDRAMStore, StorageLayout
from repro.db.table import OracleTable, VecOracleTable
from repro.db.workload import (
    AnalyticsQuery,
    HTAPWorkload,
    TransactionMix,
    generate_transaction_arrays,
    generate_transactions,
    make_rows,
    make_rows_array,
)
from repro.errors import ConfigError, WorkloadError
from repro.sim.config import SystemConfig, plain_dram_config, table1_config
from repro.sim.results import RunResult, StageTimer
from repro.sim.system import System
from repro.vec.shim import component_snapshot


def layout_config(layout: StorageLayout, cores: int = 1,
                  prefetch: bool = False, **overrides) -> SystemConfig:
    """The machine configuration matched to the layout's substrate."""
    if isinstance(layout, GSDRAMStore):
        return table1_config(cores=cores, prefetch=prefetch, **overrides)
    return plain_dram_config(cores=cores, prefetch=prefetch, **overrides)


def system_for(layout: StorageLayout, cores: int = 1, prefetch: bool = False,
               mode: str = "event", **overrides):
    """A machine matched to the layout's substrate.

    ``mode="fast"`` builds a :class:`repro.vec.fastpath.FastSystem`
    (same caches and DRAM module, timing-free controller) instead of
    the event-driven :class:`System`; it raises
    :class:`~repro.errors.ConfigError` for configurations whose
    functional behaviour depends on timing (see docs/PERFORMANCE.md).
    """
    config = layout_config(layout, cores=cores, prefetch=prefetch, **overrides)
    if mode == "fast":
        from repro.vec.fastpath import FastSystem

        return FastSystem(config)
    if mode != "event":
        raise ConfigError(f"unknown run mode {mode!r}")
    return System(config)


def _vectorized(layout: StorageLayout, mode: str) -> bool:
    """True when this run should use the vectorized (no-machine) engine.

    ``PartialGatherStore`` and other subclasses still run ``mode="fast"``
    on :class:`~repro.vec.fastpath.FastSystem` (real hierarchy, frozen
    clock); only the three exactly-modelled layouts skip the machine.
    """
    if mode != "fast":
        return False
    from repro.vec.db import fast_layout_supported

    return fast_layout_supported(layout)


@dataclass
class TransactionRun:
    """Outcome of a transaction-only run (Figure 9 point)."""

    layout: str
    mix_label: str
    result: RunResult
    verified: bool
    #: Per-component stat dicts (controller/l1/l2/hierarchy/dbi) for the
    #: event-vs-fast equivalence battery; None when not captured
    #: (multi-core machines).
    component_stats: dict | None = None


def run_transactions(
    layout: StorageLayout,
    mix: TransactionMix,
    num_tuples: int = 8192,
    count: int = 1000,
    seed: int = 42,
    prefetch: bool = False,
    config_overrides: dict | None = None,
    mode: str = "event",
) -> TransactionRun:
    """Execute ``count`` transactions of one i-j-k mix on ``layout``."""
    schema = layout.schema
    timer = StageTimer()

    if _vectorized(layout, mode):
        from repro.vec.db import fast_transactions

        with timer.stage("generate"):
            rows = make_rows_array(schema, num_tuples)
            txns = generate_transaction_arrays(
                schema, num_tuples, mix, count, seed
            )
        with timer.stage("setup"):
            config = layout_config(layout, prefetch=prefetch,
                                   **(config_overrides or {}))
        with timer.stage("run"):
            outcome = fast_transactions(layout, txns, rows, num_tuples,
                                        config)
        with timer.stage("verify"):
            oracle = VecOracleTable(schema, rows)
            expected_reads = oracle.apply_all(txns)
            verified = bool(
                np.array_equal(outcome.observed, expected_reads)
                and np.array_equal(outcome.final_rows, oracle.rows)
            )
        timer.attach(outcome.result)
        return TransactionRun(layout.name, mix.label, outcome.result,
                              verified, outcome.component_stats)

    with timer.stage("generate"):
        rows = make_rows(schema, num_tuples)
        txns = generate_transactions(schema, num_tuples, mix, count, seed)
    with timer.stage("setup"):
        system = system_for(layout, prefetch=prefetch, mode=mode,
                            **(config_overrides or {}))
        layout.attach(system, num_tuples)
        layout.load_rows(rows)

    observed: list[int] = []
    with timer.stage("run"):
        result = system.run(
            [layout.transactions_program(txns, observed.append)]
        )
    stats = component_snapshot(system)

    with timer.stage("verify"):
        oracle = OracleTable(schema, rows)
        expected_reads = oracle.apply_all(txns)
        verified = (observed == expected_reads
                    and layout.read_rows() == oracle.rows)
    timer.attach(result)
    return TransactionRun(layout.name, mix.label, result, verified, stats)


@dataclass
class AnalyticsRun:
    """Outcome of an analytics run (Figure 10 point)."""

    layout: str
    query_label: str
    prefetch: bool
    result: RunResult
    answer: int
    verified: bool
    component_stats: dict | None = None


def run_analytics(
    layout: StorageLayout,
    query: AnalyticsQuery,
    num_tuples: int = 8192,
    prefetch: bool = False,
    config_overrides: dict | None = None,
    mode: str = "event",
) -> AnalyticsRun:
    """Sum the queried columns on ``layout``."""
    schema = layout.schema
    timer = StageTimer()

    if _vectorized(layout, mode):
        from repro.vec.db import fast_analytics

        with timer.stage("generate"):
            rows = make_rows_array(schema, num_tuples)
        with timer.stage("setup"):
            config = layout_config(layout, prefetch=prefetch,
                                   **(config_overrides or {}))
        with timer.stage("run"):
            outcome = fast_analytics(layout, query, rows, num_tuples, config)
        with timer.stage("verify"):
            expected = VecOracleTable(schema, rows).column_sum(query)
            verified = outcome.answer == expected
        timer.attach(outcome.result)
        return AnalyticsRun(
            layout.name, query.label, prefetch, outcome.result,
            outcome.answer, verified, outcome.component_stats,
        )

    with timer.stage("generate"):
        rows = make_rows(schema, num_tuples)
    with timer.stage("setup"):
        system = system_for(layout, prefetch=prefetch, mode=mode,
                            **(config_overrides or {}))
        layout.attach(system, num_tuples)
        layout.load_rows(rows)

    total = [0]

    def add(value: int) -> None:
        total[0] += value

    with timer.stage("run"):
        result = system.run([layout.analytics_ops(query, add)])
    stats = component_snapshot(system)
    with timer.stage("verify"):
        expected = OracleTable(schema, rows).column_sum(query)
        verified = total[0] == expected
    timer.attach(result)
    return AnalyticsRun(
        layout.name, query.label, prefetch, result, total[0], verified, stats,
    )


@dataclass
class HTAPRun:
    """Outcome of an HTAP run (Figure 11 point)."""

    layout: str
    prefetch: bool
    analytics_cycles: int
    committed_txns: int
    txn_throughput_mps: float  # million transactions per second
    result: RunResult
    #: Functional verification and the analytics answer (phased runs
    #: only; the open-ended variant's answer depends on timing).
    verified: bool = True
    answer: int | None = None
    component_stats: dict | None = None


def _endless_transactions(
    layout: StorageLayout,
    mix: TransactionMix,
    num_tuples: int,
    seed: int,
    committed: list[int],
):
    """Open-ended transaction stream; counts committed transactions."""
    schema = layout.schema
    rng = random.Random(seed)
    for txn_index in itertools.count():
        txns = generate_transactions(
            schema, num_tuples, mix, 1, seed=rng.randrange(1 << 30)
        )
        yield from layout.transaction_ops(txns[0])
        committed[0] += 1


def run_htap(
    layout: StorageLayout,
    workload: HTAPWorkload | None = None,
    num_tuples: int = 8192,
    prefetch: bool = False,
    cpu_ghz: float = 4.0,
    config_overrides: dict | None = None,
    mode: str = "event",
    txn_count: int | None = None,
) -> HTAPRun:
    """One analytics thread + one transaction thread on two cores.

    The transaction thread runs until the analytics thread completes
    (``stop_on_core=0``), matching the paper's setup. With ``txn_count``
    set, the run is *phased* instead: a fixed transaction batch, the
    analytics scan over the mid-run table, and a second batch execute
    on one core — the deterministic variant both modes share, used by
    the fast-mode figure specs and the equivalence battery.
    """
    workload = workload or HTAPWorkload()
    schema = layout.schema

    if txn_count is not None:
        return _run_htap_phased(
            layout, workload, txn_count, num_tuples,
            prefetch, cpu_ghz, config_overrides, mode,
        )
    if mode == "fast":
        raise ConfigError(
            "kind 'htap' has no fast path for the open-ended two-core "
            "workload (committed-transaction count is timing-dependent); "
            "pass txn_count for the phased variant or use mode='event'"
        )
    if mode != "event":
        raise ConfigError(f"unknown run mode {mode!r}")

    timer = StageTimer()
    with timer.stage("generate"):
        rows = make_rows(schema, num_tuples)
    with timer.stage("setup"):
        system = system_for(layout, cores=2, prefetch=prefetch,
                            **(config_overrides or {}))
        layout.attach(system, num_tuples)
        layout.load_rows(rows)

    total = [0]
    committed = [0]
    analytics = layout.analytics_ops(workload.analytics, lambda v: total.__setitem__(0, total[0] + v))
    txn_stream = _endless_transactions(
        layout, workload.txn_mix, num_tuples, workload.txn_seed, committed
    )
    with timer.stage("run"):
        result = system.run([analytics, txn_stream], stop_on_core=0)

    analytics_cycles = system.cores[0].finish_time or result.cycles
    if analytics_cycles <= 0:
        raise WorkloadError("analytics thread did not run")
    seconds = analytics_cycles / (cpu_ghz * 1e9)
    throughput = committed[0] / seconds / 1e6
    timer.attach(result)
    return HTAPRun(
        layout.name,
        prefetch,
        analytics_cycles,
        committed[0],
        throughput,
        result,
        answer=total[0],
    )


def _run_htap_phased(
    layout: StorageLayout,
    workload: HTAPWorkload,
    txn_count: int,
    num_tuples: int,
    prefetch: bool,
    cpu_ghz: float,
    config_overrides: dict | None,
    mode: str,
) -> HTAPRun:
    """Fixed-count HTAP: batch A, analytics, batch B — on one core."""
    schema = layout.schema
    count_a = (txn_count + 1) // 2
    count_b = txn_count - count_a
    timer = StageTimer()

    if _vectorized(layout, mode):
        from repro.vec.db import fast_htap_phased

        with timer.stage("generate"):
            rows = make_rows_array(schema, num_tuples)
            txns_a = generate_transaction_arrays(
                schema, num_tuples, workload.txn_mix, count_a,
                seed=workload.txn_seed,
            )
            txns_b = generate_transaction_arrays(
                schema, num_tuples, workload.txn_mix, count_b,
                seed=workload.txn_seed + 1,
            )
        with timer.stage("setup"):
            config = layout_config(layout, prefetch=prefetch,
                                   **(config_overrides or {}))
        with timer.stage("run"):
            outcome = fast_htap_phased(
                layout, txns_a, txns_b, workload.analytics, rows, num_tuples,
                config,
            )
        with timer.stage("verify"):
            oracle = VecOracleTable(schema, rows)
            oracle.apply_all(txns_a)
            expected_mid = oracle.column_sum(workload.analytics)
            oracle.apply_all(txns_b)
            verified = bool(
                outcome.answer == expected_mid
                and np.array_equal(outcome.final_rows, oracle.rows)
            )
        timer.attach(outcome.result)
        return HTAPRun(
            layout.name, prefetch, 0, txn_count, 0.0, outcome.result,
            verified, outcome.answer, outcome.component_stats,
        )

    with timer.stage("generate"):
        rows = make_rows(schema, num_tuples)
        txns_a = generate_transactions(
            schema, num_tuples, workload.txn_mix, count_a,
            seed=workload.txn_seed,
        )
        txns_b = generate_transactions(
            schema, num_tuples, workload.txn_mix, count_b,
            seed=workload.txn_seed + 1,
        )
    with timer.stage("setup"):
        system = system_for(layout, prefetch=prefetch, mode=mode,
                            **(config_overrides or {}))
        layout.attach(system, num_tuples)
        layout.load_rows(rows)

    total = [0]

    def program():
        for txn in txns_a:
            yield from layout.transaction_ops(txn)
        yield from layout.analytics_ops(
            workload.analytics, lambda v: total.__setitem__(0, total[0] + v)
        )
        for txn in txns_b:
            yield from layout.transaction_ops(txn)

    with timer.stage("run"):
        result = system.run([program()])
    stats = component_snapshot(system)
    with timer.stage("verify"):
        oracle = OracleTable(schema, rows)
        oracle.apply_all(txns_a)
        expected_mid = oracle.column_sum(workload.analytics)
        oracle.apply_all(txns_b)
        verified = (total[0] == expected_mid
                    and layout.read_rows() == oracle.rows)
    analytics_cycles = result.cycles
    if analytics_cycles > 0:
        seconds = analytics_cycles / (cpu_ghz * 1e9)
        throughput = txn_count / seconds / 1e6
    else:
        throughput = 0.0
    timer.attach(result)
    return HTAPRun(
        layout.name, prefetch, analytics_cycles, txn_count, throughput,
        result, verified, total[0], stats,
    )
