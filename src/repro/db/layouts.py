"""Storage layouts: row store, column store, and the GS-DRAM store.

Each layout knows how to (a) allocate and load the table into the
simulated machine and (b) translate workload specifications into
instruction streams:

- :class:`RowStore` — tuples contiguous; a transaction touches one
  cache line, a column scan strides by the tuple size.
- :class:`ColumnStore` — one array per field; a column scan is
  contiguous, a transaction touches one line *per field*.
- :class:`GSDRAMStore` — physically a row store allocated with
  ``pattmalloc(shuffle=True, pattern=7)``; transactions use ordinary
  (pattern-0) accesses, column scans use ``pattload`` with pattern 7
  exactly like the paper's Figure 8 loop.

All layouts move real data, so query answers are checked against a
Python oracle by the experiment drivers.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator

from repro.cpu.isa import Compute, Load, Store, pattload, pattstore
from repro.db.schema import TableSchema
from repro.db.workload import AnalyticsQuery, Transaction
from repro.errors import WorkloadError
from repro.sim.system import System

#: Per-transaction bookkeeping cost (begin/commit, index lookup), cycles.
TXN_OVERHEAD_CYCLES = 60
#: Per-field-access address computation cost, cycles.
FIELD_COMPUTE_CYCLES = 2
#: Per-value cost of the analytics aggregation (one add), cycles.
SCAN_COMPUTE_CYCLES = 1

ValueSink = Callable[[int], None]


def _u64(data: bytes) -> int:
    return struct.unpack("<Q", data)[0]


class StorageLayout:
    """Common interface of the three layouts."""

    name = "base"
    mechanism_label = "base"

    def __init__(self, schema: TableSchema | None = None) -> None:
        self.schema = schema or TableSchema()
        self.system: System | None = None
        self.num_tuples = 0

    # -- setup ----------------------------------------------------------
    def attach(self, system: System, num_tuples: int) -> None:
        """Allocate the table's storage inside ``system``."""
        raise NotImplementedError

    def load_rows(self, rows: list[list[int]]) -> None:
        """Functionally load table contents (no simulated time)."""
        raise NotImplementedError

    def read_rows(self) -> list[list[int]]:
        """Functionally read the whole table back (oracle comparison)."""
        raise NotImplementedError

    # -- workloads -> ops ------------------------------------------------
    def transaction_ops(
        self, txn: Transaction, on_read: ValueSink | None = None
    ) -> Iterator:
        """Ops for one transaction."""
        raise NotImplementedError

    def analytics_ops(self, query: AnalyticsQuery, on_value: ValueSink) -> Iterator:
        """Ops for a full-column-sum analytics query."""
        raise NotImplementedError

    def transactions_program(
        self, txns: list[Transaction], on_read: ValueSink | None = None
    ) -> Iterator:
        """One op stream executing all transactions in order."""
        for txn in txns:
            yield from self.transaction_ops(txn, on_read)

    # -- helpers ----------------------------------------------------------
    def _require_attached(self) -> System:
        if self.system is None:
            raise WorkloadError(f"{self.name}: attach() before generating ops")
        return self.system

    def _check_tuple(self, tuple_id: int) -> None:
        if not 0 <= tuple_id < self.num_tuples:
            raise WorkloadError(f"tuple {tuple_id} out of range")


class RowStore(StorageLayout):
    """Tuple-major layout on commodity DRAM."""

    name = "Row Store"
    mechanism_label = "row"

    def attach(self, system: System, num_tuples: int) -> None:
        self.system = system
        self.num_tuples = num_tuples
        self.base = system.malloc(num_tuples * self.schema.tuple_bytes)

    def field_address(self, tuple_id: int, field: int) -> int:
        return (
            self.base
            + tuple_id * self.schema.tuple_bytes
            + field * self.schema.field_bytes
        )

    def load_rows(self, rows: list[list[int]]) -> None:
        system = self._require_attached()
        payload = b"".join(
            struct.pack(f"<{self.schema.num_fields}Q", *row) for row in rows
        )
        system.mem_write(self.base, payload)

    def read_rows(self) -> list[list[int]]:
        system = self._require_attached()
        raw = system.mem_read(self.base, self.num_tuples * self.schema.tuple_bytes)
        fields = self.schema.num_fields
        values = struct.unpack(f"<{self.num_tuples * fields}Q", raw)
        return [list(values[i * fields : (i + 1) * fields]) for i in range(self.num_tuples)]

    def transaction_ops(self, txn: Transaction, on_read=None) -> Iterator:
        self._check_tuple(txn.tuple_id)
        yield Compute(TXN_OVERHEAD_CYCLES)
        for op in txn.ops:
            self.schema.validate_field(op.field)
            address = self.field_address(txn.tuple_id, op.field)
            yield Compute(FIELD_COMPUTE_CYCLES)
            if op.write:
                yield Store(address, struct.pack("<Q", op.value), pc=0x1100 + op.field)
            else:
                sink = (lambda b, cb=on_read: cb(_u64(b))) if on_read else None
                yield Load(address, pc=0x1000 + op.field, on_value=sink)

    def analytics_ops(self, query: AnalyticsQuery, on_value: ValueSink) -> Iterator:
        self._require_attached()
        for field in query.fields:
            self.schema.validate_field(field)
            sink = lambda b: on_value(_u64(b))
            pc = 0x2000 + field
            for tuple_id in range(self.num_tuples):
                yield Load(self.field_address(tuple_id, field), pc=pc, on_value=sink)
                yield Compute(SCAN_COMPUTE_CYCLES)


class ColumnStore(StorageLayout):
    """Field-major (DSM) layout on commodity DRAM."""

    name = "Column Store"
    mechanism_label = "column"

    def attach(self, system: System, num_tuples: int) -> None:
        self.system = system
        self.num_tuples = num_tuples
        self.column_bases = [
            system.malloc(num_tuples * self.schema.field_bytes)
            for _ in range(self.schema.num_fields)
        ]

    def field_address(self, tuple_id: int, field: int) -> int:
        return self.column_bases[field] + tuple_id * self.schema.field_bytes

    def load_rows(self, rows: list[list[int]]) -> None:
        system = self._require_attached()
        for field in range(self.schema.num_fields):
            payload = struct.pack(f"<{len(rows)}Q", *(row[field] for row in rows))
            system.mem_write(self.column_bases[field], payload)

    def read_rows(self) -> list[list[int]]:
        system = self._require_attached()
        columns = []
        for field in range(self.schema.num_fields):
            raw = system.mem_read(
                self.column_bases[field], self.num_tuples * self.schema.field_bytes
            )
            columns.append(struct.unpack(f"<{self.num_tuples}Q", raw))
        return [
            [columns[f][t] for f in range(self.schema.num_fields)]
            for t in range(self.num_tuples)
        ]

    def transaction_ops(self, txn: Transaction, on_read=None) -> Iterator:
        self._check_tuple(txn.tuple_id)
        yield Compute(TXN_OVERHEAD_CYCLES)
        for op in txn.ops:
            self.schema.validate_field(op.field)
            address = self.field_address(txn.tuple_id, op.field)
            yield Compute(FIELD_COMPUTE_CYCLES)
            if op.write:
                yield Store(address, struct.pack("<Q", op.value), pc=0x1300 + op.field)
            else:
                sink = (lambda b, cb=on_read: cb(_u64(b))) if on_read else None
                yield Load(address, pc=0x1200 + op.field, on_value=sink)

    def analytics_ops(self, query: AnalyticsQuery, on_value: ValueSink) -> Iterator:
        self._require_attached()
        for field in query.fields:
            self.schema.validate_field(field)
            sink = lambda b: on_value(_u64(b))
            pc = 0x2100 + field
            for tuple_id in range(self.num_tuples):
                yield Load(self.field_address(tuple_id, field), pc=pc, on_value=sink)
                yield Compute(SCAN_COMPUTE_CYCLES)


class GSDRAMStore(StorageLayout):
    """Row-store layout on GS-DRAM: pattern 0 for tuples, pattern 7 for
    field scans (with 8 fields per tuple)."""

    name = "GS-DRAM"
    mechanism_label = "gs-dram"

    def attach(self, system: System, num_tuples: int) -> None:
        if num_tuples % self.schema.num_fields != 0:
            raise WorkloadError(
                "GS-DRAM store needs tuple count divisible by the gather "
                f"group size ({self.schema.num_fields})"
            )
        if not system.module.supports_patterns:
            raise WorkloadError("GSDRAMStore requires a GS-DRAM system")
        self.system = system
        self.num_tuples = num_tuples
        self.pattern = self.schema.gather_pattern
        self.base = system.pattmalloc(
            num_tuples * self.schema.tuple_bytes, shuffle=True, pattern=self.pattern
        )

    def field_address(self, tuple_id: int, field: int) -> int:
        return (
            self.base
            + tuple_id * self.schema.tuple_bytes
            + field * self.schema.field_bytes
        )

    def gather_address(self, group_start: int, field: int, position: int) -> int:
        """Address of the ``position``-th value in a gathered line.

        The gathered line whose issued column is ``group_start + field``
        holds field ``field`` of the 8 tuples starting at the (aligned)
        ``group_start``; offsets walk the gathered values, exactly like
        the paper's Figure 8 loop.
        """
        line = group_start + field
        return self.base + line * self.schema.tuple_bytes + position * self.schema.field_bytes

    def load_rows(self, rows: list[list[int]]) -> None:
        system = self._require_attached()
        payload = b"".join(
            struct.pack(f"<{self.schema.num_fields}Q", *row) for row in rows
        )
        system.mem_write(self.base, payload)

    def read_rows(self) -> list[list[int]]:
        system = self._require_attached()
        raw = system.mem_read(self.base, self.num_tuples * self.schema.tuple_bytes)
        fields = self.schema.num_fields
        values = struct.unpack(f"<{self.num_tuples * fields}Q", raw)
        return [list(values[i * fields : (i + 1) * fields]) for i in range(self.num_tuples)]

    def transaction_ops(self, txn: Transaction, on_read=None) -> Iterator:
        self._check_tuple(txn.tuple_id)
        yield Compute(TXN_OVERHEAD_CYCLES)
        for op in txn.ops:
            self.schema.validate_field(op.field)
            address = self.field_address(txn.tuple_id, op.field)
            yield Compute(FIELD_COMPUTE_CYCLES)
            if op.write:
                yield Store(address, struct.pack("<Q", op.value), pc=0x1500 + op.field)
            else:
                sink = (lambda b, cb=on_read: cb(_u64(b))) if on_read else None
                yield Load(address, pc=0x1400 + op.field, on_value=sink)

    def analytics_ops(self, query: AnalyticsQuery, on_value: ValueSink) -> Iterator:
        self._require_attached()
        group = self.schema.num_fields
        for field in query.fields:
            self.schema.validate_field(field)
            sink = lambda b: on_value(_u64(b))
            lead_pc = 0x2200 + field  # first pattload of each gathered line
            body_pc = 0x2280 + field  # remaining (cache-hitting) pattloads
            for group_start in range(0, self.num_tuples, group):
                for position in range(group):
                    address = self.gather_address(group_start, field, position)
                    pc = lead_pc if position == 0 else body_pc
                    yield pattload(
                        address, pattern=self.pattern, pc=pc, on_value=sink
                    )
                    yield Compute(SCAN_COMPUTE_CYCLES)


class PartialGatherStore(GSDRAMStore):
    """A GS store that scans with a smaller-stride pattern.

    With pattern ``p = 2^s - 1`` (s < 3), one gathered line holds field
    ``f`` for only ``2^s`` tuples (the other chips return other
    fields), so a field scan needs ``8 / 2^s`` gathers per 8-tuple
    group, touching proportionally more lines. The useful positions
    within each gathered line are computed from the gather geometry —
    the same mapping knowledge pattern-aware software always needs.

    Used by the shuffle-stage sweep; registered with the run-spec
    layout registry as ``partial-gather-<pattern>``.
    """

    name = "Partial Gather"

    def __init__(self, pattern: int) -> None:
        super().__init__()
        self._scan_pattern = pattern

    def attach(self, system: System, num_tuples: int) -> None:
        if num_tuples % self.schema.num_fields != 0:
            raise WorkloadError("tuple count must be a multiple of 8")
        self.system = system
        self.num_tuples = num_tuples
        self.pattern = self._scan_pattern
        self.base = system.pattmalloc(
            num_tuples * self.schema.tuple_bytes, shuffle=True,
            pattern=self._scan_pattern,
        )

    def analytics_ops(self, query: AnalyticsQuery, on_value: ValueSink) -> Iterator:
        from repro.core.pattern import gather_spec

        self._require_attached()
        pattern = self._scan_pattern
        group = pattern + 1
        chips = self.schema.num_fields
        columns_per_row = 128
        sink = lambda b: on_value(_u64(b))
        for field in query.fields:
            self.schema.validate_field(field)
            for window in range(0, self.num_tuples, group):
                # The gathered line holding field `field` of tuples
                # window..window+group-1 is issued at this column:
                column = (window - window % group) + (field & pattern)
                spec = gather_spec(chips, pattern, column % columns_per_row)
                # Positions whose gathered value is field `field` of a
                # window tuple (value index == field).
                positions = [i for i, idx in enumerate(spec.indices)
                             if idx % chips == field]
                lead = True
                for position in positions:
                    address = self.base + column * 64 + position * 8
                    pc = (0x7300 if lead else 0x7380) + field
                    lead = False
                    yield pattload(address, pattern=pattern, pc=pc,
                                   on_value=sink)
                    yield Compute(1)


def all_layouts(schema: TableSchema | None = None) -> list[StorageLayout]:
    """Fresh instances of the three layouts (one experiment each)."""
    return [RowStore(schema), ColumnStore(schema), GSDRAMStore(schema)]
