"""Richer analytical queries: filtered aggregates and group-by.

The paper's analytics workload is a plain column sum; real analytical
engines run predicates and grouped aggregations over the same storage.
These queries are columnar two-pass plans — scan the predicate/key
column, then the value column, combining positionally — so each pass is
exactly the access pattern GS-DRAM accelerates (one field of every
tuple), regardless of layout.

Execution reuses each layout's ``analytics_ops`` single-column scan;
the plan code is therefore layout-independent, and every result is
verified against :class:`~repro.db.table.OracleTable` extensions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.db.layouts import StorageLayout
from repro.db.workload import AnalyticsQuery
from repro.errors import WorkloadError


class Comparison(enum.Enum):
    """Predicate operators for filter queries."""

    LT = "<"
    GE = ">="
    EQ = "=="

    def apply(self, value: int, threshold: int) -> bool:
        if self is Comparison.LT:
            return value < threshold
        if self is Comparison.GE:
            return value >= threshold
        return value == threshold


@dataclass(frozen=True)
class FilterQuery:
    """``SELECT agg(value_field) WHERE predicate_field <op> threshold``.

    ``value_field`` of ``None`` means ``COUNT(*)``.
    """

    predicate_field: int
    op: Comparison
    threshold: int
    value_field: int | None = None

    @property
    def label(self) -> str:
        agg = "count" if self.value_field is None else f"sum(f{self.value_field})"
        return f"{agg} where f{self.predicate_field} {self.op.value} {self.threshold}"


@dataclass(frozen=True)
class GroupByQuery:
    """``SELECT key_field, SUM(value_field) GROUP BY key_field``."""

    key_field: int
    value_field: int

    @property
    def label(self) -> str:
        return f"sum(f{self.value_field}) group by f{self.key_field}"


@dataclass
class FilterResult:
    """Mutable carrier filled in while the plan executes."""

    matches: int = 0
    aggregate: int = 0


def filter_ops(layout: StorageLayout, query: FilterQuery,
               result: FilterResult) -> Iterator:
    """Two-pass filtered aggregate over one layout.

    Pass 1 scans the predicate column and records the match bitmap;
    pass 2 (only for aggregates) scans the value column and adds the
    selected positions.
    """
    if query.value_field == query.predicate_field:
        raise WorkloadError("use a plain filter on a single field instead")
    bitmap: list[bool] = []

    def judge(value: int) -> None:
        matched = query.op.apply(value, query.threshold)
        bitmap.append(matched)
        if matched:
            result.matches += 1

    yield from layout.analytics_ops(AnalyticsQuery((query.predicate_field,)), judge)

    if query.value_field is None:
        result.aggregate = result.matches
        return

    cursor = [0]

    def accumulate(value: int) -> None:
        if bitmap[cursor[0]]:
            result.aggregate += value
        cursor[0] += 1

    yield from layout.analytics_ops(AnalyticsQuery((query.value_field,)), accumulate)


def groupby_ops(layout: StorageLayout, query: GroupByQuery,
                result: dict[int, int]) -> Iterator:
    """Two-pass grouped sum: key column, then value column."""
    if query.key_field == query.value_field:
        raise WorkloadError("group-by key and value fields must differ")
    keys: list[int] = []
    yield from layout.analytics_ops(AnalyticsQuery((query.key_field,)), keys.append)

    cursor = [0]

    def accumulate(value: int) -> None:
        key = keys[cursor[0]]
        result[key] = result.get(key, 0) + value
        cursor[0] += 1

    yield from layout.analytics_ops(AnalyticsQuery((query.value_field,)), accumulate)


# ----------------------------------------------------------------------
# Oracle-side semantics
# ----------------------------------------------------------------------
def oracle_filter(rows: list[list[int]], query: FilterQuery) -> FilterResult:
    """Ground truth for a filter query."""
    result = FilterResult()
    for row in rows:
        if query.op.apply(row[query.predicate_field], query.threshold):
            result.matches += 1
            if query.value_field is not None:
                result.aggregate += row[query.value_field]
    if query.value_field is None:
        result.aggregate = result.matches
    return result


def oracle_groupby(rows: list[list[int]], query: GroupByQuery) -> dict[int, int]:
    """Ground truth for a group-by query."""
    out: dict[int, int] = {}
    for row in rows:
        key = row[query.key_field]
        out[key] = out.get(key, 0) + row[query.value_field]
    return out
