"""Database table schema (paper Section 5.1).

The paper's evaluation table has one million tuples, each with eight
8-byte fields, fitting exactly in a 64-byte cache line. The schema
type keeps those shape constants in one place and validates the
mechanism's constraint that tuple size is a power of two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.utils.bitops import is_power_of_two


@dataclass(frozen=True)
class TableSchema:
    """Shape of one database table."""

    num_fields: int = 8
    field_bytes: int = 8

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_fields):
            raise WorkloadError(
                "GS-DRAM requires a power-of-2 tuple size "
                f"(got {self.num_fields} fields)"
            )
        if self.field_bytes != 8:
            raise WorkloadError("fields are one DRAM chip column: 8 bytes")

    @property
    def tuple_bytes(self) -> int:
        return self.num_fields * self.field_bytes

    def validate_field(self, field: int) -> None:
        if not 0 <= field < self.num_fields:
            raise WorkloadError(
                f"field {field} out of range for {self.num_fields}-field schema"
            )

    @property
    def gather_pattern(self) -> int:
        """Pattern ID whose stride steps one field across tuples.

        With 8 fields per tuple (stride 8), that is pattern 7.
        """
        return self.num_fields - 1
