"""Functional table oracles.

The simulator moves real bytes; :class:`OracleTable` is the plain-
Python ground truth the experiment drivers compare against. It applies
the same workload specifications (transactions, column sums) directly
to a list-of-lists, independent of any layout or timing model.

:class:`VecOracleTable` is its columnar numpy twin (phase 3): the same
semantics over an ``(num_tuples, num_fields)`` int64 array, with batch
``apply_all`` and vectorized analytics, so oracle verification no
longer dominates paper-scale fast-mode runs. The two implementations
deliberately share **no** code with each other or with the fast
engines in :mod:`repro.vec.db` — the scalar table stays the reference,
the vectorized table uses sort/searchsorted algorithms, and the fast
engine uses a running-max kernel, so agreement between any two is a
real check, not an identity (see ``repro check oracles``).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.db.queries import FilterQuery, FilterResult, GroupByQuery
from repro.db.schema import TableSchema
from repro.db.workload import AnalyticsQuery, Transaction, TransactionArrays
from repro.errors import WorkloadError


class OracleTable:
    """Ground-truth table contents and query semantics."""

    def __init__(self, schema: TableSchema, rows: list[list[int]]) -> None:
        self.schema = schema
        self.rows = [list(row) for row in rows]

    @property
    def num_tuples(self) -> int:
        return len(self.rows)

    def apply_transaction(self, txn: Transaction) -> list[int]:
        """Apply one transaction; returns the values its reads observed."""
        observed = []
        row = self.rows[txn.tuple_id]
        for op in txn.ops:
            if op.write:
                row[op.field] = op.value
            else:
                observed.append(row[op.field])
        return observed

    def apply_all(self, txns: list[Transaction]) -> list[int]:
        """Apply transactions in order; returns all observed read values."""
        observed = []
        for txn in txns:
            observed.extend(self.apply_transaction(txn))
        return observed

    def column_sum(self, query: AnalyticsQuery) -> int:
        """The analytics answer: sum of the queried columns."""
        total = 0
        for field in query.fields:
            self.schema.validate_field(field)
            total += sum(row[field] for row in self.rows)
        return total

    def snapshot(self) -> list[list[int]]:
        """Deep copy of the current contents."""
        return [list(row) for row in self.rows]


def _exact_sum(values: np.ndarray) -> int:
    """Sum an int64 array exactly, immune to int64 accumulator overflow.

    Split each value into its high and low 32-bit halves (the identity
    ``v == (v >> 32) << 32 | (v & 0xFFFFFFFF)`` holds for negatives
    under arithmetic shift), sum the halves — each partial sum stays
    far below 2**63 for any array under ~2**30 elements — and
    recombine in Python's unbounded integers.
    """
    if values.size == 0:
        return 0
    hi = int((values >> np.int64(32)).sum(dtype=np.int64))
    lo = int((values & np.int64(0xFFFFFFFF)).sum(dtype=np.int64))
    return (hi << 32) + lo


def table_digest(rows) -> str:
    """Stable sha256 of table contents (list-of-lists or ndarray)."""
    array = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
    if array.size == 0:
        # An empty list and a (0, num_fields) array are the same empty
        # table; normalise so their digests agree.
        array = array.reshape(0)
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


class VecOracleTable:
    """Columnar ground truth: :class:`OracleTable` semantics in numpy.

    Contents live in a writable ``(num_tuples, num_fields)`` int64
    array (``self.data``); :meth:`apply_all` consumes a whole
    transaction batch at once. Observed reads are resolved by sorting
    the batch's writes by (cell, program position) and binary-searching
    each read for the latest earlier write to its cell — an algorithm
    with nothing in common with either the scalar oracle's sequential
    replay or the fast engine's running-max kernel.
    """

    def __init__(self, schema: TableSchema, rows) -> None:
        self.schema = schema
        data = np.array(rows, dtype=np.int64)
        if data.size == 0:
            data = data.reshape(0, schema.num_fields)
        if data.ndim != 2 or data.shape[1] != schema.num_fields:
            raise WorkloadError(
                f"rows shape {data.shape} does not match "
                f"{schema.num_fields}-field schema"
            )
        self.data = data

    @property
    def num_tuples(self) -> int:
        return int(self.data.shape[0])

    @property
    def rows(self) -> np.ndarray:
        return self.data

    def apply_all(self, txns) -> np.ndarray:
        """Apply a transaction batch; returns observed reads as int64.

        Accepts :class:`~repro.db.workload.TransactionArrays` (the
        batch form) or a ``list[Transaction]`` (flattened here, for
        tests and differential checks).
        """
        if isinstance(txns, TransactionArrays):
            tuple_ids = txns.tuple_ids
            fields = txns.fields
            writes = txns.writes
            values = txns.values
        else:
            flat = [
                (txn.tuple_id, op.field, op.write, op.value)
                for txn in txns
                for op in txn.ops
            ]
            if not flat:
                return np.empty(0, dtype=np.int64)
            ids, flds, wrs, vals = zip(*flat)
            tuple_ids = np.array(ids, dtype=np.int64)
            fields = np.array(flds, dtype=np.int64)
            writes = np.array(wrs, dtype=bool)
            values = np.array(vals, dtype=np.int64)
        if tuple_ids.size == 0:
            return np.empty(0, dtype=np.int64)

        num_fields = self.schema.num_fields
        cells = tuple_ids * num_fields + fields
        positions = np.arange(cells.size, dtype=np.int64)

        write_pos = positions[writes]
        write_cells = cells[writes]
        write_values = values[writes]
        # Stable sort by cell keeps program order within each cell, so
        # write runs are (cell, ascending position).
        order = np.argsort(write_cells, kind="stable")
        sorted_cells = write_cells[order]
        sorted_pos = write_pos[order]
        sorted_values = write_values[order]

        read_mask = ~writes
        read_cells = cells[read_mask]
        read_pos = positions[read_mask]
        observed = self.data.reshape(-1)[read_cells].copy()
        if sorted_cells.size and read_cells.size:
            # Encode (cell, position) as one sortable key; position is
            # bounded by the batch length, so the encoding is exact.
            span = np.int64(cells.size + 1)
            write_keys = sorted_cells * span + sorted_pos
            read_keys = read_cells * span + read_pos
            prev = np.searchsorted(write_keys, read_keys, side="left") - 1
            hit = (prev >= 0) & (sorted_cells[np.maximum(prev, 0)] == read_cells)
            observed[hit] = sorted_values[prev[hit]]

        if sorted_cells.size:
            # Final state: the last write per cell is the last element
            # of each run in the (cell, position)-sorted order.
            last = np.flatnonzero(
                np.append(sorted_cells[1:] != sorted_cells[:-1], True)
            )
            self.data.reshape(-1)[sorted_cells[last]] = sorted_values[last]
        return observed

    def column_sum(self, query: AnalyticsQuery) -> int:
        """The analytics answer: exact sum of the queried columns."""
        total = 0
        for field in query.fields:
            self.schema.validate_field(field)
            total += _exact_sum(self.data[:, field])
        return total

    def filter(self, query: FilterQuery) -> FilterResult:
        """Vectorized :func:`~repro.db.queries.oracle_filter` semantics."""
        self.schema.validate_field(query.predicate_field)
        predicate = self.data[:, query.predicate_field]
        threshold = np.int64(query.threshold)
        if query.op.value == "<":
            mask = predicate < threshold
        elif query.op.value == ">=":
            mask = predicate >= threshold
        else:
            mask = predicate == threshold
        matches = int(mask.sum())
        if query.value_field is None:
            return FilterResult(matches=matches, aggregate=matches)
        self.schema.validate_field(query.value_field)
        aggregate = _exact_sum(self.data[mask, query.value_field])
        return FilterResult(matches=matches, aggregate=aggregate)

    def groupby(self, query: GroupByQuery) -> dict[int, int]:
        """Vectorized :func:`~repro.db.queries.oracle_groupby` semantics."""
        self.schema.validate_field(query.key_field)
        self.schema.validate_field(query.value_field)
        keys = self.data[:, query.key_field]
        values = self.data[:, query.value_field]
        uniques, inverse = np.unique(keys, return_inverse=True)
        # Exact grouped sums via the same hi/lo split as _exact_sum;
        # np.add.at is unbuffered, so duplicate keys accumulate.
        hi = np.zeros(uniques.size, dtype=np.int64)
        lo = np.zeros(uniques.size, dtype=np.int64)
        np.add.at(hi, inverse, values >> np.int64(32))
        np.add.at(lo, inverse, values & np.int64(0xFFFFFFFF))
        return {
            int(key): (int(h) << 32) + int(l)
            for key, h, l in zip(uniques.tolist(), hi.tolist(), lo.tolist())
        }

    def digest(self) -> str:
        """Stable sha256 of the current contents."""
        return table_digest(self.data)

    def snapshot(self) -> list[list[int]]:
        """Deep copy of the current contents, in scalar-oracle form."""
        return self.data.tolist()
