"""Functional table oracle.

The simulator moves real bytes; :class:`OracleTable` is the plain-
Python ground truth the experiment drivers compare against. It applies
the same workload specifications (transactions, column sums) directly
to a list-of-lists, independent of any layout or timing model.
"""

from __future__ import annotations

from repro.db.schema import TableSchema
from repro.db.workload import AnalyticsQuery, Transaction


class OracleTable:
    """Ground-truth table contents and query semantics."""

    def __init__(self, schema: TableSchema, rows: list[list[int]]) -> None:
        self.schema = schema
        self.rows = [list(row) for row in rows]

    @property
    def num_tuples(self) -> int:
        return len(self.rows)

    def apply_transaction(self, txn: Transaction) -> list[int]:
        """Apply one transaction; returns the values its reads observed."""
        observed = []
        row = self.rows[txn.tuple_id]
        for op in txn.ops:
            if op.write:
                row[op.field] = op.value
            else:
                observed.append(row[op.field])
        return observed

    def apply_all(self, txns: list[Transaction]) -> list[int]:
        """Apply transactions in order; returns all observed read values."""
        observed = []
        for txn in txns:
            observed.extend(self.apply_transaction(txn))
        return observed

    def column_sum(self, query: AnalyticsQuery) -> int:
        """The analytics answer: sum of the queried columns."""
        total = 0
        for field in query.fields:
            self.schema.validate_field(field)
            total += sum(row[field] for row in self.rows)
        return total

    def snapshot(self) -> list[list[int]]:
        """Deep copy of the current contents."""
        return [list(row) for row in self.rows]
