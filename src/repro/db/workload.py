"""Workload generators for the database evaluation (Section 5.1).

Three workload families, matching the paper:

- **Transactions**: each transaction touches one randomly-chosen tuple,
  reading ``i`` fields, writing ``j`` fields, and reading+writing ``k``
  fields (the x-axis labels of Figure 9 are "i-j-k").
- **Analytics**: sum ``k`` full columns of the table (Figure 10 uses
  k = 1 and k = 2).
- **HTAP**: one analytics thread plus one transactions thread running
  concurrently on the same table (Figure 11; transactions use one
  read-only and one write-only field).

Workloads are layout-independent *specifications*; the layouts in
:mod:`repro.db.layouts` translate them into instruction streams.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field

from repro.db.schema import TableSchema
from repro.errors import WorkloadError


@dataclass(frozen=True)
class FieldOp:
    """One field access within a transaction."""

    field: int
    write: bool
    value: int = 0  # value stored when write is True


@dataclass(frozen=True)
class Transaction:
    """One transaction: an ordered list of field accesses to one tuple."""

    tuple_id: int
    ops: tuple[FieldOp, ...]

    @property
    def fields_touched(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class TransactionMix:
    """The paper's i-j-k workload label."""

    read_only: int
    write_only: int
    read_write: int

    @property
    def label(self) -> str:
        return f"{self.read_only}-{self.write_only}-{self.read_write}"

    @property
    def total_fields(self) -> int:
        return self.read_only + self.write_only + self.read_write


#: The eight mixes on Figure 9's x-axis, sorted by total fields accessed.
FIGURE9_MIXES = (
    TransactionMix(1, 0, 1),
    TransactionMix(2, 1, 0),
    TransactionMix(0, 2, 2),
    TransactionMix(2, 4, 0),
    TransactionMix(5, 0, 1),
    TransactionMix(2, 0, 4),
    TransactionMix(6, 1, 0),
    TransactionMix(4, 2, 2),
)


def generate_transactions(
    schema: TableSchema,
    num_tuples: int,
    mix: TransactionMix,
    count: int,
    seed: int = 42,
) -> list[Transaction]:
    """Deterministic transaction stream for one i-j-k mix.

    Each transaction picks a random tuple and ``i + j + k`` distinct
    random fields; read-write fields produce a read op followed by a
    write op (a read-modify-write).
    """
    if mix.total_fields > schema.num_fields:
        raise WorkloadError(
            f"mix {mix.label} touches {mix.total_fields} fields, "
            f"schema has {schema.num_fields}"
        )
    rng = random.Random(seed)
    transactions = []
    for txn_index in range(count):
        tuple_id = rng.randrange(num_tuples)
        fields = rng.sample(range(schema.num_fields), mix.total_fields)
        ops: list[FieldOp] = []
        cursor = 0
        for _ in range(mix.read_only):
            ops.append(FieldOp(fields[cursor], write=False))
            cursor += 1
        for _ in range(mix.write_only):
            ops.append(FieldOp(fields[cursor], write=True, value=rng.randrange(1 << 40)))
            cursor += 1
        for _ in range(mix.read_write):
            f = fields[cursor]
            ops.append(FieldOp(f, write=False))
            ops.append(FieldOp(f, write=True, value=rng.randrange(1 << 40)))
            cursor += 1
        transactions.append(Transaction(tuple_id=tuple_id, ops=tuple(ops)))
    return transactions


@dataclass(frozen=True)
class AnalyticsQuery:
    """Sum one or more full columns."""

    fields: tuple[int, ...]

    @property
    def label(self) -> str:
        n = len(self.fields)
        return f"{n} Column" + ("s" if n != 1 else "")


@dataclass(frozen=True)
class HTAPWorkload:
    """Figure 11: analytics on one column + open-ended transactions.

    The transaction thread reads one field and writes another
    (mix 1-1-0), running until the analytics thread completes.
    """

    analytics: AnalyticsQuery = field(default_factory=lambda: AnalyticsQuery((0,)))
    txn_mix: TransactionMix = field(default_factory=lambda: TransactionMix(1, 1, 0))
    txn_seed: int = 7


@functools.lru_cache(maxsize=4)
def _rows_master(schema: TableSchema, num_tuples: int, seed: int) -> tuple:
    """Immutable master copy of one seeded table.

    A figure sweep generates the *same* table once per layout (and the
    fast path once more for its event twin); at 16K+ tuples the seeded
    generation dwarfs a copy, so memoise the draw and let
    :func:`make_rows` hand out fresh mutable copies.
    """
    rng = random.Random(seed)
    return tuple(
        tuple(rng.randrange(1 << 32) for _ in range(schema.num_fields))
        for _ in range(num_tuples)
    )


def make_rows(schema: TableSchema, num_tuples: int, seed: int = 1) -> list[list[int]]:
    """Deterministic table contents (the functional oracle's source)."""
    return [list(row) for row in _rows_master(schema, num_tuples, seed)]
