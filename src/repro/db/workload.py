"""Workload generators for the database evaluation (Section 5.1).

Three workload families, matching the paper:

- **Transactions**: each transaction touches one randomly-chosen tuple,
  reading ``i`` fields, writing ``j`` fields, and reading+writing ``k``
  fields (the x-axis labels of Figure 9 are "i-j-k").
- **Analytics**: sum ``k`` full columns of the table (Figure 10 uses
  k = 1 and k = 2).
- **HTAP**: one analytics thread plus one transactions thread running
  concurrently on the same table (Figure 11; transactions use one
  read-only and one write-only field).

Workloads are layout-independent *specifications*; the layouts in
:mod:`repro.db.layouts` translate them into instruction streams.

Generation is vectorized (phase 3): the canonical transaction stream
for a (schema, num_tuples, mix, count, seed) tuple is drawn in batch
with numpy (:func:`generate_transaction_arrays`), and the table master
copy is a memoized read-only numpy array (:func:`make_rows_array`).
:func:`generate_transactions` / :func:`make_rows` derive the
object/list forms the event drivers consume from the same draws, so
both execution modes always see the same workload.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field

import numpy as np

from repro.db.schema import TableSchema
from repro.errors import WorkloadError

#: Write values are drawn below 2**40 (distinguishable from the
#: initial table contents, which are drawn below 2**32).
VALUE_BITS = 40


@dataclass(frozen=True)
class FieldOp:
    """One field access within a transaction."""

    field: int
    write: bool
    value: int = 0  # value stored when write is True


@dataclass(frozen=True)
class Transaction:
    """One transaction: an ordered list of field accesses to one tuple."""

    tuple_id: int
    ops: tuple[FieldOp, ...]

    @property
    def fields_touched(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class TransactionMix:
    """The paper's i-j-k workload label."""

    read_only: int
    write_only: int
    read_write: int

    @property
    def label(self) -> str:
        return f"{self.read_only}-{self.write_only}-{self.read_write}"

    @property
    def total_fields(self) -> int:
        return self.read_only + self.write_only + self.read_write

    @property
    def ops_per_txn(self) -> int:
        """Field accesses per transaction (read-write fields cost two)."""
        return self.read_only + self.write_only + 2 * self.read_write


#: The eight mixes on Figure 9's x-axis, sorted by total fields accessed.
FIGURE9_MIXES = (
    TransactionMix(1, 0, 1),
    TransactionMix(2, 1, 0),
    TransactionMix(0, 2, 2),
    TransactionMix(2, 4, 0),
    TransactionMix(5, 0, 1),
    TransactionMix(2, 0, 4),
    TransactionMix(6, 1, 0),
    TransactionMix(4, 2, 2),
)


@dataclass(frozen=True)
class TransactionArrays:
    """A transaction batch as flat per-operation arrays, program order.

    The columnar twin of ``list[Transaction]``: operation ``p`` touches
    field ``fields[p]`` of tuple ``tuple_ids[p]``; ``writes[p]`` marks
    stores and ``values[p]`` carries the stored value (0 for reads).
    The vectorized engines (:mod:`repro.vec.db`) and the vectorized
    oracle (:class:`~repro.db.table.VecOracleTable`) consume this form
    directly; :meth:`to_transactions` materializes the object form for
    the event drivers. All arrays are read-only views.
    """

    mix: TransactionMix
    count: int
    tuple_ids: np.ndarray
    fields: np.ndarray
    writes: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return self.count

    def to_transactions(self) -> list[Transaction]:
        """The equivalent ``list[Transaction]`` (event-driver form)."""
        per = self.mix.ops_per_txn
        tuple_ids = self.tuple_ids[::per].tolist() if per else []
        fields = self.fields.tolist()
        writes = self.writes.tolist()
        values = self.values.tolist()
        txns = []
        for t in range(self.count):
            base = t * per
            ops = tuple(
                FieldOp(fields[base + o], writes[base + o],
                        values[base + o])
                for o in range(per)
            )
            txns.append(Transaction(tuple_id=tuple_ids[t] if per else 0,
                                    ops=ops))
        return txns


def _check_mix(schema: TableSchema, mix: TransactionMix) -> None:
    if mix.total_fields > schema.num_fields:
        raise WorkloadError(
            f"mix {mix.label} touches {mix.total_fields} fields, "
            f"schema has {schema.num_fields}"
        )


def generate_transaction_arrays(
    schema: TableSchema,
    num_tuples: int,
    mix: TransactionMix,
    count: int,
    seed: int = 42,
) -> TransactionArrays:
    """Deterministic transaction stream for one i-j-k mix, in batch.

    Each transaction picks a random tuple and ``i + j + k`` distinct
    random fields; read-write fields produce a read op followed by a
    write op (a read-modify-write). All draws are batched numpy RNG
    calls — no per-transaction Python loop — and this function defines
    the canonical stream: :func:`generate_transactions` is a view of
    the same draws.
    """
    _check_mix(schema, mix)
    i, j, k = mix.read_only, mix.write_only, mix.read_write
    per = mix.ops_per_txn
    rng = np.random.default_rng(seed)
    if count <= 0 or per == 0:
        empty = np.empty(0, dtype=np.int64)
        empty.setflags(write=False)
        empty_b = np.empty(0, dtype=bool)
        empty_b.setflags(write=False)
        return TransactionArrays(mix, max(count, 0), empty, empty,
                                 empty_b, empty)

    txn_tuples = rng.integers(num_tuples, size=count, dtype=np.int64)
    # Distinct fields per transaction: an independent permutation of
    # the schema's field ids per row, truncated to the mix width.
    perms = rng.permuted(
        np.broadcast_to(
            np.arange(schema.num_fields, dtype=np.int64),
            (count, schema.num_fields),
        ),
        axis=1,
    )[:, : mix.total_fields]
    draws = rng.integers(1 << VALUE_BITS, size=(count, j + k),
                         dtype=np.int64)

    fields = np.empty((count, per), dtype=np.int64)
    writes = np.zeros(per, dtype=bool)
    values = np.zeros((count, per), dtype=np.int64)
    fields[:, : i + j] = perms[:, : i + j]
    writes[i : i + j] = True
    values[:, i : i + j] = draws[:, :j]
    if k:
        # Read-modify-write: each field appears twice, read then write.
        fields[:, i + j :] = np.repeat(perms[:, i + j :], 2, axis=1)
        writes[i + j + 1 :: 2] = True
        values[:, i + j + 1 :: 2] = draws[:, j:]

    out = TransactionArrays(
        mix=mix,
        count=count,
        tuple_ids=np.repeat(txn_tuples, per),
        fields=fields.reshape(-1),
        writes=np.tile(writes, count),
        values=values.reshape(-1),
    )
    for array in (out.tuple_ids, out.fields, out.writes, out.values):
        array.setflags(write=False)
    return out


def generate_transactions(
    schema: TableSchema,
    num_tuples: int,
    mix: TransactionMix,
    count: int,
    seed: int = 42,
) -> list[Transaction]:
    """Deterministic transaction stream for one i-j-k mix.

    The object form of :func:`generate_transaction_arrays` — same
    draws, same program order — consumed by the event drivers and any
    caller that wants per-transaction objects.
    """
    return generate_transaction_arrays(
        schema, num_tuples, mix, count, seed
    ).to_transactions()


@dataclass(frozen=True)
class AnalyticsQuery:
    """Sum one or more full columns."""

    fields: tuple[int, ...]

    @property
    def label(self) -> str:
        n = len(self.fields)
        return f"{n} Column" + ("s" if n != 1 else "")


@dataclass(frozen=True)
class HTAPWorkload:
    """Figure 11: analytics on one column + open-ended transactions.

    The transaction thread reads one field and writes another
    (mix 1-1-0), running until the analytics thread completes.
    """

    analytics: AnalyticsQuery = field(default_factory=lambda: AnalyticsQuery((0,)))
    txn_mix: TransactionMix = field(default_factory=lambda: TransactionMix(1, 1, 0))
    txn_seed: int = 7


@functools.lru_cache(maxsize=4)
def _rows_master(schema: TableSchema, num_tuples: int, seed: int) -> np.ndarray:
    """Immutable master copy of one seeded table, as a numpy array.

    A figure sweep generates the *same* table once per layout (and the
    fast path once more for its event twin); at paper scale (1M x 8)
    the seeded generation dwarfs a copy, so memoise one batched RNG
    draw and let :func:`make_rows` / :func:`make_rows_array` hand out
    the views each caller needs. The array is marked read-only — every
    mutable consumer copies.
    """
    rng = np.random.default_rng(seed)
    rows = rng.integers(1 << 32, size=(num_tuples, schema.num_fields),
                        dtype=np.int64)
    rows.setflags(write=False)
    return rows


def make_rows_array(
    schema: TableSchema, num_tuples: int, seed: int = 1
) -> np.ndarray:
    """Deterministic table contents as a read-only (n, fields) array."""
    return _rows_master(schema, num_tuples, seed)


def make_rows(schema: TableSchema, num_tuples: int, seed: int = 1) -> list[list[int]]:
    """Deterministic table contents (the functional oracle's source)."""
    return _rows_master(schema, num_tuples, seed).tolist()


def clear_workload_caches() -> None:
    """Drop the memoized master tables (cold-timing benchmarks)."""
    _rows_master.cache_clear()


# Kept for callers that need a seeded scalar RNG compatible with the
# pre-phase-3 generator (none in-tree; the vectorized draws above are
# the canonical stream).
_SCALAR_RNG = random.Random
