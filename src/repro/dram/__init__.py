"""Commodity DRAM substrate: functional storage + DDR timing model."""

from repro.dram.address import AddressMapping, DecodedAddress, Geometry, MappingPolicy
from repro.dram.bank import Bank
from repro.dram.chip import Chip
from repro.dram.commands import Command, CommandKind
from repro.dram.module import DRAMModule
from repro.dram.rank import Rank
from repro.dram.timing import DEFAULT_CPU_PER_BUS, DRAMTiming, ddr3_1600, ddr4_2400

__all__ = [
    "AddressMapping",
    "Bank",
    "Chip",
    "Command",
    "CommandKind",
    "DEFAULT_CPU_PER_BUS",
    "DRAMModule",
    "DRAMTiming",
    "DecodedAddress",
    "Geometry",
    "MappingPolicy",
    "Rank",
    "ddr3_1600",
    "ddr4_2400",
]
