"""DRAM geometry and physical-address mapping.

Physical addresses are decoded into (bank, row, column, line offset)
according to a mapping policy. The default policy places column bits
below bank bits, so a streaming access sweeps all columns of an open
row before switching banks — the open-row-friendly layout the paper's
FR-FCFS/open-page configuration assumes. A bank-interleaved policy is
provided for ablations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AddressError, ConfigError
from repro.utils.bitops import ilog2, is_power_of_two


@dataclass(frozen=True)
class Geometry:
    """Shape of one DRAM rank (the paper: 1 channel, 1 rank, 8 banks)."""

    chips: int = 8
    banks: int = 8
    rows_per_bank: int = 4096
    columns_per_row: int = 128
    column_bytes: int = 8

    def __post_init__(self) -> None:
        for name in ("chips", "banks", "rows_per_bank", "columns_per_row"):
            if not is_power_of_two(getattr(self, name)):
                raise ConfigError(f"{name} must be a power of two")
        if self.column_bytes <= 0:
            raise ConfigError("column_bytes must be positive")

    @property
    def line_bytes(self) -> int:
        """Cache-line size delivered per column command."""
        return self.chips * self.column_bytes

    @property
    def row_bytes(self) -> int:
        """Bytes per row across the rank (8 KB in the default geometry)."""
        return self.columns_per_row * self.line_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total module capacity."""
        return self.banks * self.rows_per_bank * self.row_bytes

    @property
    def lines(self) -> int:
        """Total number of cache lines in the module."""
        return self.capacity_bytes // self.line_bytes


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decoded into DRAM coordinates."""

    bank: int
    row: int
    column: int
    offset: int

    @property
    def line_key(self) -> tuple[int, int, int]:
        """(bank, row, column) — identifies one DRAM line."""
        return (self.bank, self.row, self.column)


class MappingPolicy(enum.Enum):
    """How address bits are split among bank/row/column."""

    #: [row | bank | column | offset] — streams stay in one open row.
    ROW_BANK_COLUMN = "row-bank-column"
    #: [row | column | bank | offset] — consecutive lines hit different banks.
    BANK_INTERLEAVED = "bank-interleaved"


class AddressMapping:
    """Bidirectional physical address <-> (bank, row, column) mapping."""

    def __init__(
        self,
        geometry: Geometry,
        policy: MappingPolicy = MappingPolicy.ROW_BANK_COLUMN,
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.offset_bits = ilog2(geometry.line_bytes)
        self.column_bits = ilog2(geometry.columns_per_row)
        self.bank_bits = ilog2(geometry.banks)
        self.row_bits = ilog2(geometry.rows_per_bank)
        self.address_bits = (
            self.offset_bits + self.column_bits + self.bank_bits + self.row_bits
        )

    def decode(self, address: int) -> DecodedAddress:
        """Split a physical byte address into DRAM coordinates."""
        if address < 0 or address >= self.geometry.capacity_bytes:
            raise AddressError(
                f"address {address:#x} outside module capacity "
                f"{self.geometry.capacity_bytes:#x}"
            )
        offset = address & (self.geometry.line_bytes - 1)
        line = address >> self.offset_bits
        if self.policy is MappingPolicy.ROW_BANK_COLUMN:
            column = line & (self.geometry.columns_per_row - 1)
            line >>= self.column_bits
            bank = line & (self.geometry.banks - 1)
            row = line >> self.bank_bits
        else:
            bank = line & (self.geometry.banks - 1)
            line >>= self.bank_bits
            column = line & (self.geometry.columns_per_row - 1)
            row = line >> self.column_bits
        return DecodedAddress(bank=bank, row=row, column=column, offset=offset)

    def encode(self, bank: int, row: int, column: int, offset: int = 0) -> int:
        """Inverse of :meth:`decode`."""
        geometry = self.geometry
        if not 0 <= bank < geometry.banks:
            raise AddressError(f"bank {bank} out of range")
        if not 0 <= row < geometry.rows_per_bank:
            raise AddressError(f"row {row} out of range")
        if not 0 <= column < geometry.columns_per_row:
            raise AddressError(f"column {column} out of range")
        if not 0 <= offset < geometry.line_bytes:
            raise AddressError(f"offset {offset} out of range")
        if self.policy is MappingPolicy.ROW_BANK_COLUMN:
            line = ((row << self.bank_bits) | bank) << self.column_bits | column
        else:
            line = ((row << self.column_bits) | column) << self.bank_bits | bank
        return (line << self.offset_bits) | offset

    def line_address(self, address: int) -> int:
        """Address rounded down to its cache-line base."""
        return address & ~(self.geometry.line_bytes - 1)
