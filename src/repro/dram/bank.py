"""Per-bank state machine: protocol legality + timing readiness.

Each bank tracks its open row and the earliest cycle at which each
command class may legally be issued to it. The controller consults
:meth:`Bank.earliest` to schedule and calls the ``issue_*`` methods to
commit a command; issuing a command in an illegal state raises
:class:`~repro.errors.ProtocolError` so controller bugs surface as
errors, not as silently wrong timing.
"""

from __future__ import annotations

from repro.dram.timing import DRAMTiming
from repro.errors import ProtocolError


class Bank:
    """One DRAM bank: open-row tracking and command timing windows."""

    def __init__(self, bank_id: int, timing: DRAMTiming) -> None:
        self.bank_id = bank_id
        self.timing = timing
        self.open_row: int | None = None
        # Earliest issue times per command class, in engine cycles.
        self.next_activate = 0
        self.next_column = 0  # READ or WRITE
        self.next_precharge = 0
        # Statistics.
        self.activations = 0
        self.row_hits = 0
        self.row_misses = 0

    # ------------------------------------------------------------------
    # Scheduling queries
    # ------------------------------------------------------------------
    def is_open(self, row: int) -> bool:
        """True if ``row`` is currently in this bank's row buffer."""
        return self.open_row == row

    def earliest_for_access(self, row: int, now: int) -> int:
        """Earliest cycle a column command for ``row`` could reach data.

        Used by FR-FCFS to rank requests: a row hit only waits for the
        column window, a miss must precharge and activate first. This is
        an estimate for arbitration; actual issue re-validates.
        """
        if self.is_open(row):
            return max(now, self.next_column)
        start = max(now, self.next_precharge)
        after_pre = start + self.timing.t_rp
        after_act = max(after_pre, self.next_activate) + self.timing.t_rcd
        return after_act

    # ------------------------------------------------------------------
    # Command issue
    # ------------------------------------------------------------------
    def issue_activate(self, row: int, now: int) -> None:
        """Open ``row``; bank must be precharged and past its ACT window."""
        if self.open_row is not None:
            raise ProtocolError(
                f"bank {self.bank_id}: ACT while row {self.open_row} is open"
            )
        if now < self.next_activate:
            raise ProtocolError(
                f"bank {self.bank_id}: ACT at {now} before window {self.next_activate}"
            )
        self.open_row = row
        self.activations += 1
        self.next_column = now + self.timing.t_rcd
        self.next_precharge = now + self.timing.t_ras
        self.next_activate = now + self.timing.t_rc

    def issue_precharge(self, now: int) -> None:
        """Close the open row (idempotent on an already-precharged bank)."""
        if self.open_row is None:
            return
        if now < self.next_precharge:
            raise ProtocolError(
                f"bank {self.bank_id}: PRE at {now} before window {self.next_precharge}"
            )
        self.open_row = None
        self.next_activate = max(self.next_activate, now + self.timing.t_rp)

    def issue_read(self, row: int, now: int) -> int:
        """Issue a READ; returns the cycle the data burst completes."""
        self._check_column(row, now, "READ")
        self.row_hits += 1
        timing = self.timing
        self.next_column = now + timing.t_ccd
        self.next_precharge = max(self.next_precharge, now + timing.t_rtp)
        return now + timing.cl + timing.t_bl

    def issue_write(self, row: int, now: int) -> int:
        """Issue a WRITE; returns the cycle the data burst completes."""
        self._check_column(row, now, "WRITE")
        self.row_hits += 1
        timing = self.timing
        burst_end = now + timing.cwl + timing.t_bl
        self.next_column = max(now + timing.t_ccd, burst_end + timing.t_wtr)
        self.next_precharge = max(self.next_precharge, burst_end + timing.t_wr)
        return burst_end

    # ------------------------------------------------------------------
    # In-DRAM compute (docs/INDRAM.md)
    # ------------------------------------------------------------------
    def issue_mra(self, rows: tuple[int, ...], now: int) -> int:
        """Issue a multi-row activation; returns its completion cycle.

        MRA is atomic at the bank: it requires a precharged bank (the
        sense amplifiers must start equalised for charge sharing to
        compute the bitwise op) and leaves the bank precharged, so the
        open-row state machine never observes an intermediate state.
        """
        if self.open_row is not None:
            raise ProtocolError(
                f"bank {self.bank_id}: MRA while row {self.open_row} is open"
            )
        if now < self.next_activate:
            raise ProtocolError(
                f"bank {self.bank_id}: MRA at {now} before window {self.next_activate}"
            )
        self.activations += len(rows)
        end = now + self.timing.t_mra(len(rows))
        self.block_until(end)
        return end

    def issue_shift(self, stages: int, now: int) -> int:
        """Issue an in-array shift; returns its completion cycle.

        Like MRA, SHIFT is atomic: precharged bank in, precharged bank
        out, all windows pushed past the internal open/shift/close
        envelope.
        """
        if self.open_row is not None:
            raise ProtocolError(
                f"bank {self.bank_id}: SHIFT while row {self.open_row} is open"
            )
        if now < self.next_activate:
            raise ProtocolError(
                f"bank {self.bank_id}: SHIFT at {now} before window {self.next_activate}"
            )
        self.activations += 1
        end = now + self.timing.t_shift(stages)
        self.block_until(end)
        return end

    def _check_column(self, row: int, now: int, kind: str) -> None:
        if self.open_row != row:
            raise ProtocolError(
                f"bank {self.bank_id}: {kind} to row {row} "
                f"but open row is {self.open_row}"
            )
        if now < self.next_column:
            raise ProtocolError(
                f"bank {self.bank_id}: {kind} at {now} before window {self.next_column}"
            )

    def block_until(self, time: int) -> None:
        """Push all command windows past ``time`` (used for refresh)."""
        self.next_activate = max(self.next_activate, time)
        self.next_column = max(self.next_column, time)
        self.next_precharge = max(self.next_precharge, time)
