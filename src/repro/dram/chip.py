"""Functional model of a single DRAM chip.

A chip stores, for every (bank, row), a row of columns; each column is
``column_bytes`` wide (8 bytes for a x8 chip bursting 8 beats — the
chip's share of one 64-byte cache line). Rows are allocated lazily and
zero-filled, matching the simulator convention that untouched memory
reads as zeros.

The chip is purely functional: all timing lives in
:class:`repro.dram.bank.Bank` and the memory controller.
"""

from __future__ import annotations

from repro.errors import AddressError


class Chip:
    """One DRAM chip: lazily-allocated (bank, row) -> bytearray storage."""

    def __init__(
        self,
        chip_id: int,
        banks: int,
        rows_per_bank: int,
        columns_per_row: int,
        column_bytes: int = 8,
    ) -> None:
        self.chip_id = chip_id
        self.banks = banks
        self.rows_per_bank = rows_per_bank
        self.columns_per_row = columns_per_row
        self.column_bytes = column_bytes
        self._rows: dict[tuple[int, int], bytearray] = {}

    def _check(self, bank: int, row: int, column: int) -> None:
        if not 0 <= bank < self.banks:
            raise AddressError(f"chip {self.chip_id}: bank {bank} out of range")
        if not 0 <= row < self.rows_per_bank:
            raise AddressError(f"chip {self.chip_id}: row {row} out of range")
        if not 0 <= column < self.columns_per_row:
            raise AddressError(f"chip {self.chip_id}: column {column} out of range")

    def _row(self, bank: int, row: int) -> bytearray:
        key = (bank, row)
        data = self._rows.get(key)
        if data is None:
            data = bytearray(self.columns_per_row * self.column_bytes)
            self._rows[key] = data
        return data

    def read_column(self, bank: int, row: int, column: int) -> bytes:
        """Return the ``column_bytes`` stored at (bank, row, column)."""
        self._check(bank, row, column)
        data = self._rows.get((bank, row))
        if data is None:
            return bytes(self.column_bytes)
        start = column * self.column_bytes
        return bytes(data[start : start + self.column_bytes])

    def write_column(self, bank: int, row: int, column: int, value: bytes) -> None:
        """Store ``value`` (exactly ``column_bytes`` long) at the column."""
        self._check(bank, row, column)
        if len(value) != self.column_bytes:
            raise AddressError(
                f"chip {self.chip_id}: write of {len(value)} bytes, "
                f"column width is {self.column_bytes}"
            )
        data = self._row(bank, row)
        start = column * self.column_bytes
        data[start : start + self.column_bytes] = value

    def row_view(self, bank: int, row: int) -> bytearray:
        """The live storage of (bank, row), allocating zeros if untouched.

        Used by the rank-level in-DRAM compute paths, which need whole
        rows at once; mutating the returned bytearray mutates the chip.
        """
        self._check(bank, row, 0)
        return self._row(bank, row)

    def combine_rows(
        self, bank: int, rows: tuple[int, ...], dest: int, op: str
    ) -> None:
        """Latch the bitwise ``op`` of ``rows`` into row ``dest``.

        The functional half of a multi-row activation: byte-wise
        AND/OR over 2-3 source rows, or bitwise majority over exactly
        3 (``MAJ3(a,b,c) = (a&b)|(a&c)|(b&c)``). Validity of the
        combination is enforced by :class:`repro.dram.commands.Command`;
        here we only range-check the addresses.
        """
        for r in (*rows, dest):
            self._check(bank, r, 0)
        srcs = [self._rows.get((bank, r)) for r in rows]
        width = self.columns_per_row * self.column_bytes
        zeros = bytes(width)
        vals = [int.from_bytes(s if s is not None else zeros, "little")
                for s in srcs]
        if op == "AND":
            acc = vals[0]
            for v in vals[1:]:
                acc &= v
        elif op == "OR":
            acc = vals[0]
            for v in vals[1:]:
                acc |= v
        elif op == "MAJ":
            a, b, c = vals
            acc = (a & b) | (a & c) | (b & c)
        else:
            raise AddressError(f"chip {self.chip_id}: unknown MRA op {op!r}")
        self._row(bank, dest)[:] = acc.to_bytes(width, "little")

    @property
    def allocated_rows(self) -> int:
        """Number of rows touched so far (memory-footprint introspection)."""
        return len(self._rows)
