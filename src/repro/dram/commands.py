"""DRAM command types.

The controller drives banks with the standard DDR command set. Commands
are plain frozen dataclasses so they can be logged, counted by the
energy model, and replayed in tests.

Beyond the stock DDR vocabulary this model adds two in-DRAM compute
commands (see docs/INDRAM.md):

- ``MULTI_ROW_ACTIVATE`` (MRA): simultaneously open 2-3 rows of one
  bank so the shared bitlines compute a bitwise AND/OR/majority of
  their contents, latching the result into a destination row
  (PULSAR-style many-row activation).
- ``SHIFT``: shift the addressed row's contents as one little-endian
  bit vector by ``amount`` bit positions (Shifting-in-DRAM-style
  in-array shifter), zero-filling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProtocolError


class CommandKind(enum.Enum):
    """The DDR command vocabulary used by this model."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"
    MULTI_ROW_ACTIVATE = "MRA"
    SHIFT = "SHIFT"


#: Bitwise operations a multi-row activation can compute. AND/OR accept
#: 2 or 3 source rows; MAJ (bitwise majority) requires exactly 3.
MRA_OPS = ("AND", "OR", "MAJ")


@dataclass(frozen=True)
class Command:
    """One command as issued on the command/address bus.

    ``pattern`` is the GS-DRAM pattern ID riding on the spare column
    address pins (Section 3.6); it is 0 for conventional accesses and is
    ignored by plain (non-GS) modules.

    ``rows``/``op`` are populated only for MRA (source rows and the
    bitwise operation; ``row`` holds the destination), ``amount`` only
    for SHIFT (bit positions, direction ``left``/``right`` in ``op``).
    """

    kind: CommandKind
    bank: int
    row: int = 0
    column: int = 0
    pattern: int = 0
    rows: tuple[int, ...] = ()
    op: str = ""
    amount: int = 0

    def __post_init__(self) -> None:
        # Audit shared fields first: REF is the only broadcast (bank-less)
        # command; everything else addresses a real bank and row/column.
        if self.kind is CommandKind.REFRESH:
            if self.bank != -1:
                raise ProtocolError("REF is all-bank; use bank=-1",
                                    bank=self.bank)
        elif self.bank < 0:
            raise ProtocolError("command needs a non-negative bank",
                                kind=self.kind.value, bank=self.bank)
        if self.row < 0 or self.column < 0 or self.pattern < 0:
            raise ProtocolError("row/column/pattern must be non-negative",
                                kind=self.kind.value, row=self.row,
                                column=self.column, pattern=self.pattern)
        if self.kind is CommandKind.MULTI_ROW_ACTIVATE:
            if len(self.rows) < 2 or len(self.rows) > 3:
                raise ProtocolError("MRA needs 2-3 source rows",
                                    rows=self.rows)
            if len(set(self.rows)) != len(self.rows):
                raise ProtocolError("MRA source rows must be distinct",
                                    rows=self.rows)
            if any(r < 0 for r in self.rows):
                raise ProtocolError("MRA source rows must be non-negative",
                                    rows=self.rows)
            if self.op not in MRA_OPS:
                raise ProtocolError("MRA op must be one of AND/OR/MAJ",
                                    op=self.op)
            if self.op == "MAJ" and len(self.rows) != 3:
                raise ProtocolError("MAJ requires exactly 3 source rows",
                                    rows=self.rows)
        elif self.kind is CommandKind.SHIFT:
            if self.amount <= 0:
                raise ProtocolError("SHIFT needs a positive amount",
                                    amount=self.amount)
            if self.op not in ("left", "right"):
                raise ProtocolError("SHIFT direction must be left/right",
                                    op=self.op)
        else:
            # The stock DDR kinds never carry compute fields; rejecting
            # them here keeps unset fields from silently passing.
            if self.rows or self.op or self.amount:
                raise ProtocolError(
                    "rows/op/amount are MRA/SHIFT-only fields",
                    kind=self.kind.value, rows=self.rows, op=self.op,
                    amount=self.amount)

    def __str__(self) -> str:
        if self.kind is CommandKind.ACTIVATE:
            return f"ACT(b{self.bank}, r{self.row})"
        if self.kind is CommandKind.PRECHARGE:
            return f"PRE(b{self.bank})"
        if self.kind is CommandKind.REFRESH:
            return "REF"
        if self.kind is CommandKind.MULTI_ROW_ACTIVATE:
            srcs = ",".join(f"r{r}" for r in self.rows)
            return f"MRA(b{self.bank}, {self.op}[{srcs}] -> r{self.row})"
        if self.kind is CommandKind.SHIFT:
            return f"SHIFT(b{self.bank}, r{self.row} {self.op} {self.amount})"
        return f"{self.kind.value}(b{self.bank}, c{self.column}, p{self.pattern})"


def activate(bank: int, row: int) -> Command:
    """ACTIVATE: open ``row`` in ``bank`` (copy it into the row buffer)."""
    return Command(CommandKind.ACTIVATE, bank=bank, row=row)


def precharge(bank: int) -> Command:
    """PRECHARGE: close the open row in ``bank``."""
    return Command(CommandKind.PRECHARGE, bank=bank)


def read(bank: int, column: int, pattern: int = 0) -> Command:
    """READ: burst one cache line from the open row at ``column``."""
    return Command(CommandKind.READ, bank=bank, column=column, pattern=pattern)


def write(bank: int, column: int, pattern: int = 0) -> Command:
    """WRITE: burst one cache line into the open row at ``column``."""
    return Command(CommandKind.WRITE, bank=bank, column=column, pattern=pattern)


def refresh() -> Command:
    """REFRESH: all-bank refresh (banks must be precharged)."""
    return Command(CommandKind.REFRESH, bank=-1)


def mra(bank: int, rows: tuple[int, ...], dest: int, op: str) -> Command:
    """MRA: latch ``op`` over ``rows`` into row ``dest`` of ``bank``."""
    return Command(CommandKind.MULTI_ROW_ACTIVATE, bank=bank, row=dest,
                   rows=tuple(rows), op=op)


def shift(bank: int, row: int, amount: int, direction: str = "left") -> Command:
    """SHIFT: shift row ``row`` of ``bank`` by ``amount`` bits in place."""
    return Command(CommandKind.SHIFT, bank=bank, row=row, amount=amount,
                   op=direction)
