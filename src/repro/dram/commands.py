"""DRAM command types.

The controller drives banks with the standard DDR command set. Commands
are plain frozen dataclasses so they can be logged, counted by the
energy model, and replayed in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandKind(enum.Enum):
    """The DDR command vocabulary used by this model."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"


@dataclass(frozen=True)
class Command:
    """One command as issued on the command/address bus.

    ``pattern`` is the GS-DRAM pattern ID riding on the spare column
    address pins (Section 3.6); it is 0 for conventional accesses and is
    ignored by plain (non-GS) modules.
    """

    kind: CommandKind
    bank: int
    row: int = 0
    column: int = 0
    pattern: int = 0

    def __str__(self) -> str:
        if self.kind is CommandKind.ACTIVATE:
            return f"ACT(b{self.bank}, r{self.row})"
        if self.kind is CommandKind.PRECHARGE:
            return f"PRE(b{self.bank})"
        if self.kind is CommandKind.REFRESH:
            return "REF"
        return f"{self.kind.value}(b{self.bank}, c{self.column}, p{self.pattern})"


def activate(bank: int, row: int) -> Command:
    """ACTIVATE: open ``row`` in ``bank`` (copy it into the row buffer)."""
    return Command(CommandKind.ACTIVATE, bank=bank, row=row)


def precharge(bank: int) -> Command:
    """PRECHARGE: close the open row in ``bank``."""
    return Command(CommandKind.PRECHARGE, bank=bank)


def read(bank: int, column: int, pattern: int = 0) -> Command:
    """READ: burst one cache line from the open row at ``column``."""
    return Command(CommandKind.READ, bank=bank, column=column, pattern=pattern)


def write(bank: int, column: int, pattern: int = 0) -> Command:
    """WRITE: burst one cache line into the open row at ``column``."""
    return Command(CommandKind.WRITE, bank=bank, column=column, pattern=pattern)


def refresh() -> Command:
    """REFRESH: all-bank refresh (banks must be precharged)."""
    return Command(CommandKind.REFRESH, bank=-1)
