"""A complete DRAM module: functional rank + per-bank timing state.

The module is the unit the memory controller talks to. It bundles the
functional storage (:class:`~repro.dram.rank.Rank`), per-bank timing
state machines, and the address mapping. Subclasses swap in a GS-DRAM
rank (see :class:`repro.core.module.GSModule`) without touching the
controller.
"""

from __future__ import annotations

from repro.dram.address import AddressMapping, DecodedAddress, Geometry, MappingPolicy
from repro.dram.bank import Bank
from repro.dram.rank import Rank
from repro.dram.timing import DEFAULT_CPU_PER_BUS, DRAMTiming, ddr3_1600
from repro.errors import AddressError


class DRAMModule:
    """A single-rank DRAM module (the paper: 1 channel, 1 rank, 8 banks)."""

    def __init__(
        self,
        geometry: Geometry | None = None,
        timing: DRAMTiming | None = None,
        cpu_per_bus: int = DEFAULT_CPU_PER_BUS,
        policy: MappingPolicy = MappingPolicy.ROW_BANK_COLUMN,
    ) -> None:
        self.geometry = geometry or Geometry()
        bus_timing = timing or ddr3_1600()
        self.timing = bus_timing.scaled(cpu_per_bus)
        self.cpu_per_bus = cpu_per_bus
        self.mapping = AddressMapping(self.geometry, policy)
        self.rank = self._build_rank()
        self.banks = [Bank(i, self.timing) for i in range(self.geometry.banks)]

    def _build_rank(self) -> Rank:
        """Construct the functional rank; the GS module overrides this."""
        g = self.geometry
        return Rank(g.chips, g.banks, g.rows_per_bank, g.columns_per_row, g.column_bytes)

    @property
    def line_bytes(self) -> int:
        return self.geometry.line_bytes

    @property
    def supports_patterns(self) -> bool:
        """Whether non-zero pattern IDs are honoured (False for plain DRAM)."""
        return False

    # ------------------------------------------------------------------
    # Functional access (timing-free), used by loaders and tests
    # ------------------------------------------------------------------
    def decode(self, address: int) -> DecodedAddress:
        return self.mapping.decode(address)

    def read_line(self, address: int, pattern: int = 0, shuffled: bool = False) -> bytes:
        """Functionally read the line containing ``address``.

        ``shuffled`` is accepted for interface compatibility with the GS
        module and ignored (plain DRAM has no shuffle network).
        """
        loc = self.mapping.decode(address)
        if loc.offset != 0:
            raise AddressError(f"line read of unaligned address {address:#x}")
        return self.rank.read_line(loc.bank, loc.row, loc.column, pattern)

    def write_line(
        self, address: int, data: bytes, pattern: int = 0, shuffled: bool = False
    ) -> None:
        """Functionally write the line containing ``address``."""
        loc = self.mapping.decode(address)
        if loc.offset != 0:
            raise AddressError(f"line write of unaligned address {address:#x}")
        self.rank.write_line(loc.bank, loc.row, loc.column, data, pattern)

    # Byte-granularity convenience for loaders (read-modify-write).
    def read_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address`` (may span lines)."""
        out = bytearray()
        line_bytes = self.line_bytes
        while length > 0:
            base = self.mapping.line_address(address)
            offset = address - base
            take = min(length, line_bytes - offset)
            out += self.read_line(base)[offset : offset + take]
            address += take
            length -= take
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address`` (may span lines)."""
        line_bytes = self.line_bytes
        position = 0
        while position < len(data):
            base = self.mapping.line_address(address + position)
            offset = (address + position) - base
            take = min(len(data) - position, line_bytes - offset)
            line = bytearray(self.read_line(base))
            line[offset : offset + take] = data[position : position + take]
            self.write_line(base, bytes(line))
            position += take
