"""A DRAM rank: a group of chips sharing command/address buses.

All chips in a rank decode every command in lockstep (Section 2 of the
paper); each contributes ``column_bytes`` to every cache line. The base
:class:`Rank` implements the conventional behaviour where every chip
accesses the *same* column. GS-DRAM overrides exactly one seam —
:meth:`Rank.chip_column` — to insert the per-chip column translation
logic (see :mod:`repro.core.module`).
"""

from __future__ import annotations

from repro.dram.chip import Chip
from repro.errors import AddressError, ConfigError
from repro.utils.bitops import is_power_of_two


class Rank:
    """A lockstep group of chips forming one data word per column access."""

    def __init__(
        self,
        chips: int,
        banks: int,
        rows_per_bank: int,
        columns_per_row: int,
        column_bytes: int = 8,
    ) -> None:
        if not is_power_of_two(chips):
            raise ConfigError(f"chip count must be a power of two, got {chips}")
        self.num_chips = chips
        self.banks = banks
        self.rows_per_bank = rows_per_bank
        self.columns_per_row = columns_per_row
        self.column_bytes = column_bytes
        self.chips = [
            Chip(i, banks, rows_per_bank, columns_per_row, column_bytes)
            for i in range(chips)
        ]

    @property
    def line_bytes(self) -> int:
        """Bytes delivered per column command (the cache line size)."""
        return self.num_chips * self.column_bytes

    @property
    def row_bytes(self) -> int:
        """Bytes per DRAM row across the whole rank."""
        return self.columns_per_row * self.line_bytes

    # ------------------------------------------------------------------
    # The GS-DRAM seam
    # ------------------------------------------------------------------
    def chip_column(self, chip_id: int, column: int, pattern: int) -> int:
        """Column accessed by ``chip_id`` for an issued ``column``.

        Conventional DRAM ignores the pattern ID: every chip accesses
        the issued column. GS-DRAM's module overrides this with the CTL.
        """
        if pattern != 0:
            raise AddressError(
                "plain DRAM rank cannot honour a non-zero pattern ID "
                f"(got pattern {pattern}); use a GSRank"
            )
        return column

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def read_line(self, bank: int, row: int, column: int, pattern: int = 0) -> bytes:
        """Read one line: chip ``i`` supplies byte lanes ``i*w..(i+1)*w``."""
        parts = []
        for chip in self.chips:
            chip_col = self.chip_column(chip.chip_id, column, pattern)
            parts.append(chip.read_column(bank, row, chip_col))
        return b"".join(parts)

    def write_line(
        self, bank: int, row: int, column: int, data: bytes, pattern: int = 0
    ) -> None:
        """Write one line: chip ``i`` absorbs byte lanes ``i*w..(i+1)*w``."""
        if len(data) != self.line_bytes:
            raise AddressError(
                f"line write of {len(data)} bytes, rank line size is {self.line_bytes}"
            )
        width = self.column_bytes
        for chip in self.chips:
            chip_col = self.chip_column(chip.chip_id, column, pattern)
            lane = data[chip.chip_id * width : (chip.chip_id + 1) * width]
            chip.write_column(bank, row, chip_col, lane)

    # ------------------------------------------------------------------
    # In-DRAM compute (docs/INDRAM.md)
    # ------------------------------------------------------------------
    def read_row(self, bank: int, row: int) -> bytes:
        """The whole row in logical line order (column 0 line first).

        Equivalent to 128 pattern-0 ``read_line`` calls, vectorized:
        chip ``i``'s storage supplies byte lanes ``i*w..(i+1)*w`` of
        every line (pattern 0 is the identity on every rank flavour,
        so the per-chip column translation can be bypassed).
        """
        import numpy as np

        width = self.column_bytes
        stack = np.empty(
            (self.columns_per_row, self.num_chips, width), dtype=np.uint8
        )
        for chip in self.chips:
            stack[:, chip.chip_id, :] = np.frombuffer(
                chip.row_view(bank, row), dtype=np.uint8
            ).reshape(self.columns_per_row, width)
        return stack.tobytes()

    def write_row(self, bank: int, row: int, data: bytes) -> None:
        """Fill the whole row from ``data`` in logical line order."""
        import numpy as np

        if len(data) != self.row_bytes:
            raise AddressError(
                f"row write of {len(data)} bytes, rank row size is {self.row_bytes}"
            )
        width = self.column_bytes
        stack = np.frombuffer(data, dtype=np.uint8).reshape(
            self.columns_per_row, self.num_chips, width
        )
        for chip in self.chips:
            target = np.frombuffer(
                chip.row_view(bank, row), dtype=np.uint8
            ).reshape(self.columns_per_row, width)
            target[:] = stack[:, chip.chip_id, :]

    def mra(self, bank: int, rows: tuple[int, ...], dest: int, op: str) -> None:
        """Multi-row activate: every chip combines its slice in lockstep.

        The bitwise ops are bit-local, so each chip computes its own
        ``column_bytes``-wide lanes independently — exactly how the
        command decodes on real hardware (all chips see the same
        addresses).
        """
        for chip in self.chips:
            chip.combine_rows(bank, rows, dest, op)

    def shift_row(self, bank: int, row: int, amount: int,
                  direction: str = "left") -> None:
        """Shift the row as one little-endian bit vector, zero-filling.

        Bit ``t`` lives in byte ``t // 8`` of the row's logical line
        order; shifts cross chip (and column) boundaries, so the
        functional model assembles the full row, shifts it as an
        integer, and scatters it back.
        """
        if amount <= 0:
            raise AddressError(f"shift amount must be positive, got {amount}")
        bits = self.row_bytes * 8
        value = int.from_bytes(self.read_row(bank, row), "little")
        if direction == "left":
            value = (value << amount) & ((1 << bits) - 1)
        elif direction == "right":
            value >>= amount
        else:
            raise AddressError(f"unknown shift direction {direction!r}")
        self.write_row(bank, row, value.to_bytes(self.row_bytes, "little"))
