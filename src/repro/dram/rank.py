"""A DRAM rank: a group of chips sharing command/address buses.

All chips in a rank decode every command in lockstep (Section 2 of the
paper); each contributes ``column_bytes`` to every cache line. The base
:class:`Rank` implements the conventional behaviour where every chip
accesses the *same* column. GS-DRAM overrides exactly one seam —
:meth:`Rank.chip_column` — to insert the per-chip column translation
logic (see :mod:`repro.core.module`).
"""

from __future__ import annotations

from repro.dram.chip import Chip
from repro.errors import AddressError, ConfigError
from repro.utils.bitops import is_power_of_two


class Rank:
    """A lockstep group of chips forming one data word per column access."""

    def __init__(
        self,
        chips: int,
        banks: int,
        rows_per_bank: int,
        columns_per_row: int,
        column_bytes: int = 8,
    ) -> None:
        if not is_power_of_two(chips):
            raise ConfigError(f"chip count must be a power of two, got {chips}")
        self.num_chips = chips
        self.banks = banks
        self.rows_per_bank = rows_per_bank
        self.columns_per_row = columns_per_row
        self.column_bytes = column_bytes
        self.chips = [
            Chip(i, banks, rows_per_bank, columns_per_row, column_bytes)
            for i in range(chips)
        ]

    @property
    def line_bytes(self) -> int:
        """Bytes delivered per column command (the cache line size)."""
        return self.num_chips * self.column_bytes

    @property
    def row_bytes(self) -> int:
        """Bytes per DRAM row across the whole rank."""
        return self.columns_per_row * self.line_bytes

    # ------------------------------------------------------------------
    # The GS-DRAM seam
    # ------------------------------------------------------------------
    def chip_column(self, chip_id: int, column: int, pattern: int) -> int:
        """Column accessed by ``chip_id`` for an issued ``column``.

        Conventional DRAM ignores the pattern ID: every chip accesses
        the issued column. GS-DRAM's module overrides this with the CTL.
        """
        if pattern != 0:
            raise AddressError(
                "plain DRAM rank cannot honour a non-zero pattern ID "
                f"(got pattern {pattern}); use a GSRank"
            )
        return column

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def read_line(self, bank: int, row: int, column: int, pattern: int = 0) -> bytes:
        """Read one line: chip ``i`` supplies byte lanes ``i*w..(i+1)*w``."""
        parts = []
        for chip in self.chips:
            chip_col = self.chip_column(chip.chip_id, column, pattern)
            parts.append(chip.read_column(bank, row, chip_col))
        return b"".join(parts)

    def write_line(
        self, bank: int, row: int, column: int, data: bytes, pattern: int = 0
    ) -> None:
        """Write one line: chip ``i`` absorbs byte lanes ``i*w..(i+1)*w``."""
        if len(data) != self.line_bytes:
            raise AddressError(
                f"line write of {len(data)} bytes, rank line size is {self.line_bytes}"
            )
        width = self.column_bytes
        for chip in self.chips:
            chip_col = self.chip_column(chip.chip_id, column, pattern)
            lane = data[chip.chip_id * width : (chip.chip_id + 1) * width]
            chip.write_column(bank, row, chip_col, lane)
