"""DRAM timing parameter sets.

Parameters are expressed in *memory bus clock* cycles and converted to
CPU cycles once, when a simulation is configured, so the event engine
runs on a single clock domain (the paper's 4 GHz core clock).

Values for DDR3-1600 follow the JEDEC 11-11-11 speed bin that the
paper's Gem5 configuration uses; DDR4-2400 is provided for the Section
3.6 discussion (spare pins) and for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class DRAMTiming:
    """Timing constraints, all in cycles of a single clock domain.

    Attributes mirror the JEDEC names:

    - ``cl``: CAS latency, READ command to first data beat.
    - ``cwl``: CAS write latency, WRITE command to first data beat.
    - ``t_rcd``: ACTIVATE to READ/WRITE.
    - ``t_rp``: PRECHARGE to ACTIVATE.
    - ``t_ras``: ACTIVATE to PRECHARGE (same bank).
    - ``t_rc``: ACTIVATE to ACTIVATE (same bank).
    - ``t_bl``: data burst length on the bus (BL8 = 4 bus cycles, DDR).
    - ``t_ccd``: column command to column command.
    - ``t_rrd``: ACTIVATE to ACTIVATE (different banks).
    - ``t_wr``: end of write burst to PRECHARGE (write recovery).
    - ``t_wtr``: end of write burst to READ.
    - ``t_rtp``: READ to PRECHARGE.
    - ``t_faw``: four-activate window (rolling limit on ACTs per rank).
    - ``t_rfc``: REFRESH duration.
    - ``t_refi``: average refresh interval.
    """

    cl: int
    cwl: int
    t_rcd: int
    t_rp: int
    t_ras: int
    t_rc: int
    t_bl: int
    t_ccd: int
    t_rrd: int
    t_wr: int
    t_wtr: int
    t_rtp: int
    t_faw: int
    t_rfc: int
    t_refi: int

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) <= 0:
                raise ConfigError(f"timing parameter {f.name} must be positive")
        if self.t_rc < self.t_ras + self.t_rp:
            raise ConfigError("t_rc must cover t_ras + t_rp")

    def scaled(self, cpu_cycles_per_bus_cycle: int) -> "DRAMTiming":
        """Return this timing set converted to CPU cycles."""
        if cpu_cycles_per_bus_cycle < 1:
            raise ConfigError("cpu_cycles_per_bus_cycle must be >= 1")
        scaled_values = {
            f.name: getattr(self, f.name) * cpu_cycles_per_bus_cycle
            for f in fields(self)
        }
        return replace(self, **scaled_values)

    @property
    def row_miss_penalty(self) -> int:
        """PRE + ACT + READ-to-data: latency of a row-buffer miss."""
        return self.t_rp + self.t_rcd + self.cl

    @property
    def row_hit_latency(self) -> int:
        """READ-to-data latency when the row is already open."""
        return self.cl

    def t_mra(self, num_rows: int) -> int:
        """Latency of a multi-row activation over ``num_rows`` rows.

        Derived from the stock constraints (docs/INDRAM.md): the rows
        are raised back-to-back at the inter-ACT spacing (``t_rrd``
        apart), charge sharing + sensing must still satisfy ``t_ras``
        from the *first* wordline, and the bank precharges afterwards
        so the command is atomic: ``t_ras + (k-1)*t_rrd + t_rp``.
        """
        if num_rows < 2 or num_rows > 3:
            raise ConfigError(
                f"MRA spans 2-3 rows, got {num_rows}")
        return self.t_ras + (num_rows - 1) * self.t_rrd + self.t_rp

    def t_shift(self, stages: int) -> int:
        """Latency of an in-array shift taking ``stages`` barrel stages.

        A shift by ``n`` runs ``bit_length(n)`` barrel-shifter stages,
        each paced like a column command (``t_ccd``), inside one
        open/close envelope: ``t_rcd + stages*t_ccd + t_rp``.
        """
        if stages < 1:
            raise ConfigError(
                f"SHIFT needs at least one barrel stage, got {stages}")
        return self.t_rcd + stages * self.t_ccd + self.t_rp


def ddr3_1600() -> DRAMTiming:
    """DDR3-1600 (11-11-11), in 800 MHz bus cycles. Used in Table 1."""
    return DRAMTiming(
        cl=11,
        cwl=8,
        t_rcd=11,
        t_rp=11,
        t_ras=28,
        t_rc=39,
        t_bl=4,
        t_ccd=4,
        t_rrd=5,
        t_wr=12,
        t_wtr=6,
        t_rtp=6,
        t_faw=24,
        t_rfc=208,
        t_refi=6240,
    )


def ddr4_2400() -> DRAMTiming:
    """DDR4-2400 (17-17-17), in 1200 MHz bus cycles (sensitivity option)."""
    return DRAMTiming(
        cl=17,
        cwl=12,
        t_rcd=17,
        t_rp=17,
        t_ras=39,
        t_rc=56,
        t_bl=4,
        t_ccd=4,
        t_rrd=6,
        t_wr=18,
        t_wtr=9,
        t_rtp=9,
        t_faw=26,
        t_rfc=313,
        t_refi=9360,
    )


#: CPU cycles per memory bus cycle for the paper's configuration:
#: 4 GHz core, 800 MHz DDR3-1600 bus.
DEFAULT_CPU_PER_BUS = 5
