"""Energy models: DRAMPower-style DRAM + McPAT-style processor."""

from repro.energy.cpu_power import CPUEnergy, CPUPowerParams, cpu_energy
from repro.energy.dram_power import (
    CommandEnergies,
    DDRCurrents,
    DRAMEnergy,
    ddr3_1600_currents,
    derive_command_energies,
    dram_energy,
)
from repro.energy.model import EnergyBreakdown, system_energy

__all__ = [
    "CPUEnergy",
    "CPUPowerParams",
    "CommandEnergies",
    "DDRCurrents",
    "DRAMEnergy",
    "EnergyBreakdown",
    "cpu_energy",
    "ddr3_1600_currents",
    "derive_command_energies",
    "dram_energy",
    "system_energy",
]
