"""McPAT-style processor energy model.

The paper estimates processor energy with McPAT. McPAT's output for a
fixed core configuration decomposes into static power (leakage + clock,
proportional to runtime) and per-event dynamic energy (instructions and
cache accesses). We use that same linear decomposition with constants
in the range McPAT reports for a small in-order x86 core at 4 GHz.

As with the DRAM model, absolute joules are approximate; inter-
mechanism *ratios* (Figure 12b) are driven by runtime and access
counts, which the simulator measures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUPowerParams:
    """Linear energy coefficients for the core + cache hierarchy."""

    static_w_per_core: float = 1.2
    instruction_nj: float = 0.15
    l1_access_nj: float = 0.10
    l2_access_nj: float = 0.60


@dataclass
class CPUEnergy:
    """Processor-side energy tally for one run, in millijoules."""

    static_mj: float
    dynamic_mj: float

    @property
    def total_mj(self) -> float:
        return self.static_mj + self.dynamic_mj


def cpu_energy(
    runtime_cycles: int,
    instructions: int,
    l1_accesses: int,
    l2_accesses: int,
    cores: int = 1,
    cpu_ghz: float = 4.0,
    params: CPUPowerParams | None = None,
) -> CPUEnergy:
    """Energy for one run from runtime and event counts."""
    if params is None:
        params = CPUPowerParams()
    runtime_s = runtime_cycles / (cpu_ghz * 1e9)
    static_mj = params.static_w_per_core * cores * runtime_s * 1e3
    dynamic_nj = (
        instructions * params.instruction_nj
        + l1_accesses * params.l1_access_nj
        + l2_accesses * params.l2_access_nj
    )
    return CPUEnergy(static_mj=static_mj, dynamic_mj=dynamic_nj * 1e-6)
