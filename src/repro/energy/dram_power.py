"""DRAMPower-style energy model for the DRAM module.

The paper estimates DRAM energy with DRAMPower [Chandrasekar+], which
derives per-command energies from JEDEC IDD current profiles. We do the
same: each command's incremental energy over background is computed
from datasheet currents for a DDR3-1600 4 Gb x8 device, multiplied by
the number of chips in the rank; background power accrues with time.

Absolute joules are approximate (we are not calibrating to a specific
vendor die); what the reproduction relies on — and what the paper
reports — are *ratios* between mechanisms, which are dominated by
command counts and runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DRAMTiming


@dataclass(frozen=True)
class DDRCurrents:
    """JEDEC IDD profile (milliamps) and supply voltage (volts)."""

    vdd: float = 1.5
    idd0: float = 55.0  # one-bank ACT-PRE
    idd2n: float = 32.0  # precharged standby
    idd3n: float = 38.0  # active standby
    idd4r: float = 157.0  # burst read
    idd4w: float = 118.0  # burst write
    idd5: float = 155.0  # refresh


def ddr3_1600_currents() -> DDRCurrents:
    """Typical DDR3-1600 4Gb x8 profile."""
    return DDRCurrents()


#: Fraction of an ACT/PRE pair's energy spent in the array (wordline
#: drive + sensing + restore) as opposed to the bank periphery; the
#: array share is what scales with simultaneously raised rows in a
#: multi-row activation. 0.7 follows the usual DRAMPower-style split.
MRA_ARRAY_FRACTION = 0.7


@dataclass(frozen=True)
class CommandEnergies:
    """Per-rank energy per command, in nanojoules."""

    activate_nj: float  # ACT + implied PRE pair
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_mw: float  # average standby power for the rank
    #: In-DRAM compute (docs/INDRAM.md): a k-row MRA costs the array
    #: fraction of an ACT/PRE pair per raised row plus one periphery
    #: share; a SHIFT costs one open/close envelope plus a per-stage
    #: column-cadence term. Defaults keep older pickled/derived
    #: profiles constructible.
    mra2_nj: float = 0.0
    mra3_nj: float = 0.0
    shift_stage_nj: float = 0.0

    def render(self) -> str:
        return (
            f"ACT/PRE {self.activate_nj:.2f} nJ, RD {self.read_nj:.2f} nJ, "
            f"WR {self.write_nj:.2f} nJ, REF {self.refresh_nj:.1f} nJ, "
            f"MRA2 {self.mra2_nj:.2f} nJ, MRA3 {self.mra3_nj:.2f} nJ, "
            f"SHIFT/stage {self.shift_stage_nj:.2f} nJ, "
            f"background {self.background_mw:.0f} mW"
        )


def derive_command_energies(
    currents: DDRCurrents,
    timing_bus_cycles: DRAMTiming,
    bus_ns: float = 1.25,
    chips: int = 8,
    io_nj_per_burst: float = 4.0,
) -> CommandEnergies:
    """Translate an IDD profile into per-command energies.

    Follows the standard DRAMPower decomposition: a command's energy is
    (command current - standby current) * duration * VDD, per chip.
    """
    vdd = currents.vdd

    def ma_ns_to_nj(milliamps: float, nanoseconds: float) -> float:
        return milliamps * 1e-3 * nanoseconds * vdd * chips

    t_rc_ns = timing_bus_cycles.t_rc * bus_ns
    t_bl_ns = timing_bus_cycles.t_bl * bus_ns
    t_rfc_ns = timing_bus_cycles.t_rfc * bus_ns

    activate = ma_ns_to_nj(currents.idd0 - currents.idd3n, t_rc_ns)
    read = ma_ns_to_nj(currents.idd4r - currents.idd3n, t_bl_ns) + io_nj_per_burst
    write = ma_ns_to_nj(currents.idd4w - currents.idd3n, t_bl_ns) + io_nj_per_burst
    refresh = ma_ns_to_nj(currents.idd5 - currents.idd2n, t_rfc_ns)
    # Background: between precharged and active standby; use the mean.
    standby_ma = (currents.idd2n + currents.idd3n) / 2
    background_mw = standby_ma * vdd * chips

    # In-DRAM compute. Split the ACT/PRE energy into an array fraction
    # (wordline + sensing, scales with the number of simultaneously
    # raised rows) and a periphery fraction (decode + I/O gating, paid
    # once per command); MRA over k rows then costs
    # ``activate * (ARRAY_FRACTION*k + (1 - ARRAY_FRACTION))``. A shift
    # stage moves a row-buffer's worth of data through the in-array
    # shifter at column cadence: the read-burst array current over
    # t_ccd, with no I/O term (data never leaves the chip).
    mra2 = activate * (MRA_ARRAY_FRACTION * 2 + (1 - MRA_ARRAY_FRACTION))
    mra3 = activate * (MRA_ARRAY_FRACTION * 3 + (1 - MRA_ARRAY_FRACTION))
    t_ccd_ns = timing_bus_cycles.t_ccd * bus_ns
    shift_stage = ma_ns_to_nj(currents.idd4r - currents.idd3n, t_ccd_ns)

    return CommandEnergies(
        activate_nj=activate,
        read_nj=read,
        write_nj=write,
        refresh_nj=refresh,
        background_mw=background_mw,
        mra2_nj=mra2,
        mra3_nj=mra3,
        shift_stage_nj=shift_stage,
    )


@dataclass
class DRAMEnergy:
    """Energy tally for one run, in millijoules."""

    dynamic_mj: float
    background_mj: float

    @property
    def total_mj(self) -> float:
        return self.dynamic_mj + self.background_mj


def dram_energy(
    command_counts: dict[str, int],
    runtime_cycles: int,
    cpu_ghz: float = 4.0,
    energies: CommandEnergies | None = None,
) -> DRAMEnergy:
    """Energy for a run given controller command counts and runtime.

    ``command_counts`` uses the controller's counter names
    (``cmd_ACT``, ``cmd_RD``, ``cmd_WR``, ``cmd_REF``), plus the PIM
    executor's in-DRAM compute counters: ``cmd_MRA2``/``cmd_MRA3``
    (2- and 3-row activations), ``cmd_SHIFT`` (each paying one
    open/close envelope, counted at ``activate_nj``) and
    ``shift_stages`` (total barrel stages across all shifts).
    """
    if energies is None:
        from repro.dram.timing import ddr3_1600

        energies = derive_command_energies(ddr3_1600_currents(), ddr3_1600())
    dynamic_nj = (
        command_counts.get("cmd_ACT", 0) * energies.activate_nj
        + command_counts.get("cmd_RD", 0) * energies.read_nj
        + command_counts.get("cmd_WR", 0) * energies.write_nj
        + command_counts.get("cmd_REF", 0) * energies.refresh_nj
        + command_counts.get("cmd_MRA2", 0) * energies.mra2_nj
        + command_counts.get("cmd_MRA3", 0) * energies.mra3_nj
        + command_counts.get("cmd_SHIFT", 0) * energies.activate_nj
        + command_counts.get("shift_stages", 0) * energies.shift_stage_nj
    )
    runtime_s = runtime_cycles / (cpu_ghz * 1e9)
    background_mj = energies.background_mw * runtime_s  # mW * s == mJ
    return DRAMEnergy(dynamic_mj=dynamic_nj * 1e-6, background_mj=background_mj)
