"""Combined system energy accounting (processor + DRAM).

Ties the McPAT-style CPU model and the DRAMPower-style DRAM model
together into one :class:`EnergyBreakdown` per run, mirroring how the
paper reports Figure 12b ("processor and DRAM energy consumption").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cpu_power import CPUEnergy, CPUPowerParams, cpu_energy
from repro.energy.dram_power import CommandEnergies, DRAMEnergy, dram_energy


@dataclass
class EnergyBreakdown:
    """Full-system energy for one run, in millijoules."""

    cpu: CPUEnergy
    dram: DRAMEnergy

    @property
    def total_mj(self) -> float:
        return self.cpu.total_mj + self.dram.total_mj

    def render(self) -> str:
        return (
            f"total {self.total_mj:.3f} mJ "
            f"(cpu static {self.cpu.static_mj:.3f} + cpu dynamic "
            f"{self.cpu.dynamic_mj:.3f} + dram dynamic {self.dram.dynamic_mj:.3f}"
            f" + dram background {self.dram.background_mj:.3f})"
        )


def system_energy(
    runtime_cycles: int,
    instructions: int,
    l1_accesses: int,
    l2_accesses: int,
    command_counts: dict[str, int],
    cores: int = 1,
    cpu_ghz: float = 4.0,
    cpu_params: CPUPowerParams | None = None,
    dram_energies: CommandEnergies | None = None,
) -> EnergyBreakdown:
    """Compute the full-system energy breakdown for one run."""
    cpu = cpu_energy(
        runtime_cycles, instructions, l1_accesses, l2_accesses,
        cores=cores, cpu_ghz=cpu_ghz, params=cpu_params,
    )
    dram = dram_energy(
        command_counts, runtime_cycles, cpu_ghz=cpu_ghz, energies=dram_energies
    )
    return EnergyBreakdown(cpu=cpu, dram=dram)
