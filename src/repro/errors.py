"""Exception hierarchy for the GS-DRAM reproduction.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors with a single
``except`` clause without swallowing genuine programming errors
(``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AddressError(ReproError):
    """A physical or DRAM-geometry address is out of range or misaligned."""


class PatternError(ReproError):
    """A pattern ID is invalid for the configured GS-DRAM geometry."""


class ProtocolError(ReproError):
    """A DRAM command was issued in an illegal bank state.

    The bank state machines in :mod:`repro.dram.bank` enforce the legal
    command sequences (e.g. a ``READ`` requires an open row); violating
    them indicates a controller bug, and is reported with this error
    rather than silently producing wrong timing.
    """


class CoherenceError(ReproError):
    """The pattern-overlap coherence protocol was violated."""


class AllocationError(ReproError):
    """``pattmalloc`` could not satisfy an allocation request."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload/query specification is invalid for the given schema."""
