"""Exception hierarchy for the GS-DRAM reproduction.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors with a single
``except`` clause without swallowing genuine programming errors
(``TypeError``, ``KeyError``, ...).

Every error can carry *structured context* — keyword arguments such as
``cycle``, ``core``, ``address``, and ``pattern`` — preserved on the
exception's ``context`` dict and appended to its string rendering. The
differential checker (:mod:`repro.check`) relies on this to report
*where* two machines diverged, and raise sites throughout the simulator
attach whatever coordinates they know.
"""

from __future__ import annotations

from typing import Any

#: Context keys rendered as hexadecimal (they are byte addresses).
_HEX_KEYS = frozenset({"address", "line_address", "paddr", "pc", "base"})


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library.

    ``ReproError("msg", cycle=12, core=0, address=0x40)`` renders as
    ``msg [core=0, cycle=12, address=0x40]``; the raw values stay
    available on ``error.context`` for programmatic inspection. ``None``
    values are dropped so call sites can pass optional coordinates
    unconditionally.
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        self.message = message
        self.context: dict[str, Any] = {
            key: value for key, value in context.items() if value is not None
        }
        super().__init__(message)

    def _format_value(self, key: str, value: Any) -> str:
        if key in _HEX_KEYS and isinstance(value, int):
            return f"{value:#x}"
        return str(value)

    def __str__(self) -> str:
        if not self.context:
            return self.message
        details = ", ".join(
            f"{key}={self._format_value(key, value)}"
            for key, value in self.context.items()
        )
        return f"{self.message} [{details}]"


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AddressError(ReproError):
    """A physical or DRAM-geometry address is out of range or misaligned."""


class PatternError(ReproError):
    """A pattern ID is invalid for the configured GS-DRAM geometry."""


class ProtocolError(ReproError):
    """A DRAM command was issued in an illegal bank state.

    The bank state machines in :mod:`repro.dram.bank` enforce the legal
    command sequences (e.g. a ``READ`` requires an open row); violating
    them indicates a controller bug, and is reported with this error
    rather than silently producing wrong timing.
    """


class CoherenceError(ReproError):
    """The pattern-overlap coherence protocol was violated."""


class AllocationError(ReproError):
    """``pattmalloc`` could not satisfy an allocation request."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DivergenceError(SimulationError):
    """The timed machine diverged from the reference oracle.

    Raised (or collected) by :mod:`repro.check.differential` when the
    full system's architectural results differ from the flat functional
    model's. The context dict locates the divergence: ``cycle``,
    ``core``, ``address``, ``pattern``, and the two disagreeing values.
    """


class WorkloadError(ReproError):
    """A workload/query specification is invalid for the given schema."""
