"""GEMM application (paper Section 5.2)."""

from repro.gemm.autotune import (
    DEFAULT_TILES,
    GEMM_CACHE_OVERRIDES,
    GemmRun,
    best_gs,
    best_tiled,
    run_gs,
    run_naive,
    run_tiled,
)
from repro.gemm.kernels import gs_ops, naive_ops, tiled_ops
from repro.gemm.matrix import BLOCK, BlockedMatrix, DenseMatrix, random_matrix

__all__ = [
    "BLOCK",
    "BlockedMatrix",
    "DEFAULT_TILES",
    "DenseMatrix",
    "GEMM_CACHE_OVERRIDES",
    "GemmRun",
    "best_gs",
    "best_tiled",
    "gs_ops",
    "naive_ops",
    "random_matrix",
    "run_gs",
    "run_naive",
    "run_tiled",
    "tiled_ops",
]
