"""GEMM experiment drivers and the best-tiling search (Figure 13).

The paper compares GS-DRAM against the *best-performing tiled version*
("Best Tiling") and normalises both to a non-tiled baseline.
:func:`best_tiled` sweeps tile sizes and keeps the fastest.

Scale note: the paper runs n = 32..1024 against 32 KB L1 / 2 MB L2
caches. A pure-Python cycle-level model cannot execute n = 1024
(2 * n^3 = 2 G operations), so the default experiment scales the
caches down by the same factor as the matrices (4 KB L1 / 256 KB L2,
n = 16..96). The capacity *ratios* that produce the paper's curve —
B outgrowing L1, then L2 pressure — are preserved; this substitution
is documented in DESIGN.md and EXPERIMENTS.md.

Every driver takes ``mode``: ``"event"`` executes the kernel on the
cycle-level :class:`System`; ``"fast"`` replays the closed-form address
stream through the vectorized engine (:mod:`repro.vec.gemm`) — same
cache/DRAM stats, ``cycles == 0``. The equivalence battery
(``repro check``) holds the two paths stat-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.gemm.kernels import gs_ops, naive_ops, tiled_ops
from repro.gemm.matrix import BlockedMatrix, DenseMatrix, random_matrix
from repro.sim.config import plain_dram_config, table1_config
from repro.sim.results import RunResult, StageTimer
from repro.sim.system import System
from repro.vec.shim import component_snapshot

#: Cache scaling used by the default GEMM experiments (see module doc).
GEMM_CACHE_OVERRIDES = {"l1_size": 4 * 1024, "l2_size": 256 * 1024}

#: Tile sizes the autotuner sweeps (all multiples of the 8x8 block).
DEFAULT_TILES = (8, 16, 32)


@dataclass
class GemmRun:
    """Outcome of one GEMM kernel execution."""

    kernel: str
    n: int
    tile: int | None
    result: RunResult
    verified: bool
    #: Per-component stat dicts for the equivalence battery; None when
    #: not captured.
    component_stats: dict | None = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def work_proxy(self) -> int:
        """Ordering key that works in both modes.

        Event runs are ranked by cycles; fast runs (``cycles == 0``)
        fall back to DRAM traffic, which tracks the same cache-pressure
        curve the tile sweep is probing.
        """
        return self.cycles or self.result.memory_accesses


def _check_mode(mode: str) -> None:
    if mode not in ("event", "fast"):
        raise ConfigError(f"unknown run mode {mode!r}")


def _verify(system: System, c: DenseMatrix, result: np.ndarray,
            oracle: np.ndarray) -> bool:
    return bool(np.array_equal(result, oracle) and np.array_equal(c.read(), oracle))


def run_naive(n: int, seed: int = 3, overrides: dict | None = None,
              mode: str = "event") -> GemmRun:
    """Non-tiled scalar GEMM on commodity DRAM."""
    _check_mode(mode)
    if mode == "fast":
        from repro.vec.gemm import fast_naive

        return fast_naive(n, seed, overrides)
    timer = StageTimer()
    with timer.stage("generate"):
        a_vals, b_vals = random_matrix(n, seed), random_matrix(n, seed + 1)
    with timer.stage("setup"):
        config = plain_dram_config(**(overrides or GEMM_CACHE_OVERRIDES))
        system = System(config)
        a = DenseMatrix(system, n)
        b = DenseMatrix(system, n)
        c = DenseMatrix(system, n)
        a.load(a_vals)
        b.load(b_vals)
    result = np.zeros((n, n), dtype=np.int64)
    with timer.stage("run"):
        run = system.run([naive_ops(a, b, c, result)])
    # Snapshot before _verify: c.read() drains dirty lines and would
    # perturb the writeback/DBI counters the battery compares.
    stats = component_snapshot(system)
    with timer.stage("verify"):
        oracle = a_vals @ b_vals
        verified = _verify(system, c, result, oracle)
    timer.attach(run)
    return GemmRun("Non-tiled", n, None, run, verified, stats)


def run_tiled(n: int, tile: int, seed: int = 3,
              overrides: dict | None = None, mode: str = "event") -> GemmRun:
    """Tiled SIMD GEMM with software gathers, on commodity DRAM."""
    _check_mode(mode)
    if mode == "fast":
        from repro.vec.gemm import fast_tiled

        return fast_tiled(n, tile, seed, overrides)
    timer = StageTimer()
    with timer.stage("generate"):
        a_vals, b_vals = random_matrix(n, seed), random_matrix(n, seed + 1)
    with timer.stage("setup"):
        config = plain_dram_config(**(overrides or GEMM_CACHE_OVERRIDES))
        system = System(config)
        a = DenseMatrix(system, n)
        b = BlockedMatrix(system, n, gs=False)
        c = DenseMatrix(system, n)
        a.load(a_vals)
        b.load(b_vals)
    result = np.zeros((n, n), dtype=np.int64)
    with timer.stage("run"):
        run = system.run([tiled_ops(a, b, c, result, tile)])
    stats = component_snapshot(system)
    with timer.stage("verify"):
        oracle = a_vals @ b_vals
        verified = _verify(system, c, result, oracle)
    timer.attach(run)
    return GemmRun("Tiled", n, tile, run, verified, stats)


def run_gs(n: int, tile: int, seed: int = 3,
           overrides: dict | None = None, mode: str = "event") -> GemmRun:
    """Tiled SIMD GEMM with GS-DRAM gathers."""
    _check_mode(mode)
    if mode == "fast":
        from repro.vec.gemm import fast_gs

        return fast_gs(n, tile, seed, overrides)
    timer = StageTimer()
    with timer.stage("generate"):
        a_vals, b_vals = random_matrix(n, seed), random_matrix(n, seed + 1)
    with timer.stage("setup"):
        config = table1_config(**(overrides or GEMM_CACHE_OVERRIDES))
        system = System(config)
        a = DenseMatrix(system, n)
        b = BlockedMatrix(system, n, gs=True)
        c = DenseMatrix(system, n)
        a.load(a_vals)
        b.load(b_vals)
    result = np.zeros((n, n), dtype=np.int64)
    with timer.stage("run"):
        run = system.run([gs_ops(a, b, c, result, tile)])
    stats = component_snapshot(system)
    with timer.stage("verify"):
        oracle = a_vals @ b_vals
        verified = _verify(system, c, result, oracle)
    timer.attach(run)
    return GemmRun("GS-DRAM", n, tile, run, verified, stats)


def best_tiled(n: int, tiles: tuple[int, ...] = DEFAULT_TILES, seed: int = 3,
               overrides: dict | None = None, mode: str = "event") -> GemmRun:
    """The paper's "Best Tiling": fastest tile size for this n."""
    candidates = [
        run_tiled(n, tile, seed, overrides, mode=mode)
        for tile in tiles
        if n % tile == 0
    ]
    best = min(candidates, key=lambda run: run.work_proxy)
    return GemmRun("Best Tiling", n, best.tile, best.result, best.verified,
                   best.component_stats)


def best_gs(n: int, tiles: tuple[int, ...] = DEFAULT_TILES, seed: int = 3,
            overrides: dict | None = None, mode: str = "event") -> GemmRun:
    """GS-DRAM at its best tile size (same sweep as the baseline)."""
    candidates = [
        run_gs(n, tile, seed, overrides, mode=mode)
        for tile in tiles
        if n % tile == 0
    ]
    return min(candidates, key=lambda run: run.work_proxy)
