"""GEMM kernels as instruction streams (paper Section 5.2).

Three kernels compute C = A x B over int64 matrices:

- :func:`naive_ops` — non-tiled scalar triple loop; B is accessed in
  column-major order with terrible spatial locality (the paper's
  normalisation baseline).
- :func:`tiled_ops` — blocked/tiled with SIMD dot products. Because B's
  column values sit in different cache lines, each SIMD multiply-add
  needs a *software gather*: W scalar loads plus a pack instruction to
  assemble the SIMD register (exactly the overhead the paper calls
  out).
- :func:`gs_ops` — the same tiling, but B lives in GS-DRAM with
  pattern-7 gathers: one ``pattload`` (16 bytes of a gathered line)
  replaces the W scalar loads + pack, "seamlessly enabling SIMD".

SIMD registers are 16 bytes (two int64 lanes), matching the paper's
``xmm0`` pattload target.

The generators accumulate real loaded values, so every kernel's output
is verified against ``A @ B``.
"""

from __future__ import annotations

import struct
from typing import Iterator

import numpy as np

from repro.cpu.isa import Compute, Load, Store, pattload
from repro.errors import WorkloadError
from repro.gemm.matrix import BLOCK, BlockedMatrix, DenseMatrix

#: SIMD lanes per register (16-byte xmm / 8-byte int64).
W = 2
#: Loop bookkeeping cost charged once per (i, j) accumulator, cycles.
LOOP_OVERHEAD = 2

_PC_NAIVE_A, _PC_NAIVE_B = 0x4000, 0x4001
_PC_TILED_A, _PC_TILED_B0, _PC_TILED_B1 = 0x4100, 0x4101, 0x4102
_PC_GS_A, _PC_GS_B = 0x4200, 0x4201


def _i64(data: bytes) -> int:
    return struct.unpack("<q", data)[0]


def _i64x2(data: bytes) -> tuple[int, int]:
    return struct.unpack("<2q", data)


def naive_ops(
    a: DenseMatrix, b: DenseMatrix, c: DenseMatrix, result: np.ndarray
) -> Iterator:
    """Non-tiled scalar GEMM; fills ``result`` with the computed product."""
    n = a.n
    a_reg = [0]
    b_reg = [0]

    def set_a(data: bytes) -> None:
        a_reg[0] = _i64(data)

    def set_b(data: bytes) -> None:
        b_reg[0] = _i64(data)

    for i in range(n):
        for j in range(n):
            acc = 0
            yield Compute(LOOP_OVERHEAD)
            for k in range(n):
                yield Load(a.address(i, k), pc=_PC_NAIVE_A, on_value=set_a)
                yield Load(b.address(k, j), pc=_PC_NAIVE_B, on_value=set_b)
                yield Compute(1)  # multiply-accumulate
                acc += a_reg[0] * b_reg[0]
            result[i, j] = acc
            yield Store(c.address(i, j), struct.pack("<q", acc))


def _check_tile(n: int, tile: int) -> None:
    if tile % BLOCK != 0 or n % tile != 0:
        raise WorkloadError(
            f"tile {tile} must be a multiple of {BLOCK} and divide n={n}"
        )


def tiled_ops(
    a: DenseMatrix,
    b: BlockedMatrix,
    c: DenseMatrix,
    result: np.ndarray,
    tile: int,
) -> Iterator:
    """Tiled SIMD GEMM with software gathers for B's columns."""
    n = a.n
    _check_tile(n, tile)
    a_reg = [0, 0]
    b_reg = [0, 0]

    def set_a(data: bytes) -> None:
        a_reg[0], a_reg[1] = _i64x2(data)

    def set_b0(data: bytes) -> None:
        b_reg[0] = _i64(data)

    def set_b1(data: bytes) -> None:
        b_reg[1] = _i64(data)

    for it in range(0, n, tile):
        for jt in range(0, n, tile):
            for kt in range(0, n, tile):
                first = kt == 0
                for i in range(it, it + tile):
                    for j in range(jt, jt + tile):
                        acc = 0 if first else int(result[i, j])
                        if not first:
                            # Reload the partial sum written by the
                            # previous kt pass.
                            yield Load(c.address(i, j), pc=_PC_TILED_A + 8)
                        yield Compute(LOOP_OVERHEAD)
                        for k in range(kt, kt + tile, W):
                            # xmm load of A[i, k..k+1] (contiguous).
                            yield Load(a.address(i, k), size=16,
                                       pc=_PC_TILED_A, on_value=set_a)
                            # Software gather: two scalar loads + pack.
                            yield Load(b.address(k, j),
                                       pc=_PC_TILED_B0, on_value=set_b0)
                            yield Load(b.address(k + 1, j),
                                       pc=_PC_TILED_B1, on_value=set_b1)
                            yield Compute(1)  # pack into the SIMD register
                            yield Compute(1)  # SIMD multiply-accumulate
                            acc += a_reg[0] * b_reg[0] + a_reg[1] * b_reg[1]
                        result[i, j] = acc
                        yield Store(c.address(i, j), struct.pack("<q", acc))


def gs_ops(
    a: DenseMatrix,
    b: BlockedMatrix,
    c: DenseMatrix,
    result: np.ndarray,
    tile: int,
) -> Iterator:
    """Tiled SIMD GEMM with GS-DRAM gathers for B's columns.

    B's 8x8 blocks are read column-wise with pattern 7: one gathered
    cache line holds a whole block column, and each ``pattload`` brings
    two of its values straight into the SIMD register — no software
    gather.
    """
    n = a.n
    _check_tile(n, tile)
    if not b.gs:
        raise WorkloadError("gs_ops needs a GS-allocated blocked matrix")
    a_reg = [0, 0]
    b_reg = [0, 0]

    def set_a(data: bytes) -> None:
        a_reg[0], a_reg[1] = _i64x2(data)

    def set_b(data: bytes) -> None:
        b_reg[0], b_reg[1] = _i64x2(data)

    pattern = b.pattern
    for it in range(0, n, tile):
        for jt in range(0, n, tile):
            for kt in range(0, n, tile):
                first = kt == 0
                for i in range(it, it + tile):
                    for j in range(jt, jt + tile):
                        acc = 0 if first else int(result[i, j])
                        if not first:
                            yield Load(c.address(i, j), pc=_PC_GS_A + 8)
                        yield Compute(LOOP_OVERHEAD)
                        block_col, col_in_block = divmod(j, BLOCK)
                        for kb in range(kt, kt + tile, BLOCK):
                            block_row = kb // BLOCK
                            for pos in range(0, BLOCK, W):
                                yield Load(a.address(i, kb + pos), size=16,
                                           pc=_PC_GS_A, on_value=set_a)
                                yield pattload(
                                    b.gather_address(block_row, block_col,
                                                     col_in_block, pos),
                                    pattern=pattern, size=16,
                                    pc=_PC_GS_B, on_value=set_b,
                                )
                                yield Compute(1)  # SIMD multiply-accumulate
                                acc += (a_reg[0] * b_reg[0]
                                        + a_reg[1] * b_reg[1])
                        result[i, j] = acc
                        yield Store(c.address(i, j), struct.pack("<q", acc))
