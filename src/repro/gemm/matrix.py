"""Matrices in simulated memory (paper Section 5.2).

Three layouts are used by the GEMM kernels:

- **row-major** — the naive layout for A, C, and the non-tiled B.
- **blocked** — B reorganised into contiguous row-major 8x8 blocks
  (512 bytes = 8 cache lines each). Tiled kernels copy-optimise into
  this layout; it is also what makes GS-DRAM gathers work: the column
  of an 8x8 block is exactly a stride-8 value pattern, i.e. pattern 7.
- **blocked + GS attributes** — the same blocked layout allocated with
  ``pattmalloc(shuffle=True, pattern=7)`` so each block column is one
  gathered cache line.

Values are int64 (small magnitudes), so functional answers are exact
and checked against a numpy oracle.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import WorkloadError
from repro.sim.system import System

#: Values per block edge: one gathered line covers one block column.
BLOCK = 8
#: Bytes per matrix element.
ELEM = 8


class DenseMatrix:
    """Row-major n x n matrix in simulated memory."""

    def __init__(self, system: System, n: int, shuffle: bool = False,
                 pattern: int = 0) -> None:
        if n % BLOCK != 0:
            raise WorkloadError(f"matrix size {n} must be a multiple of {BLOCK}")
        self.system = system
        self.n = n
        self.base = system.pattmalloc(n * n * ELEM, shuffle=shuffle, pattern=pattern)

    def address(self, row: int, col: int) -> int:
        return self.base + (row * self.n + col) * ELEM

    def load(self, values: np.ndarray) -> None:
        if values.shape != (self.n, self.n):
            raise WorkloadError(f"expected {self.n}x{self.n}, got {values.shape}")
        flat = values.astype("<i8").tobytes()
        self.system.mem_write(self.base, flat)

    def read(self) -> np.ndarray:
        raw = self.system.mem_read(self.base, self.n * self.n * ELEM)
        return np.frombuffer(raw, dtype="<i8").reshape(self.n, self.n).copy()


class BlockedMatrix:
    """n x n matrix stored as contiguous row-major 8x8 blocks.

    Block (bi, bj) occupies 8 consecutive cache lines; element
    (row, col) lives at block (row // 8, col // 8), position
    (row % 8, col % 8).
    """

    def __init__(self, system: System, n: int, gs: bool = False) -> None:
        if n % BLOCK != 0:
            raise WorkloadError(f"matrix size {n} must be a multiple of {BLOCK}")
        self.system = system
        self.n = n
        self.gs = gs
        self.blocks_per_side = n // BLOCK
        pattern = BLOCK - 1 if gs else 0
        self.base = system.pattmalloc(
            n * n * ELEM, shuffle=gs, pattern=pattern
        )
        self.pattern = pattern

    def _block_line(self, block_row: int, block_col: int) -> int:
        """Index of the block's first cache line within the matrix."""
        return (block_row * self.blocks_per_side + block_col) * BLOCK

    def address(self, row: int, col: int) -> int:
        """Element address in the blocked layout."""
        line = self._block_line(row // BLOCK, col // BLOCK) + (row % BLOCK)
        return self.base + line * BLOCK * ELEM + (col % BLOCK) * ELEM

    def gather_address(self, block_row: int, block_col: int, col_in_block: int,
                       position: int) -> int:
        """Address of the ``position``-th value of a block-column gather.

        The gathered cache line for issued column
        ``block_line + col_in_block`` (pattern 7) holds
        ``B[block_row*8 + 0..7][block_col*8 + col_in_block]`` in order.
        """
        if not self.gs:
            raise WorkloadError("gather addressing requires a GS-allocated matrix")
        line = self._block_line(block_row, block_col) + col_in_block
        return self.base + line * BLOCK * ELEM + position * ELEM

    def load(self, values: np.ndarray) -> None:
        if values.shape != (self.n, self.n):
            raise WorkloadError(f"expected {self.n}x{self.n}, got {values.shape}")
        nb = self.blocks_per_side
        # (n, n) -> (nb, BLOCK, nb, BLOCK) -> block-major order: one
        # reshape/transpose replaces the per-block copy loop.
        blocked = (
            values.reshape(nb, BLOCK, nb, BLOCK)
            .transpose(0, 2, 1, 3)
            .astype("<i8")
        )
        self.system.mem_write(self.base, blocked.tobytes())

    def read(self) -> np.ndarray:
        raw = self.system.mem_read(self.base, self.n * self.n * ELEM)
        nb = self.blocks_per_side
        return (
            np.frombuffer(raw, dtype="<i8")
            .reshape(nb, nb, BLOCK, BLOCK)
            .transpose(0, 2, 1, 3)
            .reshape(self.n, self.n)
            .copy()
        )


def random_matrix(n: int, seed: int, low: int = 0, high: int = 16) -> np.ndarray:
    """Small-magnitude random int64 matrix (products stay exact)."""
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=(n, n), dtype=np.int64)


def unpack_values(data: bytes) -> list[int]:
    """Decode a byte string as little-endian signed 64-bit values."""
    count = len(data) // ELEM
    return list(struct.unpack(f"<{count}q", data))
