"""Graph-processing application (paper Section 5.3)."""

from repro.graph.algorithms import (
    UNREACHED,
    bfs_ops,
    field_analytics_ops,
    initialise_records,
    vertex_update_ops,
)
from repro.graph.storage import (
    FIELD_DEGREE,
    FIELD_LABEL,
    FIELD_LEVEL,
    FIELD_VALUE,
    GraphStore,
)

__all__ = [
    "FIELD_DEGREE",
    "FIELD_LABEL",
    "FIELD_LEVEL",
    "FIELD_VALUE",
    "GraphStore",
    "UNREACHED",
    "bfs_ops",
    "field_analytics_ops",
    "initialise_records",
    "vertex_update_ops",
]
