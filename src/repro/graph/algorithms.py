"""Graph algorithms as instruction streams (paper Section 5.3).

Three kernels over a :class:`~repro.graph.storage.GraphStore`, covering
the two access-pattern families the paper contrasts:

- :func:`field_analytics_ops` — whole-graph field aggregation (degree
  sum, label histogram): pure field scans, where GS-DRAM's gathers cut
  line traffic 8x versus a record layout.
- :func:`bfs_ops` — breadth-first traversal writing the ``level``
  field: per-vertex record accesses (pattern 0) plus irregular edge
  reads; GS-DRAM neither helps nor hurts, matching the record layout.
- :func:`vertex_update_ops` — transactional touch of whole records.

Functional results are captured in plain Python structures so tests can
verify against networkx.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterator

from repro.cpu.isa import Compute
from repro.graph.storage import (
    FIELD_DEGREE,
    FIELD_LABEL,
    FIELD_LEVEL,
    FIELD_VALUE,
    FIELDS,
    GraphStore,
)

#: Level value meaning "not reached" in BFS.
UNREACHED = (1 << 40) - 1


def initialise_records(store: GraphStore, labels: list[int]) -> None:
    """Functionally populate vertex records (value, degree, level, label)."""
    records = []
    for vertex in range(store.num_vertices):
        degree = store.offsets[vertex + 1] - store.offsets[vertex]
        record = [0] * FIELDS
        record[FIELD_VALUE] = vertex
        record[FIELD_DEGREE] = degree
        record[FIELD_LEVEL] = UNREACHED
        record[FIELD_LABEL] = labels[vertex]
        records.append(record)
    store.load_records(records)


def field_analytics_ops(store: GraphStore, result: dict) -> Iterator:
    """Degree sum + label histogram via field scans.

    Fills ``result['degree_sum']`` and ``result['label_counts']``.
    """
    result["degree_sum"] = 0
    result["label_counts"] = Counter()

    def add_degree(value: int) -> None:
        result["degree_sum"] += value

    def add_label(value: int) -> None:
        result["label_counts"][value] += 1

    yield from store.scan_field_ops(FIELD_DEGREE, add_degree)
    yield from store.scan_field_ops(FIELD_LABEL, add_label)


def bfs_ops(store: GraphStore, source: int, levels: dict[int, int]) -> Iterator:
    """Breadth-first search from ``source``; stores levels into memory
    (the ``level`` field) and mirrors them into ``levels``."""
    seen = {source}
    levels[source] = 0
    yield store.store_field_op(source, FIELD_LEVEL, 0)
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        level = levels[vertex]
        neighbours: list[int] = []
        yield from store.edge_ops(vertex, neighbours.append)
        yield Compute(2)  # queue bookkeeping
        for target in neighbours:
            if target in seen:
                continue
            seen.add(target)
            levels[target] = level + 1
            yield store.store_field_op(target, FIELD_LEVEL, level + 1)
            frontier.append(target)


def vertex_update_ops(store: GraphStore, vertices: list[int],
                      delta: int) -> Iterator:
    """Read-modify-write the ``value`` field of selected vertices.

    A per-vertex (transactional) access pattern: each update touches one
    record cache line with pattern 0.
    """
    for vertex in vertices:
        box: list[int] = []
        yield store.load_field_op(vertex, FIELD_VALUE, box.append)
        yield Compute(1)
        # The generator resumes after the load's value has arrived, so
        # the read-modify-write below uses the freshly loaded value.
        yield store.store_field_op(vertex, FIELD_VALUE, box[0] + delta)
