"""Graph storage over GS-DRAM (paper Section 5.3).

The paper's graph-processing use case: "operations that update
individual nodes in the graph have different access patterns than
those that traverse the graph". We model that with a vertex table and
a CSR edge structure:

- **vertex table** — one 64-byte record per vertex (eight 8-byte
  fields), stored row-store style with ``pattmalloc(shuffle, pattern
  7)``. Per-vertex operations (updates, BFS bookkeeping) touch whole
  records with pattern 0; whole-graph *field* analytics (degree sums,
  label counts, rank aggregation) gather one field of eight vertices
  per cache line with pattern 7.
- **CSR edges** — offsets + targets arrays, plain allocation (edge
  traversal is inherently irregular; GS-DRAM neither helps nor hurts).

Vertex field assignments used by the algorithms:
``0``: value/rank, ``1``: out-degree, ``2``: level (BFS), ``3``: label,
``4..7``: scratch.
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

from repro.cpu.isa import Compute, Load, Store, pattload
from repro.errors import WorkloadError
from repro.sim.system import System

#: Vertex-record field indices.
FIELD_VALUE = 0
FIELD_DEGREE = 1
FIELD_LEVEL = 2
FIELD_LABEL = 3

FIELDS = 8
RECORD_BYTES = FIELDS * 8

_PC_VERTEX = 0x6000
_PC_SCAN_LEAD = 0x6100
_PC_SCAN_BODY = 0x6180
_PC_EDGE = 0x6200


class GraphStore:
    """A directed graph in simulated memory (vertex table + CSR)."""

    def __init__(self, system: System, num_vertices: int,
                 edges: Sequence[tuple[int, int]], gs: bool = True) -> None:
        if num_vertices % FIELDS != 0:
            raise WorkloadError(
                f"vertex count must be a multiple of {FIELDS} "
                "(gather group size); pad the graph"
            )
        self.system = system
        self.num_vertices = num_vertices
        self.gs = gs and system.module.supports_patterns
        self.pattern = FIELDS - 1 if self.gs else 0
        self.vertex_base = (
            system.pattmalloc(num_vertices * RECORD_BYTES, shuffle=True,
                              pattern=self.pattern)
            if self.gs
            else system.malloc(num_vertices * RECORD_BYTES)
        )

        # Build CSR.
        adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
        for src, dst in edges:
            if not (0 <= src < num_vertices and 0 <= dst < num_vertices):
                raise WorkloadError(f"edge ({src}, {dst}) out of range")
            adjacency[src].append(dst)
        self.offsets = [0]
        targets: list[int] = []
        for neighbours in adjacency:
            targets.extend(sorted(neighbours))
            self.offsets.append(len(targets))
        self.num_edges = len(targets)
        self.offsets_base = system.malloc(max(len(self.offsets) * 8, 8))
        self.targets_base = system.malloc(max(len(targets) * 8, 8))
        system.mem_write(
            self.offsets_base, struct.pack(f"<{len(self.offsets)}Q", *self.offsets)
        )
        if targets:
            system.mem_write(
                self.targets_base, struct.pack(f"<{len(targets)}Q", *targets)
            )
        self._adjacency = adjacency  # oracle-side view

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def field_address(self, vertex: int, field: int) -> int:
        return self.vertex_base + vertex * RECORD_BYTES + field * 8

    def gather_address(self, group_start: int, field: int, position: int) -> int:
        """Gathered-line address for field ``field`` of a vertex group."""
        line = group_start + field
        return self.vertex_base + line * RECORD_BYTES + position * 8

    # ------------------------------------------------------------------
    # Functional loading / inspection
    # ------------------------------------------------------------------
    def load_records(self, records: list[list[int]]) -> None:
        if len(records) != self.num_vertices:
            raise WorkloadError("record count mismatch")
        payload = b"".join(struct.pack(f"<{FIELDS}Q", *r) for r in records)
        self.system.mem_write(self.vertex_base, payload)

    def read_records(self) -> list[list[int]]:
        raw = self.system.mem_read(
            self.vertex_base, self.num_vertices * RECORD_BYTES
        )
        values = struct.unpack(f"<{self.num_vertices * FIELDS}Q", raw)
        return [
            list(values[v * FIELDS : (v + 1) * FIELDS])
            for v in range(self.num_vertices)
        ]

    def neighbours(self, vertex: int) -> list[int]:
        """Oracle-side adjacency (functional checks only)."""
        return sorted(self._adjacency[vertex])

    # ------------------------------------------------------------------
    # Instruction-stream building blocks
    # ------------------------------------------------------------------
    def load_field_op(self, vertex: int, field: int, on_value) -> Load:
        """Pattern-0 load of one field of one vertex."""
        sink = (lambda b: on_value(struct.unpack("<Q", b)[0])) if on_value else None
        return Load(self.field_address(vertex, field), pc=_PC_VERTEX + field,
                    on_value=sink)

    def store_field_op(self, vertex: int, field: int, value: int) -> Store:
        return Store(self.field_address(vertex, field),
                     struct.pack("<Q", value), pc=_PC_VERTEX + 32 + field)

    def scan_field_ops(self, field: int, on_value) -> Iterator:
        """Scan one field of every vertex.

        With GS storage: pattern-7 gathers, eight vertices per line.
        With plain storage: one record line per vertex.
        """
        sink = lambda b: on_value(struct.unpack("<Q", b)[0])
        if self.gs:
            for group in range(0, self.num_vertices, FIELDS):
                for position in range(FIELDS):
                    pc = (_PC_SCAN_LEAD if position == 0 else _PC_SCAN_BODY) + field
                    yield pattload(
                        self.gather_address(group, field, position),
                        pattern=self.pattern, pc=pc, on_value=sink,
                    )
                    yield Compute(1)
        else:
            for vertex in range(self.num_vertices):
                yield Load(self.field_address(vertex, field),
                           pc=_PC_SCAN_LEAD + field, on_value=sink)
                yield Compute(1)

    def edge_ops(self, vertex: int, on_target) -> Iterator:
        """Load the CSR target list of ``vertex``."""
        start, end = self.offsets[vertex], self.offsets[vertex + 1]
        sink = lambda b: on_target(struct.unpack("<Q", b)[0])
        for index in range(start, end):
            yield Load(self.targets_base + index * 8, pc=_PC_EDGE, on_value=sink)
