"""Graphics application (paper Section 5.3): pixel objects."""

from repro.graphics.image import (
    CH_A,
    CH_B,
    CH_G,
    CH_M,
    CH_R,
    CH_U,
    CH_V,
    CH_Z,
    CHANNELS,
    Framebuffer,
)

__all__ = [
    "CH_A",
    "CH_B",
    "CH_G",
    "CH_M",
    "CH_R",
    "CH_U",
    "CH_V",
    "CH_Z",
    "CHANNELS",
    "Framebuffer",
]
