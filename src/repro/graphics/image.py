"""Graphics application (paper Section 5.3).

The paper's third sketched use case: "in graphics, multiple pieces of
information (e.g., RGB values of pixels) may be packed into small
objects. Different operations may access multiple values within an
object or a single value across a large number of objects."

We model a framebuffer of pixel *objects* — eight 8-byte channels per
pixel (R, G, B, A, Z, U, V, M), one pixel per cache line, the same
record shape the paper's mechanism targets. Two operation families:

- **per-pixel** (compositing, blending): read/write several channels of
  one pixel — pattern-0 accesses to one line;
- **per-channel** (histograms, channel means, Z-buffer scans): one
  channel across every pixel — pattern-7 gathers, 8 pixels per line.

Channels narrower than 8 bytes would use the Section 6.3 intra-chip
translation (see :class:`repro.core.extensions.TiledChip`); at this
layer we keep the paper's 8-byte value granularity.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.cpu.isa import Compute, Load, Store, pattload
from repro.errors import WorkloadError
from repro.sim.system import System

#: Channel indices within a pixel record.
CH_R, CH_G, CH_B, CH_A, CH_Z, CH_U, CH_V, CH_M = range(8)
CHANNELS = 8
PIXEL_BYTES = CHANNELS * 8

_PC_PIXEL = 0x8000
_PC_SCAN_LEAD = 0x8100
_PC_SCAN_BODY = 0x8180


class Framebuffer:
    """A width x height pixel-object array in simulated memory."""

    def __init__(self, system: System, width: int, height: int,
                 gs: bool = True) -> None:
        if (width * height) % CHANNELS != 0:
            raise WorkloadError(
                f"pixel count must be a multiple of {CHANNELS}"
            )
        self.system = system
        self.width = width
        self.height = height
        self.gs = gs and system.module.supports_patterns
        self.pattern = CHANNELS - 1 if self.gs else 0
        size = width * height * PIXEL_BYTES
        self.base = (
            system.pattmalloc(size, shuffle=True, pattern=self.pattern)
            if self.gs
            else system.malloc(size)
        )

    @property
    def pixels(self) -> int:
        return self.width * self.height

    def pixel_index(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise WorkloadError(f"pixel ({x}, {y}) out of bounds")
        return y * self.width + x

    def channel_address(self, pixel: int, channel: int) -> int:
        return self.base + pixel * PIXEL_BYTES + channel * 8

    # ------------------------------------------------------------------
    # Functional load/store of whole images
    # ------------------------------------------------------------------
    def load_pixels(self, records: list[list[int]]) -> None:
        if len(records) != self.pixels:
            raise WorkloadError("pixel record count mismatch")
        payload = b"".join(
            struct.pack(f"<{CHANNELS}Q", *record) for record in records
        )
        self.system.mem_write(self.base, payload)

    def read_pixels(self) -> list[list[int]]:
        raw = self.system.mem_read(self.base, self.pixels * PIXEL_BYTES)
        values = struct.unpack(f"<{self.pixels * CHANNELS}Q", raw)
        return [
            list(values[p * CHANNELS : (p + 1) * CHANNELS])
            for p in range(self.pixels)
        ]

    # ------------------------------------------------------------------
    # Per-pixel operations (pattern 0)
    # ------------------------------------------------------------------
    def blend_ops(self, pixel: int, rgb: tuple[int, int, int],
                  alpha_num: int, alpha_den: int = 256) -> Iterator:
        """Alpha-blend a colour into one pixel: read RGB, write RGB.

        Integer blend: ``new = (old * (den - num) + src * num) // den``.
        """
        old = [0, 0, 0]

        def capture(channel_slot, data):
            old[channel_slot] = struct.unpack("<Q", data)[0]

        for slot, channel in enumerate((CH_R, CH_G, CH_B)):
            yield Load(self.channel_address(pixel, channel),
                       pc=_PC_PIXEL + channel,
                       on_value=lambda d, s=slot: capture(s, d))
        yield Compute(6)  # three multiply-adds
        for slot, channel in enumerate((CH_R, CH_G, CH_B)):
            blended = (old[slot] * (alpha_den - alpha_num)
                       + rgb[slot] * alpha_num) // alpha_den
            yield Store(self.channel_address(pixel, channel),
                        struct.pack("<Q", blended),
                        pc=_PC_PIXEL + 16 + channel)

    # ------------------------------------------------------------------
    # Per-channel operations (pattern 7 on GS storage)
    # ------------------------------------------------------------------
    def scan_channel_ops(self, channel: int, on_value) -> Iterator:
        """Visit one channel of every pixel (histogram/mean/Z scans)."""
        if not 0 <= channel < CHANNELS:
            raise WorkloadError(f"channel {channel} out of range")
        sink = lambda b: on_value(struct.unpack("<Q", b)[0])
        if self.gs:
            for group in range(0, self.pixels, CHANNELS):
                line = group + channel
                for position in range(CHANNELS):
                    pc = (_PC_SCAN_LEAD if position == 0 else _PC_SCAN_BODY) + channel
                    yield pattload(self.base + line * PIXEL_BYTES + position * 8,
                                   pattern=self.pattern, pc=pc, on_value=sink)
                    yield Compute(1)
        else:
            for pixel in range(self.pixels):
                yield Load(self.channel_address(pixel, channel),
                           pc=_PC_SCAN_LEAD + channel, on_value=sink)
                yield Compute(1)

    def channel_histogram_ops(self, channel: int, bins: int,
                              histogram: list[int],
                              bin_width: int) -> Iterator:
        """Histogram one channel into ``bins`` buckets of ``bin_width``."""
        if len(histogram) != bins:
            raise WorkloadError("histogram list must have `bins` entries")

        def bucket(value: int) -> None:
            index = min(value // bin_width, bins - 1)
            histogram[index] += 1

        yield from self.scan_channel_ops(channel, bucket)

    def depth_test_ops(self, threshold: int, result: list[int]) -> Iterator:
        """Count pixels nearer than ``threshold`` (a Z-buffer scan)."""
        def judge(z: int) -> None:
            if z < threshold:
                result[0] += 1

        yield from self.scan_channel_ops(CH_Z, judge)
