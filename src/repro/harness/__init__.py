"""Experiment harness: one driver per paper figure, plus ablations."""

from repro.harness.ablations import (
    run_channel_ablation,
    run_pattern_sweep,
    run_impulse_ablation,
    run_scaling_ablation,
    run_scheduler_ablation,
    run_shuffle_ablation,
)
from repro.harness.common import DEFAULT, FULL, MECHANISMS, QUICK, Scale, current_scale
from repro.harness.fig7_patterns import (
    PAPER_FIGURE7,
    computed_figure7,
    exact_columns_match,
    families_match,
    render_figure7,
)
from repro.harness.fig9_transactions import run_figure9
from repro.harness.fig10_analytics import run_figure10
from repro.harness.fig11_htap import run_figure11
from repro.harness.fig12_summary import run_figure12
from repro.harness.fig13_gemm import run_figure13
from repro.harness.fw_autopattern import run_autopattern_experiment
from repro.harness.inference import run_inference
from repro.harness.pim import run_pim_ablation
from repro.harness.patternscan import (
    PatternScanRun,
    pattern_sweep_specs,
    run_patternscan,
)
from repro.harness.sec53_apps import run_graph_experiment, run_kvstore_experiment
from repro.harness.sweeps import (
    sweep_l2_size,
    sweep_prefetch_degree,
    sweep_shuffle_stages,
)

__all__ = [
    "DEFAULT",
    "FULL",
    "MECHANISMS",
    "PAPER_FIGURE7",
    "PatternScanRun",
    "QUICK",
    "Scale",
    "pattern_sweep_specs",
    "computed_figure7",
    "current_scale",
    "exact_columns_match",
    "families_match",
    "render_figure7",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_autopattern_experiment",
    "run_graph_experiment",
    "run_inference",
    "run_kvstore_experiment",
    "run_channel_ablation",
    "run_impulse_ablation",
    "run_pattern_sweep",
    "run_patternscan",
    "run_pim_ablation",
    "run_scaling_ablation",
    "run_scheduler_ablation",
    "run_shuffle_ablation",
    "sweep_l2_size",
    "sweep_prefetch_degree",
    "sweep_shuffle_stages",
]
