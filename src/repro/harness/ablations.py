"""Design-choice ablations (DESIGN.md: abl-1 .. abl-4).

- **abl-1 shuffle**: with shuffling disabled, a stride-8 gather's
  values all map to one chip — chip conflicts force ``chips`` READs per
  gather (Section 3.2's motivation). Measured both analytically and as
  end-to-end analytics time with a shuffle-less GS config (which must
  fall back to row-store-style access).
- **abl-2 scheduler**: FR-FCFS vs FCFS under the HTAP workload. The Row
  Store starvation effect of Figure 11 is a property of FR-FCFS.
- **abl-3 scaling**: the headline Figure 9/10 ratios across table
  sizes, demonstrating shape stability of the scaled-down reproduction.
- **abl-4 Impulse**: the paper's Section 7 comparison, quantified — an
  Impulse-style controller gathers at the MC and matches GS-DRAM's
  cache utilisation, but still reads every underlying line from DRAM.
- **abl-5 channels**: the Section 4.2 multi-channel extension —
  multiprogrammed scans scale with channel count; GS-DRAM's reduced
  traffic makes one channel go as far as the Row Store's two.
- **abl-6 pattern sweep**: end-to-end benefit per supported pattern
  (stride 2 / 4 / 8): gathered scans versus the equivalent scalar
  strided scans over identical data.
"""

from __future__ import annotations

from repro.core.pattern import chip_conflicts
from repro.db.engine import run_analytics
from repro.db.layouts import GSDRAMStore, RowStore
from repro.db.workload import AnalyticsQuery, TransactionMix
from repro.db.table import OracleTable
from repro.db.workload import make_rows
from repro.harness.common import Scale, current_scale
from repro.cpu.isa import Load
from repro.perf import RunSpec, run_specs
from repro.sim.config import SchedulerKind, impulse_config, plain_dram_config, table1_config
from repro.sim.system import System
from repro.utils.records import FigureResult


def run_shuffle_ablation(chips: int = 8) -> FigureResult:
    """abl-1: READs per gather vs stride, with and without shuffling."""
    figure = FigureResult(
        figure="abl-1",
        description=f"READ commands per {chips}-value gather (chip conflicts)",
        x_label="stride",
    )
    full_mask = chips - 1
    for stride in (2, 4, 8, 16, 32):
        figure.add_point("with shuffle", stride,
                         chip_conflicts(chips, stride, full_mask))
        figure.add_point("no shuffle", stride,
                         chip_conflicts(chips, stride, 0))
        figure.add_point("1-stage shuffle", stride,
                         chip_conflicts(chips, stride, 0b001))
    figure.notes.append(
        "full shuffling keeps every power-of-2 stride at 1 READ; without "
        "it, strides >= chips serialise onto one chip"
    )
    return figure


def run_scheduler_ablation(scale: Scale | None = None,
                           jobs: int | None = None) -> FigureResult:
    """abl-2: HTAP transaction throughput under FR-FCFS vs FCFS."""
    scale = scale or current_scale()
    figure = FigureResult(
        figure="abl-2",
        description="HTAP txn throughput (M/s) by memory scheduler, with prefetch",
        x_label="scheduler",
    )
    points = [
        (kind, layout)
        for kind in (SchedulerKind.FR_FCFS, SchedulerKind.FCFS)
        for layout in ("Row Store", "GS-DRAM")
    ]
    specs = [
        RunSpec(
            kind="htap",
            layout=layout,
            params={"num_tuples": scale.htap_tuples, "prefetch": True},
            config_overrides={"l2_size": scale.htap_l2_size,
                              "scheduler": kind},
        )
        for kind, layout in points
    ]
    for (kind, layout), run in zip(points, run_specs(specs, jobs=jobs)):
        figure.add_point(layout, kind.value, run.txn_throughput_mps)
    figure.notes.append(
        "Row Store's starvation of the transaction thread is an FR-FCFS "
        "effect: FCFS narrows the gap"
    )
    return figure


def run_scaling_ablation(
    sizes: tuple[int, ...] = (4096, 16384, 65536),
    transactions: int = 400,
    jobs: int | None = None,
    mode: str = "event",
) -> FigureResult:
    """abl-3: headline ratios across table sizes (shape stability).

    ``mode="fast"`` runs the grid on the vectorized engine (analytics
    without the prefetcher) and forms the ratios from DRAM accesses —
    the figure is a ratio plot, so the traffic proxy preserves its
    shape-stability reading.
    """
    figure = FigureResult(
        figure="abl-3",
        description="Headline ratios vs table size (shape stability)",
        x_label="tuples",
    )
    mix = TransactionMix(4, 2, 2)
    query = AnalyticsQuery((0,))
    layouts = ("Row Store", "Column Store", "GS-DRAM")
    points = [
        (workload, tuples, layout)
        for tuples in sizes
        for workload in ("txn", "anl")
        for layout in layouts
    ]
    specs = [
        RunSpec(kind="transactions", layout=layout,
                params={"mix": mix, "num_tuples": tuples,
                        "count": transactions},
                mode=mode)
        if workload == "txn"
        else RunSpec(kind="analytics", layout=layout,
                     params={"query": query, "num_tuples": tuples,
                             "prefetch": mode == "event"},
                     mode=mode)
        for workload, tuples, layout in points
    ]
    cycles = {
        point: run.result.cycles or run.result.memory_accesses
        for point, run in zip(points, run_specs(specs, jobs=jobs))
    }
    for tuples in sizes:
        figure.add_point(
            "txn: Column/GS", tuples,
            cycles[("txn", tuples, "Column Store")]
            / cycles[("txn", tuples, "GS-DRAM")],
        )
        figure.add_point(
            "anl: Row/GS", tuples,
            cycles[("anl", tuples, "Row Store")]
            / cycles[("anl", tuples, "GS-DRAM")],
        )
    figure.notes.append(
        "both headline ratios should stay in the same band across sizes"
    )
    return figure


def run_impulse_ablation(num_tuples: int = 8192) -> FigureResult:
    """abl-4: GS-DRAM vs an Impulse-style MC-side gather vs Row Store.

    All three run the same single-column analytics scan; the Impulse
    system uses the GS store's access pattern (its controller gathers),
    so cache utilisation matches GS-DRAM while DRAM traffic does not.
    """
    figure = FigureResult(
        figure="abl-4",
        description=(
            f"Analytics scan, {num_tuples} tuples: GS-DRAM vs Impulse "
            "[Carter+ HPCA'99] vs Row Store"
        ),
        x_label="metric",
    )
    query = AnalyticsQuery((0,))

    # Row Store and GS-DRAM through the standard drivers.
    row = run_analytics(RowStore(), query, num_tuples=num_tuples)
    gs = run_analytics(GSDRAMStore(), query, num_tuples=num_tuples)

    # Impulse: the GS layout's op stream over an Impulse system.
    layout = GSDRAMStore()
    system = System(impulse_config())
    rows = make_rows(layout.schema, num_tuples)
    oracle = OracleTable(layout.schema, rows)
    layout.attach(system, num_tuples)
    layout.load_rows(rows)
    total = [0]
    impulse_result = system.run(
        [layout.analytics_ops(query, lambda v: total.__setitem__(0, total[0] + v))]
    )
    if total[0] != oracle.column_sum(query):
        raise AssertionError("Impulse analytics answer mismatch")

    for name, result in (
        ("Row Store", row.result),
        ("Impulse", impulse_result),
        ("GS-DRAM", gs.result),
    ):
        figure.add_point(name, "cycles", result.cycles)
        figure.add_point(name, "DRAM reads", result.dram_reads)
    figure.notes.append(
        "Impulse matches GS-DRAM's cache-line utilisation but, on "
        "commodity DRAM, cannot avoid reading every underlying line"
    )
    return figure


def run_channel_ablation(rows_per_stream: int = 32) -> FigureResult:
    """abl-5: multiprogrammed bandwidth scaling with channel count.

    Two cores stream disjoint regions (with prefetching). Cycles are
    reported for 1/2/4 channels on both commodity DRAM (record-layout
    scans) and GS-DRAM (gathered scans of the same data volume).
    """
    figure = FigureResult(
        figure="abl-5",
        description=(
            f"Two disjoint streaming cores, {rows_per_stream} DRAM rows "
            "each: cycles vs channel count"
        ),
        x_label="channels",
    )

    def plain_run(channels: int) -> int:
        system = System(plain_dram_config(channels=channels, cores=2,
                                          prefetch=True))
        bases = []
        for index in range(2):
            bases.append(system.malloc(rows_per_stream * 8192))
            system.malloc(8192)  # stagger streams across channels
        for base in bases:
            system.mem_write(base, bytes(rows_per_stream * 8192))

        def scan(base: int):
            for line in range(rows_per_stream * 128):
                yield Load(base + line * 64, pc=0x90)

        return system.run([scan(bases[0]), scan(bases[1])]).cycles

    def gs_run(channels: int) -> int:
        system = System(table1_config(channels=channels, cores=2,
                                      prefetch=True))
        bases = []
        for index in range(2):
            bases.append(
                system.pattmalloc(rows_per_stream * 8192, shuffle=True, pattern=7)
            )
            system.pattmalloc(8192, shuffle=True, pattern=7)  # stagger
        for base in bases:
            system.mem_write(base, bytes(rows_per_stream * 8192))

        def scan(base: int):
            # Field-0 gathers over the same data volume: 1/8 the lines.
            from repro.cpu.isa import pattload

            for group in range(0, rows_per_stream * 128, 8):
                for position in range(8):
                    yield pattload(base + group * 64 + position * 8,
                                   pattern=7, pc=0x91)

        return system.run([scan(bases[0]), scan(bases[1])]).cycles

    for channels in (1, 2, 4):
        figure.add_point("Row Store scans", channels, plain_run(channels))
        figure.add_point("GS-DRAM scans", channels, gs_run(channels))
    figure.notes.append(
        "row-granularity interleaving gives no intra-stream parallelism "
        "(faithful); concurrent streams scale until they run out of "
        "channels"
    )
    return figure


def run_pattern_sweep(lines: int = 2048) -> FigureResult:
    """abl-6: gathered vs scalar scans for every supported stride.

    The data is ``lines`` cache lines of 8-byte values. For stride
    ``2^k`` the scan touches every ``2^k``-th value; the scalar version
    loads through pattern 0 (one line per ``8/2^k`` useful values), the
    gathered version uses pattern ``2^k - 1``.
    """
    import struct

    from repro.cpu.isa import Compute, Load, pattload

    figure = FigureResult(
        figure="abl-6",
        description=f"Strided scans over {lines} lines: scalar vs gathered",
        x_label="stride",
    )
    total_values = lines * 8

    for k in (1, 2, 3):
        stride = 1 << k
        pattern = stride - 1
        group = pattern + 1

        def build_system():
            system = System(table1_config(l2_size=64 * 1024))
            base = system.pattmalloc(lines * 64, shuffle=True, pattern=pattern)
            payload = struct.pack(f"<{total_values}Q", *range(total_values))
            system.mem_write(base, payload)
            return system, base

        expected = sum(range(0, total_values, stride))

        # Scalar strided scan (pattern 0).
        system, base = build_system()
        total = [0]

        def scalar():
            for index in range(0, total_values, stride):
                yield Load(base + index * 8, pc=0x7000 + k,
                           on_value=lambda b: total.__setitem__(
                               0, total[0] + struct.unpack("<Q", b)[0]))
                yield Compute(1)

        scalar_run = system.run([scalar()])
        if total[0] != expected:
            raise AssertionError(f"scalar stride-{stride} scan wrong")

        # Gathered scan: each gathered line holds 8 stride-spaced values.
        system2, base2 = build_system()
        total2 = [0]

        def gathered():
            # Gathered line columns: one per group of `group` lines; the
            # stride-aligned families start at column multiples of the
            # group covering 8 values each.
            values_per_line = 8
            gathers = total_values // (stride * values_per_line)
            for g in range(gathers):
                column = g * group
                for j in range(values_per_line):
                    yield pattload(base2 + column * 64 + j * 8,
                                   pattern=pattern,
                                   pc=(0x7100 if j else 0x7180) + k,
                                   on_value=lambda b: total2.__setitem__(
                                       0, total2[0] + struct.unpack("<Q", b)[0]))
                    yield Compute(1)

        gathered_run = system2.run([gathered()])
        if total2[0] != expected:
            raise AssertionError(f"gathered stride-{stride} scan wrong")

        figure.add_point("scalar cycles", stride, scalar_run.cycles)
        figure.add_point("gathered cycles", stride, gathered_run.cycles)
        figure.add_point("scalar DRAM reads", stride, scalar_run.dram_reads)
        figure.add_point("gathered DRAM reads", stride, gathered_run.dram_reads)
    figure.notes.append(
        "traffic reduction equals the stride (a gathered line replaces "
        "`stride` partially-used lines); cycle gains follow"
    )
    return figure
