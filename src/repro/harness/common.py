"""Shared harness plumbing: scale presets and mechanism constants.

The paper's evaluation runs at Gem5 scale (1M-tuple tables, n=1024
matrices). A pure-Python cycle-level simulator reproduces the *shapes*
at reduced scale; every experiment driver takes a :class:`Scale`
selecting how big to run. The ``REPRO_SCALE`` environment variable
(quick / default / full) picks the preset for the benchmark suite, and
the scaling ablation (abl-3) demonstrates that the headline ratios are
stable across presets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Mechanism display names, in the paper's plotting order.
MECHANISMS = ("Row Store", "Column Store", "GS-DRAM")


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one experiment sweep."""

    name: str
    #: Tuples in the DB table (paper: 1,000,000).
    db_tuples: int
    #: Transactions per Figure 9 run (paper: 10,000).
    db_transactions: int
    #: Tuples for the HTAP experiment.
    htap_tuples: int
    #: L2 size override for HTAP so table:L2 stays paper-like
    #: (the paper's 64 MB table dwarfs its 2 MB L2).
    htap_l2_size: int
    #: Matrix sizes for Figure 13 (paper: 32..1024).
    gemm_sizes: tuple[int, ...]
    #: Inference family (repro.infer) shapes, all defaulted so older
    #: keyword-constructed scales (tests, CHECK_SCALE) stay valid.
    #: Batched GEMV: (output rows, input dim, batch).
    infer_gemv: tuple[int, int, int] = (16, 16, 2)
    #: Embedding-bag: (vocab rows, bags, bag size).
    infer_embed: tuple[int, int, int] = (64, 6, 4)
    #: KV-cache attention: decode steps (context grows 1..steps).
    infer_kv_steps: int = 6


QUICK = Scale(
    name="quick",
    db_tuples=4096,
    db_transactions=200,
    htap_tuples=8192,
    htap_l2_size=64 * 1024,
    gemm_sizes=(16, 32),
)

DEFAULT = Scale(
    name="default",
    db_tuples=16384,
    db_transactions=600,
    htap_tuples=16384,
    htap_l2_size=128 * 1024,
    gemm_sizes=(16, 32, 64),
    infer_gemv=(32, 32, 2),
    infer_embed=(128, 8, 6),
    infer_kv_steps=10,
)

FULL = Scale(
    name="full",
    db_tuples=65536,
    db_transactions=2000,
    htap_tuples=32768,
    htap_l2_size=256 * 1024,
    gemm_sizes=(16, 32, 64, 96),
    infer_gemv=(64, 64, 4),
    infer_embed=(256, 12, 8),
    infer_kv_steps=16,
)

_PRESETS = {scale.name: scale for scale in (QUICK, DEFAULT, FULL)}


def scale_by_name(name: str) -> Scale:
    """The preset called ``name`` (quick / default / full)."""
    if name not in _PRESETS:
        raise ValueError(
            f"unknown scale {name!r}; expected one of {sorted(_PRESETS)}"
        )
    return _PRESETS[name]


def current_scale() -> Scale:
    """Scale selected by ``REPRO_SCALE`` (default: "default")."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    if name not in _PRESETS:
        raise ValueError(
            f"REPRO_SCALE={name!r}; expected one of {sorted(_PRESETS)}"
        )
    return _PRESETS[name]
