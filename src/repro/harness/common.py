"""Shared harness plumbing: scale presets and mechanism constants.

The paper's evaluation runs at gem5 scale (1M-tuple tables, n=1024
matrices). A pure-Python cycle-level simulator reproduces the *shapes*
at reduced scale; every experiment driver takes a :class:`Scale`
selecting how big to run. The ``REPRO_SCALE`` environment variable
(quick / default / full / paper) picks the preset for the benchmark
suite, and the scaling ablation (abl-3) demonstrates that the headline
ratios are stable across presets.

The ``paper`` preset is the paper's actual evaluation sizes (1M-tuple
tables, 10K transactions, GEMM up to n=1024). It is a fast-mode
preset: the vectorized engines of :mod:`repro.vec` run it in seconds,
while the event-driven machine would need hours — ``repro figures
fig9 --scale paper --mode fast`` is the intended invocation (see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigError

#: Mechanism display names, in the paper's plotting order.
MECHANISMS = ("Row Store", "Column Store", "GS-DRAM")


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one experiment sweep."""

    name: str
    #: Tuples in the DB table (paper: 1,000,000).
    db_tuples: int
    #: Transactions per Figure 9 run (paper: 10,000).
    db_transactions: int
    #: Tuples for the HTAP experiment.
    htap_tuples: int
    #: L2 size override for HTAP so table:L2 stays paper-like
    #: (the paper's 64 MB table dwarfs its 2 MB L2).
    htap_l2_size: int
    #: Matrix sizes for Figure 13 (paper: 32..1024).
    gemm_sizes: tuple[int, ...]
    #: Inference family (repro.infer) shapes, all defaulted so older
    #: keyword-constructed scales (tests, CHECK_SCALE) stay valid.
    #: Batched GEMV: (output rows, input dim, batch).
    infer_gemv: tuple[int, int, int] = (16, 16, 2)
    #: Embedding-bag: (vocab rows, bags, bag size).
    infer_embed: tuple[int, int, int] = (64, 6, 4)
    #: KV-cache attention: decode steps (context grows 1..steps).
    infer_kv_steps: int = 6


QUICK = Scale(
    name="quick",
    db_tuples=4096,
    db_transactions=200,
    htap_tuples=8192,
    htap_l2_size=64 * 1024,
    gemm_sizes=(16, 32),
)

DEFAULT = Scale(
    name="default",
    db_tuples=16384,
    db_transactions=600,
    htap_tuples=16384,
    htap_l2_size=128 * 1024,
    gemm_sizes=(16, 32, 64),
    infer_gemv=(32, 32, 2),
    infer_embed=(128, 8, 6),
    infer_kv_steps=10,
)

FULL = Scale(
    name="full",
    db_tuples=65536,
    db_transactions=2000,
    htap_tuples=32768,
    htap_l2_size=256 * 1024,
    gemm_sizes=(16, 32, 64, 96),
    infer_gemv=(64, 64, 4),
    infer_embed=(256, 12, 8),
    infer_kv_steps=16,
)

#: The paper's own evaluation sizes (Section 5). DB: 1M tuples x 64 B
#: = 64 MB table (fits the default 256 MB geometry), 10K transactions.
#: HTAP: 1M-tuple table against the paper's 2 MB L2 (32:1, as in the
#: paper). GEMM: up to n=1024; figure_specs and the bench run the
#: first (feasible) size, the full sweep is an explicit long run.
#: Fast-mode only in practice — event-mode wall-clock at this scale is
#: hours per figure.
PAPER = Scale(
    name="paper",
    db_tuples=1_000_000,
    db_transactions=10_000,
    htap_tuples=1_048_576,
    htap_l2_size=2 * 1024 * 1024,
    gemm_sizes=(128, 256, 512, 1024),
    infer_gemv=(128, 128, 8),
    infer_embed=(1024, 32, 16),
    infer_kv_steps=32,
)

_PRESETS = {scale.name: scale for scale in (QUICK, DEFAULT, FULL, PAPER)}


def scale_names() -> tuple[str, ...]:
    """Valid preset names, in size order (CLI ``--scale`` choices)."""
    return tuple(_PRESETS)


def get_scale(name: str) -> Scale:
    """The preset called ``name``, or a :class:`ConfigError` naming the
    valid presets (never a bare KeyError)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale {name!r}; expected one of "
            f"{', '.join(_PRESETS)}",
            valid_presets=sorted(_PRESETS),
        ) from None


def scale_by_name(name: str) -> Scale:
    """The preset called ``name`` (quick / default / full / paper)."""
    return get_scale(name)


def current_scale() -> Scale:
    """Scale selected by ``REPRO_SCALE`` (default: "default")."""
    return get_scale(os.environ.get("REPRO_SCALE", "default").lower())
