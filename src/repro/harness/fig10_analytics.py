"""Figure 10: analytics workload performance.

Execution time of a query summing k = 1 or 2 columns, without and with
the stride prefetcher. Paper result: Column Store and GS-DRAM are
equivalent and ~2x faster than Row Store on average; prefetching helps
all three mechanisms.
"""

from __future__ import annotations

from repro.db.workload import AnalyticsQuery
from repro.errors import WorkloadError
from repro.harness.common import MECHANISMS, Scale, current_scale
from repro.perf import RunSpec, run_specs
from repro.utils.records import ComparisonSummary, FigureResult

QUERIES = (AnalyticsQuery((0,)), AnalyticsQuery((0, 1)))


def run_figure10(
    scale: Scale | None = None,
    jobs: int | None = None,
    mode: str = "event",
) -> tuple[FigureResult, ComparisonSummary]:
    """Run the Figure 10 sweep (k columns x prefetch on/off).

    ``mode="fast"`` runs the vectorized engine on the prefetch-off half
    of the grid only (the fast substrate has no timing for a prefetcher
    to react to) and plots DRAM accesses in place of cycles.
    """
    scale = scale or current_scale()
    metric = "cycles" if mode == "event" else "DRAM accesses"
    figure = FigureResult(
        figure="Figure 10",
        description=(
            f"Analytics: execution time ({metric}) for column-sum queries, "
            f"{scale.db_tuples} tuples"
        ),
        x_label="query / prefetch",
    )
    prefetch_grid = (False, True) if mode == "event" else (False,)
    points = [
        (prefetch, query, layout)
        for prefetch in prefetch_grid
        for query in QUERIES
        for layout in MECHANISMS
    ]
    specs = [
        RunSpec(
            kind="analytics",
            layout=layout,
            params={
                "query": query,
                "num_tuples": scale.db_tuples,
                "prefetch": prefetch,
            },
            mode=mode,
        )
        for prefetch, query, layout in points
    ]
    for (prefetch, query, layout), run in zip(points, run_specs(specs, jobs=jobs)):
        label = f"{query.label}{' +pf' if prefetch else ''}"
        if not run.verified:
            raise WorkloadError(f"analytics answer wrong: {layout} {label}")
        figure.add_point(
            layout, label, run.result.cycles or run.result.memory_accesses
        )

    summary = ComparisonSummary(figure="Figure 10")
    summary.record(
        "GS-DRAM speedup vs Row Store (paper: ~2x)",
        figure.speedup("Row Store", "GS-DRAM"),
    )
    summary.record(
        "GS-DRAM vs Column Store (paper: ~1x, parity)",
        figure.speedup("Column Store", "GS-DRAM"),
    )
    figure.notes.append(
        "expected shape: GS-DRAM tracks Column Store; Row Store fetches "
        "8x the lines; prefetching helps everyone"
    )
    return figure, summary
