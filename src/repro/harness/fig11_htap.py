"""Figure 11: HTAP — analytics latency and transaction throughput.

One analytics thread (sum of one column) and one transaction thread
(one read-only + one write-only field per transaction) run concurrently
on two cores sharing the L2 and the memory channel. Paper result:

- 11a: GS-DRAM matches Column Store's analytics time; Row Store is far
  slower.
- 11b: GS-DRAM's transaction throughput beats Column Store *and* Row
  Store — Row Store's streaming analytics monopolises the FR-FCFS
  scheduler's row hits and starves the transaction thread, drastically
  so with prefetching.
"""

from __future__ import annotations

from repro.harness.common import MECHANISMS, Scale, current_scale
from repro.perf import RunSpec, run_specs
from repro.utils.records import ComparisonSummary, FigureResult


def run_figure11(
    scale: Scale | None = None,
    jobs: int | None = None,
    mode: str = "event",
) -> tuple[FigureResult, FigureResult, ComparisonSummary]:
    """Run Figure 11; returns (11a analytics, 11b throughput, ratios).

    ``mode="fast"`` swaps the open-ended two-core race for the phased
    fixed-count variant on the vectorized engine (prefetch off — the
    fast substrate is timing-free): 11a plots DRAM accesses for the
    whole phased run and 11b plots transactions per thousand DRAM
    accesses, traffic proxies that preserve the layout ordering. The
    scheduler-starvation contrast (a timing effect) only exists in
    event mode.
    """
    scale = scale or current_scale()
    fast = mode == "fast"
    overrides = {"l2_size": scale.htap_l2_size}
    metric = "cycles" if not fast else "DRAM accesses"
    analytics_fig = FigureResult(
        figure="Figure 11a",
        description=(
            f"HTAP analytics execution time ({metric}), "
            f"{scale.htap_tuples} tuples, L2 {scale.htap_l2_size // 1024} KB"
        ),
        x_label="prefetch",
    )
    throughput_fig = FigureResult(
        figure="Figure 11b",
        description=(
            "HTAP transaction throughput (million txns/sec)"
            if not fast
            else "HTAP transactions per 1000 DRAM accesses (traffic proxy)"
        ),
        x_label="prefetch",
    )
    prefetch_grid = (False, True) if not fast else (False,)
    points = [
        (prefetch, layout)
        for prefetch in prefetch_grid
        for layout in MECHANISMS
    ]
    params = {"num_tuples": scale.htap_tuples}
    if fast:
        params["txn_count"] = scale.db_transactions
    specs = [
        RunSpec(
            kind="htap",
            layout=layout,
            params={**params, "prefetch": prefetch},
            config_overrides=overrides,
            mode=mode,
        )
        for prefetch, layout in points
    ]
    for (prefetch, layout), run in zip(points, run_specs(specs, jobs=jobs)):
        label = "with pf" if prefetch else "w/o pf"
        if fast:
            accesses = max(run.result.memory_accesses, 1)
            analytics_fig.add_point(layout, label, accesses)
            throughput_fig.add_point(
                layout, label, run.committed_txns / accesses * 1000.0
            )
        else:
            analytics_fig.add_point(layout, label, run.analytics_cycles)
            throughput_fig.add_point(layout, label, run.txn_throughput_mps)

    summary = ComparisonSummary(figure="Figure 11")
    summary.record(
        "analytics: GS-DRAM speedup vs Row Store",
        analytics_fig.speedup("Row Store", "GS-DRAM"),
    )
    summary.record(
        "throughput: GS-DRAM vs Column Store (paper: GS wins)",
        throughput_fig.mean("GS-DRAM") / max(throughput_fig.mean("Column Store"), 1e-9),
    )
    if len(throughput_fig.series["GS-DRAM"]) > 1:
        summary.record(
            "throughput with pf: GS-DRAM vs Row Store (paper: GS wins big)",
            throughput_fig.series["GS-DRAM"][1]
            / max(throughput_fig.series["Row Store"][1], 1e-9),
        )
    throughput_fig.notes.append(
        "expected shape: Row Store's streaming row hits starve the "
        "transaction thread under FR-FCFS, especially with prefetching"
        if not fast
        else "fast mode: phased fixed-count variant; traffic proxies "
        "preserve layout ordering but not the scheduler-starvation effect"
    )
    return analytics_fig, throughput_fig, summary
