"""Figure 12: average performance and energy summary.

12a: average execution time of the transaction workload (over the
Figure 9 mixes) and the analytics workload (k = 1, with prefetching).
12b: the corresponding full-system energy (processor + DRAM).

Paper results: for transactions GS-DRAM matches Row Store and consumes
2.1x less energy than Column Store; for analytics GS-DRAM matches
Column Store and consumes 2.4x less energy than Row Store (4x without
prefetching).
"""

from __future__ import annotations

from repro.db.engine import run_analytics, run_transactions
from repro.db.layouts import ColumnStore, GSDRAMStore, RowStore
from repro.db.workload import FIGURE9_MIXES, AnalyticsQuery
from repro.errors import WorkloadError
from repro.harness.common import Scale, current_scale
from repro.utils.records import ComparisonSummary, FigureResult

#: Representative subset of mixes for the summary average (light, heavy).
SUMMARY_MIXES = (FIGURE9_MIXES[0], FIGURE9_MIXES[3], FIGURE9_MIXES[7])


def run_figure12(
    scale: Scale | None = None,
) -> tuple[FigureResult, FigureResult, ComparisonSummary]:
    """Run Figure 12; returns (12a performance, 12b energy, ratios)."""
    scale = scale or current_scale()
    perf = FigureResult(
        figure="Figure 12a",
        description="Average execution time (cycles): transactions & analytics",
        x_label="workload",
    )
    energy = FigureResult(
        figure="Figure 12b",
        description="Average energy (mJ): transactions & analytics",
        x_label="workload",
    )
    analytics_energy_nopf: dict[str, float] = {}

    for layout_cls in (RowStore, ColumnStore, GSDRAMStore):
        cycles = []
        millijoules = []
        for mix in SUMMARY_MIXES:
            run = run_transactions(
                layout_cls(), mix,
                num_tuples=scale.db_tuples, count=scale.db_transactions,
            )
            if not run.verified:
                raise WorkloadError(f"txn check failed: {layout_cls.__name__}")
            cycles.append(run.result.cycles)
            millijoules.append(run.result.energy.total_mj)
        name = layout_cls().name
        perf.add_point(name, "Trans.", sum(cycles) / len(cycles))
        energy.add_point(name, "Trans.", sum(millijoules) / len(millijoules))

    query = AnalyticsQuery((0,))
    for layout_cls in (RowStore, ColumnStore, GSDRAMStore):
        name = layout_cls().name
        run_pf = run_analytics(
            layout_cls(), query, num_tuples=scale.db_tuples, prefetch=True
        )
        run_nopf = run_analytics(
            layout_cls(), query, num_tuples=scale.db_tuples, prefetch=False
        )
        if not (run_pf.verified and run_nopf.verified):
            raise WorkloadError(f"analytics check failed: {name}")
        perf.add_point(name, "Anal.", run_pf.result.cycles)
        energy.add_point(name, "Anal.", run_pf.result.energy.total_mj)
        analytics_energy_nopf[name] = run_nopf.result.energy.total_mj

    summary = ComparisonSummary(figure="Figure 12")
    summary.record(
        "txn energy: Column Store / GS-DRAM (paper: 2.1x)",
        energy.series["Column Store"][0] / energy.series["GS-DRAM"][0],
    )
    summary.record(
        "analytics energy w/ pf: Row Store / GS-DRAM (paper: 2.4x)",
        energy.series["Row Store"][1] / energy.series["GS-DRAM"][1],
    )
    summary.record(
        "analytics energy w/o pf: Row Store / GS-DRAM (paper: 4x)",
        analytics_energy_nopf["Row Store"] / analytics_energy_nopf["GS-DRAM"],
    )
    summary.record(
        "txn energy: GS-DRAM vs Row Store (paper: ~1x)",
        energy.series["Row Store"][0] / energy.series["GS-DRAM"][0],
    )
    return perf, energy, summary
