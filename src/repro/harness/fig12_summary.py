"""Figure 12: average performance and energy summary.

12a: average execution time of the transaction workload (over the
Figure 9 mixes) and the analytics workload (k = 1, with prefetching).
12b: the corresponding full-system energy (processor + DRAM).

Paper results: for transactions GS-DRAM matches Row Store and consumes
2.1x less energy than Column Store; for analytics GS-DRAM matches
Column Store and consumes 2.4x less energy than Row Store (4x without
prefetching).
"""

from __future__ import annotations

from repro.db.workload import FIGURE9_MIXES, AnalyticsQuery
from repro.errors import WorkloadError
from repro.harness.common import MECHANISMS, Scale, current_scale
from repro.perf import RunSpec, run_specs
from repro.utils.records import ComparisonSummary, FigureResult

#: Representative subset of mixes for the summary average (light, heavy).
SUMMARY_MIXES = (FIGURE9_MIXES[0], FIGURE9_MIXES[3], FIGURE9_MIXES[7])


def run_figure12(
    scale: Scale | None = None,
    jobs: int | None = None,
) -> tuple[FigureResult, FigureResult, ComparisonSummary]:
    """Run Figure 12; returns (12a performance, 12b energy, ratios)."""
    scale = scale or current_scale()
    perf = FigureResult(
        figure="Figure 12a",
        description="Average execution time (cycles): transactions & analytics",
        x_label="workload",
    )
    energy = FigureResult(
        figure="Figure 12b",
        description="Average energy (mJ): transactions & analytics",
        x_label="workload",
    )
    analytics_energy_nopf: dict[str, float] = {}

    # One pooled batch covering the whole figure: 3 layouts x 3 mixes of
    # transactions, plus 3 layouts x {pf, no pf} analytics.
    txn_points = [(layout, mix) for layout in MECHANISMS for mix in SUMMARY_MIXES]
    query = AnalyticsQuery((0,))
    anl_points = [
        (layout, prefetch)
        for layout in MECHANISMS
        for prefetch in (True, False)
    ]
    specs = [
        RunSpec(
            kind="transactions",
            layout=layout,
            params={
                "mix": mix,
                "num_tuples": scale.db_tuples,
                "count": scale.db_transactions,
            },
            seed=42,
        )
        for layout, mix in txn_points
    ] + [
        RunSpec(
            kind="analytics",
            layout=layout,
            params={
                "query": query,
                "num_tuples": scale.db_tuples,
                "prefetch": prefetch,
            },
        )
        for layout, prefetch in anl_points
    ]
    runs = run_specs(specs, jobs=jobs)
    txn_runs = dict(zip(txn_points, runs[: len(txn_points)]))
    anl_runs = dict(zip(anl_points, runs[len(txn_points) :]))

    for name in MECHANISMS:
        cycles = []
        millijoules = []
        for mix in SUMMARY_MIXES:
            run = txn_runs[(name, mix)]
            if not run.verified:
                raise WorkloadError(f"txn check failed: {name}")
            cycles.append(run.result.cycles)
            millijoules.append(run.result.energy.total_mj)
        perf.add_point(name, "Trans.", sum(cycles) / len(cycles))
        energy.add_point(name, "Trans.", sum(millijoules) / len(millijoules))

    for name in MECHANISMS:
        run_pf = anl_runs[(name, True)]
        run_nopf = anl_runs[(name, False)]
        if not (run_pf.verified and run_nopf.verified):
            raise WorkloadError(f"analytics check failed: {name}")
        perf.add_point(name, "Anal.", run_pf.result.cycles)
        energy.add_point(name, "Anal.", run_pf.result.energy.total_mj)
        analytics_energy_nopf[name] = run_nopf.result.energy.total_mj

    summary = ComparisonSummary(figure="Figure 12")
    summary.record(
        "txn energy: Column Store / GS-DRAM (paper: 2.1x)",
        energy.series["Column Store"][0] / energy.series["GS-DRAM"][0],
    )
    summary.record(
        "analytics energy w/ pf: Row Store / GS-DRAM (paper: 2.4x)",
        energy.series["Row Store"][1] / energy.series["GS-DRAM"][1],
    )
    summary.record(
        "analytics energy w/o pf: Row Store / GS-DRAM (paper: 4x)",
        analytics_energy_nopf["Row Store"] / analytics_energy_nopf["GS-DRAM"],
    )
    summary.record(
        "txn energy: GS-DRAM vs Row Store (paper: ~1x)",
        energy.series["Row Store"][0] / energy.series["GS-DRAM"][0],
    )
    return perf, energy, summary
