"""Figure 13: GEMM performance.

Execution time of the best tiled version and the GS-DRAM version,
normalised to the non-tiled baseline, as matrix size grows. Paper
result: tiling wins more as matrices outgrow caches, and GS-DRAM beats
the best tiled version by ~10% by eliminating the software gather.

(Our in-order SIMD model makes the gather elimination worth more than
the paper's 10% — the per-iteration instruction savings are the same,
but the paper's baseline spends relatively more time elsewhere. The
*ordering* and the growth-with-n shape are the reproduction targets;
see EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.gemm.autotune import DEFAULT_TILES, GemmRun
from repro.harness.common import Scale, current_scale
from repro.perf import RunSpec, run_specs
from repro.utils.records import ComparisonSummary, FigureResult


def run_figure13(
    scale: Scale | None = None,
    jobs: int | None = None,
    mode: str = "event",
) -> tuple[FigureResult, ComparisonSummary]:
    """Run the Figure 13 sweep over matrix sizes.

    ``mode="fast"`` replays the kernels' closed-form address streams on
    the vectorized engine; points normalise DRAM accesses instead of
    cycles (``GemmRun.work_proxy``), which tracks the same
    cache-pressure curve the tile sweep probes.
    """
    scale = scale or current_scale()
    metric = "execution time" if mode == "event" else "DRAM accesses"
    figure = FigureResult(
        figure="Figure 13",
        description=f"GEMM: {metric} normalised to the non-tiled baseline",
        x_label="matrix size n",
    )
    # First pooled batch: the non-tiled baseline and the whole tile
    # sweep for every n. The GS runs need the best tile per n, so they
    # form a second (dependent) batch.
    first: list[tuple[RunSpec, tuple]] = []
    for n in scale.gemm_sizes:
        first.append((RunSpec(kind="gemm", params={"variant": "naive", "n": n},
                              mode=mode),
                      ("naive", n, None)))
        for tile in DEFAULT_TILES:
            if n % tile == 0:
                first.append(
                    (RunSpec(kind="gemm",
                             params={"variant": "tiled", "n": n, "tile": tile},
                             mode=mode),
                     ("tiled", n, tile))
                )
    first_runs = run_specs([spec for spec, _ in first], jobs=jobs)
    naive_by_n: dict[int, GemmRun] = {}
    tiled_by_n: dict[int, list[GemmRun]] = {n: [] for n in scale.gemm_sizes}
    for (_, (variant, n, _tile)), run in zip(first, first_runs):
        if variant == "naive":
            naive_by_n[n] = run
        else:
            tiled_by_n[n].append(run)

    best_by_n = {
        n: min(runs, key=lambda run: run.work_proxy)
        for n, runs in tiled_by_n.items()
    }
    gs_specs = [
        RunSpec(kind="gemm",
                params={"variant": "gs", "n": n,
                        "tile": best_by_n[n].tile or 8},
                mode=mode)
        for n in scale.gemm_sizes
    ]
    gs_runs = dict(zip(scale.gemm_sizes, run_specs(gs_specs, jobs=jobs)))

    reductions = []
    for n in scale.gemm_sizes:
        naive = naive_by_n[n]
        best = best_by_n[n]
        tiled = GemmRun("Best Tiling", n, best.tile, best.result, best.verified)
        gs = gs_runs[n]
        for run in (naive, tiled, gs):
            if not run.verified:
                raise WorkloadError(f"GEMM product wrong: {run.kernel} n={n}")
        figure.add_point("Best Tiling", n, tiled.work_proxy / naive.work_proxy)
        figure.add_point("GS-DRAM", n, gs.work_proxy / naive.work_proxy)
        reductions.append((tiled.work_proxy - gs.work_proxy) / tiled.work_proxy)

    summary = ComparisonSummary(figure="Figure 13")
    summary.record(
        "GS-DRAM time reduction vs best tiling (paper: ~0.10x i.e. 10%)",
        sum(reductions) / len(reductions),
    )
    figure.notes.append(
        "expected shape: both improve on non-tiled as n grows; GS-DRAM "
        "below Best Tiling at every size"
    )
    return figure, summary
