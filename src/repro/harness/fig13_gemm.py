"""Figure 13: GEMM performance.

Execution time of the best tiled version and the GS-DRAM version,
normalised to the non-tiled baseline, as matrix size grows. Paper
result: tiling wins more as matrices outgrow caches, and GS-DRAM beats
the best tiled version by ~10% by eliminating the software gather.

(Our in-order SIMD model makes the gather elimination worth more than
the paper's 10% — the per-iteration instruction savings are the same,
but the paper's baseline spends relatively more time elsewhere. The
*ordering* and the growth-with-n shape are the reproduction targets;
see EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.gemm.autotune import best_tiled, run_gs, run_naive
from repro.harness.common import Scale, current_scale
from repro.utils.records import ComparisonSummary, FigureResult


def run_figure13(
    scale: Scale | None = None,
) -> tuple[FigureResult, ComparisonSummary]:
    """Run the Figure 13 sweep over matrix sizes."""
    scale = scale or current_scale()
    figure = FigureResult(
        figure="Figure 13",
        description="GEMM: execution time normalised to the non-tiled baseline",
        x_label="matrix size n",
    )
    reductions = []
    for n in scale.gemm_sizes:
        naive = run_naive(n)
        tiled = best_tiled(n)
        gs = run_gs(n, tiled.tile or 8)
        for run in (naive, tiled, gs):
            if not run.verified:
                raise WorkloadError(f"GEMM product wrong: {run.kernel} n={n}")
        figure.add_point("Best Tiling", n, tiled.cycles / naive.cycles)
        figure.add_point("GS-DRAM", n, gs.cycles / naive.cycles)
        reductions.append((tiled.cycles - gs.cycles) / tiled.cycles)

    summary = ComparisonSummary(figure="Figure 13")
    summary.record(
        "GS-DRAM time reduction vs best tiling (paper: ~0.10x i.e. 10%)",
        sum(reductions) / len(reductions),
    )
    figure.notes.append(
        "expected shape: both improve on non-tiled as n grows; GS-DRAM "
        "below Best Tiling at every size"
    )
    return figure, summary
