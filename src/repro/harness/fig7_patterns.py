"""Figure 7: the gathered-line families of GS-DRAM(4, 2, 2).

A purely functional artifact: for every (pattern, column) pair of the
paper's 4-chip example, the global row-buffer indices the module
gathers. The paper's figure lists, for each pattern, the same family
of four disjoint index sets covering 0..15; pattern 2's rows appear in
a different column order in the figure (sorted by first element), which
we normalise the same way for comparison.
"""

from __future__ import annotations

from repro.core.pattern import gather_spec
from repro.utils.tables import render_table

#: The paper's Figure 7, as printed (each pattern's four gathered lines).
PAPER_FIGURE7 = {
    0: [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (12, 13, 14, 15)],
    1: [(0, 2, 4, 6), (1, 3, 5, 7), (8, 10, 12, 14), (9, 11, 13, 15)],
    2: [(0, 1, 8, 9), (2, 3, 10, 11), (4, 5, 12, 13), (6, 7, 14, 15)],
    3: [(0, 4, 8, 12), (1, 5, 9, 13), (2, 6, 10, 14), (3, 7, 11, 15)],
}

#: Stride annotations from the figure's margin.
PAPER_STRIDES = {0: "1", 1: "2", 2: "(1,7) dual", 3: "4"}


def computed_figure7(chips: int = 4, columns: int = 4) -> dict[int, list[tuple[int, ...]]]:
    """The same table computed from the shuffle + CTL closed forms."""
    return {
        pattern: [
            gather_spec(chips, pattern, column).indices for column in range(columns)
        ]
        for pattern in range(columns)
    }


def families_match(computed: dict[int, list[tuple[int, ...]]]) -> bool:
    """True if every pattern gathers the paper's family of lines.

    Comparison is order-insensitive per pattern (the figure sorts rows
    by first element; the hardware's column->line association for
    pattern 2 differs only in row order).
    """
    for pattern, expected_rows in PAPER_FIGURE7.items():
        if sorted(computed[pattern]) != sorted(expected_rows):
            return False
    return True


def exact_columns_match(computed: dict[int, list[tuple[int, ...]]]) -> list[int]:
    """Patterns whose per-column rows match the figure exactly, in order."""
    return [
        pattern
        for pattern, expected_rows in PAPER_FIGURE7.items()
        if computed[pattern] == expected_rows
    ]


def render_figure7() -> str:
    """ASCII rendering of the reproduced Figure 7."""
    computed = computed_figure7()
    rows = []
    for pattern, gathered in computed.items():
        for column, indices in enumerate(gathered):
            rows.append(
                [pattern, PAPER_STRIDES[pattern], column,
                 " ".join(str(i) for i in indices)]
            )
    table = render_table(
        ["pattern", "stride", "column", "gathered row-buffer indices"],
        rows,
        title="Figure 7: cache lines gathered by GS-DRAM(4,2,2)",
    )
    verdict = "MATCH" if families_match(computed) else "MISMATCH"
    return f"{table}\nfamily comparison vs paper: {verdict}"
