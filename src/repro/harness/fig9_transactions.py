"""Figure 9: transaction workload performance.

Execution time for N transactions across the eight i-j-k field mixes,
for Row Store, Column Store, and GS-DRAM. Paper result: Row Store is
flat (one line per transaction regardless of fields), Column Store
degrades with field count, and GS-DRAM matches Row Store — on average
3x faster than Column Store.
"""

from __future__ import annotations

from repro.db.workload import FIGURE9_MIXES, TransactionMix
from repro.errors import WorkloadError
from repro.harness.common import MECHANISMS, Scale, current_scale
from repro.perf import RunSpec, run_specs
from repro.utils.records import ComparisonSummary, FigureResult


def run_figure9(
    scale: Scale | None = None,
    mixes: tuple[TransactionMix, ...] = FIGURE9_MIXES,
    jobs: int | None = None,
    mode: str = "event",
) -> tuple[FigureResult, ComparisonSummary]:
    """Run the full Figure 9 sweep; returns the figure + headline ratios.

    ``mode="fast"`` runs the vectorized engine: identical workload and
    memory behaviour, zero cycles — points plot DRAM accesses instead,
    which produce the same layout ordering (the figure's contrast *is*
    a traffic contrast).
    """
    scale = scale or current_scale()
    metric = "cycles" if mode == "event" else "DRAM accesses"
    figure = FigureResult(
        figure="Figure 9",
        description=(
            f"Transaction workload: execution time ({metric}) for "
            f"{scale.db_transactions} transactions, {scale.db_tuples} tuples"
        ),
        x_label="mix (ro-wo-rw)",
    )
    points = [(mix, layout) for mix in mixes for layout in MECHANISMS]
    specs = [
        RunSpec(
            kind="transactions",
            layout=layout,
            params={
                "mix": mix,
                "num_tuples": scale.db_tuples,
                "count": scale.db_transactions,
            },
            seed=42,
            mode=mode,
        )
        for mix, layout in points
    ]
    for (mix, layout), run in zip(points, run_specs(specs, jobs=jobs)):
        if not run.verified:
            raise WorkloadError(
                f"functional check failed: {layout} mix {mix.label}"
            )
        figure.add_point(
            layout, mix.label,
            run.result.cycles or run.result.memory_accesses,
        )

    summary = ComparisonSummary(figure="Figure 9")
    summary.record(
        "GS-DRAM speedup vs Column Store (paper: ~3x)",
        figure.speedup("Column Store", "GS-DRAM"),
    )
    summary.record(
        "GS-DRAM vs Row Store (paper: ~1x, parity)",
        figure.speedup("Row Store", "GS-DRAM"),
    )
    figure.notes.append(
        "expected shape: GS-DRAM tracks Row Store; Column Store degrades "
        "with fields accessed"
    )
    return figure, summary
