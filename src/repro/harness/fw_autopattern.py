"""Future-work experiment: dynamic pattern detection (Section 4).

The paper defers "an automatic mechanism [to] exploit GS-DRAM ...
transparently to the application" to future work;
:mod:`repro.cpu.autopattern` implements one. This driver measures an
**unmodified** row-store analytics scan (ordinary loads, no pattload,
no pattmalloc-aware code) under three machines:

- commodity DRAM (the software's intended target);
- GS-DRAM without detection (gathers unused: same behaviour);
- GS-DRAM with the auto-pattern unit (loads rewritten into gathers).

The headline: the detector recovers most of the hand-written pattload
version's benefit with zero software changes.
"""

from __future__ import annotations

import struct

from repro.cpu.isa import Compute, Load, pattload
from repro.errors import WorkloadError
from repro.sim.config import plain_dram_config, table1_config
from repro.sim.system import System
from repro.utils.records import FigureResult


def _make_table(system: System, tuples: int, gs: bool) -> int:
    if gs:
        base = system.pattmalloc(tuples * 64, shuffle=True, pattern=7)
    else:
        base = system.malloc(tuples * 64)
    payload = b"".join(
        struct.pack("<8Q", *(t * 8 + f for f in range(8))) for t in range(tuples)
    )
    system.mem_write(base, payload)
    return base


def _scalar_scan(base: int, tuples: int, sink):
    """The unmodified software: ordinary loads, record stride."""
    for t in range(tuples):
        yield Load(base + t * 64, pc=0x1010,
                   on_value=lambda b: sink(struct.unpack("<Q", b)[0]))
        yield Compute(1)


def _pattload_scan(base: int, tuples: int, sink):
    """The hand-optimised software (paper Figure 8)."""
    for group in range(0, tuples, 8):
        for j in range(8):
            yield pattload(base + group * 64 + j * 8, pattern=7,
                           pc=0x1020 if j else 0x1021,
                           on_value=lambda b: sink(struct.unpack("<Q", b)[0]))
            yield Compute(1)


def run_autopattern_experiment(tuples: int = 8192) -> FigureResult:
    """Unmodified scan under three machines + the hand-written gather."""
    figure = FigureResult(
        figure="fw-auto",
        description=(
            f"Unmodified field-0 scan over {tuples} tuples: dynamic "
            "pattern detection (paper's future work)"
        ),
        x_label="metric",
    )
    expected = sum(t * 8 for t in range(tuples))

    configs = [
        ("commodity DRAM", plain_dram_config(), False, _scalar_scan),
        ("GS-DRAM, no detection", table1_config(), True, _scalar_scan),
        ("GS-DRAM + auto detect", table1_config(auto_pattern=True), True,
         _scalar_scan),
        ("GS-DRAM, hand-written pattload", table1_config(), True,
         _pattload_scan),
    ]
    for name, config, gs, scan in configs:
        system = System(config)
        base = _make_table(system, tuples, gs)
        total = [0]
        result = system.run(
            [scan(base, tuples, lambda v: total.__setitem__(0, total[0] + v))]
        )
        if total[0] != expected:
            raise WorkloadError(f"{name}: scan answer wrong")
        figure.add_point(name, "cycles", result.cycles)
        figure.add_point(name, "DRAM reads", result.dram_reads)
    figure.notes.append(
        "the detector rewrites record-strided loads into gathers after "
        "2 confirmations; conversion is semantics-preserving by "
        "construction (see repro.cpu.autopattern)"
    )
    return figure
