"""Inference family: GS-DRAM vs baseline over three ML kernels.

Not a paper figure — the paper predates transformer serving — but the
same experiment shape as Section 7's applications: each
:mod:`repro.infer` workload (batched GEMV, embedding-bag lookup,
KV-cache attention gather) runs on the interleaved baseline machine and
the shuffled GS-DRAM machine, and the harness reports the per-workload
speedup and energy ratio. ``mode="fast"`` runs the vectorized twins
(zero cycles; points normalise ``work_proxy``, i.e. DRAM line traffic).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.harness.common import Scale, current_scale
from repro.harness.specsets import figure_specs
from repro.perf import run_specs
from repro.utils.records import ComparisonSummary, FigureResult


def run_inference(
    scale: Scale | None = None,
    jobs: int | None = None,
    mode: str = "event",
) -> tuple[FigureResult, ComparisonSummary]:
    """Run all three inference workloads on both machines.

    Returns the usual (figure, summary) pair: one x per workload, one
    series per mechanism (execution metric, normalised to the
    baseline), and headline per-workload speedup + energy ratios.
    """
    scale = scale or current_scale()
    metric = "execution time" if mode == "event" else "memory accesses"
    figure = FigureResult(
        figure="Inference",
        description=f"ML inference: {metric} normalised to interleaved DRAM",
        x_label="workload",
    )
    specs = figure_specs("infer", scale, mode=mode)
    runs = run_specs(specs, jobs=jobs)
    by_key = {}
    for run in runs:
        if not run.verified:
            raise WorkloadError(
                f"inference oracle mismatch: {run.workload}/{run.variant}"
            )
        by_key[(run.workload, run.variant)] = run

    summary = ComparisonSummary(figure="Inference")
    for workload in ("gemv", "embed", "kvcache"):
        baseline = by_key[(workload, "baseline")]
        gs = by_key[(workload, "gs")]
        figure.add_point("Interleaved (DRAM)", workload, 1.0)
        figure.add_point(
            "Shuffled (GS-DRAM)", workload,
            gs.work_proxy / baseline.work_proxy,
        )
        summary.record(
            f"{workload}: GS-DRAM speedup over interleaved",
            baseline.work_proxy / gs.work_proxy,
        )
        if mode == "event":
            summary.record(
                f"{workload}: GS-DRAM energy reduction",
                baseline.result.energy.total_mj / gs.result.energy.total_mj,
            )
    figure.notes.append(
        "expected shape: GS-DRAM at or below 1.0 for every workload; "
        "embedding lookups gain most (gathers touch 8x fewer lines)"
    )
    return figure, summary
