"""Strided-scan driver with an event-exact vectorized fast path.

``run_patternscan`` runs one point of the abl-6 / Figure-7-style sweep:
a scalar strided scan (pattern 0) or the equivalent gathered scan
(pattern ``stride - 1``) over the same data, returning functional
counts, the scan answer, a digest of every loaded value, and the DRAM
row-locality profile.

Two execution modes produce bit-identical functional results:

- ``mode="event"`` — the full event-driven machine, exactly as
  :func:`repro.harness.ablations.run_pattern_sweep` builds it (same
  config, same allocation, same op stream, same PCs). Timing outputs
  (cycles, queue delays) are meaningful.
- ``mode="fast"`` — no machine at all: the access stream, the cache
  behaviour, the gathered values, and the row-buffer locality are all
  computed with the batched kernels of :mod:`repro.vec`. Timing outputs
  are zero.

Equivalence between the two is not assumed: :mod:`repro.check.fastpath`
diffs them access-for-access, and the bench harness
(:mod:`repro.perf.bench`) records the speedup. The exactness argument
is the read-only single-core one documented in docs/PERFORMANCE.md:
with one blocking core there is never more than one outstanding miss,
so cache replacement and per-bank DRAM service order are both exactly
the program order the fast path replays.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.cpu.isa import Compute, Load, pattload
from repro.energy.model import system_energy
from repro.errors import ConfigError, WorkloadError
from repro.obs.session import current_session
from repro.perf.specs import RunSpec
from repro.sim.config import SystemConfig, table1_config
from repro.sim.results import RunResult, StageTimer
from repro.sim.system import System
from repro.utils.bitops import is_power_of_two
from repro.vec.kernels import decompose_addresses, gather_addresses_batch
from repro.vec.replay import (
    AccessTrace,
    ReplayCache,
    dedupe_consecutive,
    replay_two_level,
    row_locality,
)
from repro.vec.shim import machine_shim
from repro.vm.pattmalloc import PattAllocator

#: Strides of the standard sweep: every multi-value stride the 3-bit
#: pattern space supports with 8 values per line.
SWEEP_STRIDES = (2, 4, 8)
VARIANTS = ("scalar", "gathered")


@dataclass
class PatternScanRun:
    """Outcome of one (variant, stride) scan in one mode."""

    variant: str
    stride: int
    lines: int
    mode: str
    result: RunResult
    answer: int
    expected: int
    verified: bool
    #: sha256 over the loaded values, in program order, as little-endian
    #: u64 bytes — equal across modes iff every loaded value is equal.
    values_digest: str
    #: Row-buffer locality of the DRAM read stream (RowProfile.as_dict
    #: shape: totals + per-bank counts).
    row_profile: dict = field(default_factory=dict)


def _scan_config(config_overrides: dict | None) -> SystemConfig:
    overrides = {"l2_size": 64 * 1024}
    overrides.update(config_overrides or {})
    return table1_config(**overrides)


def _check_point(variant: str, stride: int, lines: int) -> None:
    if variant not in VARIANTS:
        raise ConfigError(f"unknown patternscan variant {variant!r}")
    if not is_power_of_two(stride) or not 2 <= stride <= 8:
        raise ConfigError(f"stride must be 2, 4, or 8, got {stride}")
    if lines <= 0 or lines % 8:
        raise ConfigError(f"lines must be a positive multiple of 8: {lines}")


def run_patternscan(
    variant: str,
    stride: int,
    lines: int = 2048,
    mode: str = "event",
    config_overrides: dict | None = None,
) -> PatternScanRun:
    """Run one strided-scan point; see the module docstring."""
    _check_point(variant, stride, lines)
    if mode == "event":
        return _run_event(variant, stride, lines, config_overrides)
    if mode == "fast":
        return _run_fast(variant, stride, lines, config_overrides)
    raise ConfigError(f"unknown patternscan mode {mode!r}")


def pattern_sweep_specs(
    lines: int = 2048, mode: str = "event", obs: str = "off"
) -> list[RunSpec]:
    """RunSpecs for the full sweep (every stride x both variants)."""
    return [
        RunSpec(
            kind="patternscan",
            params={"variant": variant, "stride": stride, "lines": lines},
            mode=mode,
            obs=obs,
        )
        for stride in SWEEP_STRIDES
        for variant in VARIANTS
    ]


# ----------------------------------------------------------------------
# Event mode: the full machine, instrumented for the row profile
# ----------------------------------------------------------------------
def _run_event(
    variant: str, stride: int, lines: int, config_overrides: dict | None
) -> PatternScanRun:
    timer = StageTimer()
    with timer.stage("setup"):
        config = _scan_config(config_overrides)
        pattern = stride - 1
        total_values = lines * 8

        system = System(config)
        # The per-bank row profile is derived from the actual command
        # stream, so the fast path's analytics are checked against
        # commands the controller really issued, not a second model of
        # them.
        system.controller.trace_commands = True
        base = system.pattmalloc(lines * 64, shuffle=True, pattern=pattern)
    with timer.stage("generate"):
        system.mem_write(
            base, struct.pack(f"<{total_values}Q", *range(total_values))
        )

    chunks: list[bytes] = []
    k = stride.bit_length() - 1

    def scalar_ops():
        for index in range(0, total_values, stride):
            yield Load(base + index * 8, pc=0x7000 + k, on_value=chunks.append)
            yield Compute(1)

    def gathered_ops():
        gathers = total_values // (stride * 8)
        for g in range(gathers):
            column = g * stride
            for j in range(8):
                yield pattload(
                    base + column * 64 + j * 8,
                    pattern=pattern,
                    pc=(0x7100 if j else 0x7180) + k,
                    on_value=chunks.append,
                )
                yield Compute(1)

    ops = scalar_ops() if variant == "scalar" else gathered_ops()
    with timer.stage("run"):
        result = system.run([ops])

    with timer.stage("verify"):
        answer = sum(struct.unpack("<Q", chunk)[0] for chunk in chunks)
        expected = sum(range(0, total_values, stride))
    timer.attach(result)
    return PatternScanRun(
        variant=variant,
        stride=stride,
        lines=lines,
        mode="event",
        result=result,
        answer=answer,
        expected=expected,
        verified=answer == expected,
        values_digest=hashlib.sha256(b"".join(chunks)).hexdigest(),
        row_profile=_profile_from_commands(system.controller.command_trace),
    )


def _profile_from_commands(command_trace) -> dict:
    """Per-bank row-locality counts from the controller's command log.

    Every row miss issues exactly one ACT (preceded by a PRE unless the
    bank was closed), so per bank: misses = ACTs, hits = RD+WR - ACTs.
    """
    per_bank: dict[int, dict[str, int]] = {}
    for _time, command in command_trace:
        counts = per_bank.setdefault(
            command.bank,
            {"reads": 0, "row_hits": 0, "row_misses": 0,
             "activates": 0, "precharges": 0},
        )
        kind = command.kind.value
        if kind in ("RD", "WR"):
            counts["reads"] += 1
        elif kind == "ACT":
            counts["activates"] += 1
        elif kind == "PRE":
            counts["precharges"] += 1
    for counts in per_bank.values():
        counts["row_misses"] = counts["activates"]
        counts["row_hits"] = counts["reads"] - counts["activates"]
    return {
        "row_hits": sum(c["row_hits"] for c in per_bank.values()),
        "row_misses": sum(c["row_misses"] for c in per_bank.values()),
        "activates": sum(c["activates"] for c in per_bank.values()),
        "precharges": sum(c["precharges"] for c in per_bank.values()),
        "per_bank": {
            str(bank): dict(counts)
            for bank, counts in sorted(per_bank.items())
        },
    }


# ----------------------------------------------------------------------
# Fast mode: batched kernels, no machine
# ----------------------------------------------------------------------
def _run_fast(
    variant: str, stride: int, lines: int, config_overrides: dict | None
) -> PatternScanRun:
    timer = StageTimer()
    with timer.stage("setup"):
        config = _scan_config(config_overrides)
        geometry = config.geometry
        line_bytes = geometry.chips * geometry.column_bytes
        pattern = stride - 1
        total_values = lines * 8

        # Identical physical placement: the same bump allocator the
        # System uses, so base addresses (and therefore bank/row
        # coordinates) match the event run byte for byte.
        allocator = PattAllocator(
            capacity_bytes=geometry.capacity_bytes,
            line_bytes=line_bytes,
            row_bytes=geometry.row_bytes,
        )
        base = allocator.pattmalloc(lines * 64, shuffle=True, pattern=pattern)
    with timer.stage("generate"):
        payload = np.arange(total_values, dtype=np.int64)

    with timer.stage("run"):
        if variant == "scalar":
            value_indices = np.arange(0, total_values, stride, dtype=np.int64)
            addresses = base + value_indices * 8
            line_addresses = addresses & ~np.int64(line_bytes - 1)
            patterns = np.zeros_like(line_addresses)
            values = payload[value_indices]
        else:
            gathers = total_values // (stride * 8)
            columns = np.arange(gathers, dtype=np.int64) * stride
            gathered_lines = base + columns * line_bytes
            slots = gather_addresses_batch(
                gathered_lines,
                np.full(gathers, pattern, dtype=np.int64),
                chips=geometry.chips,
                banks=geometry.banks,
                rows_per_bank=geometry.rows_per_bank,
                columns_per_row=geometry.columns_per_row,
                column_bytes=geometry.column_bytes,
                shuffle_stages=config.shuffle_stages,
                pattern_bits=config.pattern_bits,
                bank_interleaved=False,
            )
            source_indices = slots - base
            if source_indices.size and (
                int(source_indices.min()) < 0
                or int(source_indices.max()) >= total_values * 8
                or (source_indices % 8).any()
            ):
                raise WorkloadError(
                    "gathered value addresses escaped the allocation"
                )
            values = payload[source_indices // 8].reshape(-1)
            line_addresses = np.repeat(gathered_lines, geometry.chips)
            patterns = np.full_like(line_addresses, pattern)

        # Cache behaviour: consecutive same-line accesses are guaranteed
        # MRU L1 hits (dropped, counted as hits); the rest replay
        # through the two-level LRU arrays.
        trace = AccessTrace(line_addresses, patterns)
        keep = dedupe_consecutive(trace)
        kept = AccessTrace(line_addresses[keep], patterns[keep])
        l1 = ReplayCache(config.l1_size, config.l1_assoc, line_bytes)
        l2 = ReplayCache(config.l2_size, config.l2_assoc, line_bytes)
        l1_hit_mask, l2_hit_mask = replay_two_level(kept, l1, l2)

        accesses = len(trace)
        deduped_hits = int((~keep).sum())
        l1_hits = deduped_hits + int(l1_hit_mask.sum())
        l1_misses = accesses - l1_hits
        l2_hits = int(l2_hit_mask.sum())
        l2_misses = l1_misses - l2_hits

        # DRAM read stream (service order == program order) -> locality.
        dram_lines = kept.line_addresses[~l1_hit_mask & ~l2_hit_mask]
        coords = decompose_addresses(
            dram_lines,
            banks=geometry.banks,
            rows_per_bank=geometry.rows_per_bank,
            columns_per_row=geometry.columns_per_row,
            line_bytes=line_bytes,
            policy=config.mapping_policy,
        )
        profile = row_locality(coords["bank"], coords["row"])

    with timer.stage("verify"):
        answer = int(values.sum())
        expected = sum(range(0, total_values, stride))
        digest = hashlib.sha256(values.astype("<u8").tobytes()).hexdigest()

    energy = system_energy(
        runtime_cycles=0,
        instructions=2 * accesses,
        l1_accesses=accesses,
        l2_accesses=l1_misses,
        command_counts={
            "cmd_RD": l2_misses,
            "cmd_ACT": profile.activates,
            "cmd_PRE": profile.precharges,
        },
        cores=1,
        cpu_ghz=config.cpu_ghz,
    )
    result = RunResult(
        mechanism=config.mechanism.value,
        cycles=0,
        instructions=2 * accesses,
        loads=accesses,
        stores=0,
        l1_hits=l1_hits,
        l1_misses=l1_misses,
        l2_hits=l2_hits,
        l2_misses=l2_misses,
        dram_reads=l2_misses,
        dram_writes=0,
        row_hits=profile.row_hits,
        row_misses=profile.row_misses,
        prefetches=0,
        coherence_invalidations=0,
        writebacks=0,
        energy=energy,
        extra={
            "engine_events": 0.0,
            "mean_memory_queue_delay": 0.0,
            "auto_gathers": 0.0,
            "stores_overlapped": 0.0,
            "mshr_merges": 0.0,
            "snoop_flushes": 0.0,
            "fast_path": 1.0,
        },
    )

    timer.attach(result)
    session = current_session()
    if session is not None:
        session.attach(
            _snapshot_shim(
                config, result,
                patterned_reads=l2_misses if variant == "gathered" else 0,
                l1_cache=l1, l2_cache=l2, profile=profile,
            )
        )

    return PatternScanRun(
        variant=variant,
        stride=stride,
        lines=lines,
        mode="fast",
        result=result,
        answer=answer,
        expected=expected,
        verified=answer == expected,
        values_digest=digest,
        row_profile=profile.as_dict(),
    )


def _snapshot_shim(
    config: SystemConfig,
    result: RunResult,
    patterned_reads: int,
    l1_cache: ReplayCache,
    l2_cache: ReplayCache,
    profile,
):
    """A registry-attachable stand-in for the machine a fast scan skips.

    Fast-path runs must still emit metrics snapshots; the count dicts
    here feed :func:`repro.vec.shim.machine_shim`, which exposes the
    component shape ``ObsSession.attach`` walks under the same stat
    names the real components use.
    """

    def cache_counts(cache: ReplayCache, hits: int, misses: int) -> dict:
        # Fills == misses; evictions are fills that displaced a line.
        return {
            "hits": hits,
            "misses": misses,
            "fills": misses,
            "evictions": max(0, misses - int((cache.tags != -1).sum())),
        }

    return machine_shim(
        config,
        core_counts={
            "instructions": result.instructions,
            "loads": result.loads,
            "misses_blocked": result.l2_misses,
            "finished": 1,
        },
        # L1 fills come from both L2 hits and L2 misses; only L2 misses
        # fill L2 itself.
        l1_counts=cache_counts(l1_cache, result.l1_hits, result.l1_misses),
        l2_counts=cache_counts(l2_cache, result.l2_hits, result.l2_misses),
        controller_counts={
            "requests": result.dram_reads,
            "requests_read": result.dram_reads,
            "requests_patterned": patterned_reads,
            "cmd_RD": result.dram_reads,
            "cmd_ACT": profile.activates,
            "cmd_PRE": profile.precharges,
            "row_hits": profile.row_hits,
            "row_misses": profile.row_misses,
        },
    )
