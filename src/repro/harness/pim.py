"""PIM ablation: GS-DRAM gather + CPU vs in-DRAM compute.

Not a paper figure — the paper stops at gathering — but the natural
next question its Section 7 analytics workload raises: once the field
column is cheap to reach, is it cheaper still to never move it?  Each
:mod:`repro.pim` workload (column sum, predicate filter) runs twice
over the same seeded table column: the ``gs`` variant gathers with
pattern-7 pattloads and folds on the CPU, the ``pim`` variant computes
inside the chips with MRA+SHIFT programs (docs/INDRAM.md).  Both are
oracle-verified; the figure reports the per-workload execution metric
normalised to the GS side, plus energy ratios in event mode.

The honest headline (see docs/INDRAM.md): the filter wins outright —
only the one-bit match mask crosses the bus — while the bit-serial sum
trades a 10x traffic reduction for MRA latency and only pays off at
table sizes where the gather is bandwidth-bound.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.harness.common import Scale, current_scale
from repro.harness.specsets import figure_specs
from repro.perf import run_specs
from repro.pim.driver import VARIANT_MECHANISMS, WORKLOADS
from repro.utils.records import ComparisonSummary, FigureResult


def run_pim_ablation(
    scale: Scale | None = None,
    jobs: int | None = None,
    mode: str = "event",
) -> tuple[FigureResult, ComparisonSummary]:
    """Run both workloads on both mechanisms.

    Returns the usual (figure, summary) pair: one x per workload, one
    series per mechanism (execution metric normalised to the GS
    gather side), and headline per-workload gain + traffic ratios.
    """
    scale = scale or current_scale()
    metric = "execution time" if mode == "event" else "memory accesses"
    figure = FigureResult(
        figure="PIM",
        description=f"In-DRAM compute: {metric} normalised to GS gather",
        x_label="workload",
    )
    specs = figure_specs("pim", scale, mode=mode)
    runs = run_specs(specs, jobs=jobs)
    by_key = {}
    for run in runs:
        if not run.verified:
            raise WorkloadError(
                f"pim oracle mismatch: {run.workload}/{run.variant}"
            )
        by_key[(run.workload, run.variant)] = run

    summary = ComparisonSummary(figure="PIM")
    for workload in WORKLOADS:
        gs = by_key[(workload, "gs")]
        pim = by_key[(workload, "pim")]
        if gs.answer != pim.answer:
            raise WorkloadError(
                f"pim answer mismatch for {workload}: "
                f"gs={gs.answer} pim={pim.answer}"
            )
        figure.add_point(VARIANT_MECHANISMS["gs"], workload, 1.0)
        figure.add_point(
            VARIANT_MECHANISMS["pim"], workload,
            pim.work_proxy / gs.work_proxy,
        )
        summary.record(
            f"{workload}: PIM gain over GS gather",
            gs.work_proxy / pim.work_proxy,
        )
        summary.record(
            f"{workload}: PIM DRAM traffic reduction",
            gs.result.memory_accesses / max(pim.result.memory_accesses, 1),
        )
        if mode == "event":
            summary.record(
                f"{workload}: PIM energy reduction",
                gs.result.energy.total_mj / pim.result.energy.total_mj,
            )
    figure.notes.append(
        "expected shape: the filter's mask readback beats the gather "
        "outright; the bit-serial sum only wins once the table is large "
        "enough that the gather's line traffic dominates its runtime"
    )
    return figure, summary
