"""EXPERIMENTS.md generator.

Assembles the paper-vs-measured record from the figure tables the
benchmark suite wrote to ``benchmarks/results/``. Regenerate with::

    pytest benchmarks/ --benchmark-only       # refresh results/
    python -m repro.harness.report            # rewrite EXPERIMENTS.md
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

#: What the paper reports, per experiment — the reproduction targets.
PAPER_CLAIMS: dict[str, list[str]] = {
    "fig7": [
        "Figure 7 lists, per pattern ID, the cache lines GS-DRAM(4,2,2) "
        "gathers: pattern 0 = contiguous, 1 = stride 2, 2 = dual stride "
        "(1,7), 3 = stride 4.",
        "Reproduced exactly (pattern 2's rows appear in a different "
        "column order in the figure — sorted by first element — the "
        "line *families* are identical; patterns 0/1/3 match "
        "column-for-column).",
    ],
    "fig9": [
        "Paper: GS-DRAM performs as well as the Row Store and 3x (avg) "
        "better than the Column Store on transactions; Row Store is "
        "flat across mixes, Column Store degrades with field count.",
    ],
    "fig10": [
        "Paper: GS-DRAM performs similarly to the Column Store and ~2x "
        "better than the Row Store on analytics, with and without "
        "prefetching; prefetching helps all three.",
    ],
    "fig11": [
        "Paper: (a) GS-DRAM matches the Column Store's analytics time; "
        "(b) GS-DRAM's transaction throughput beats the Column Store "
        "and even the Row Store — FR-FCFS lets the Row Store's "
        "streaming analytics starve its transaction thread, worse with "
        "prefetching.",
    ],
    "fig12": [
        "Paper: transactions — GS-DRAM energy ~= Row Store, 2.1x below "
        "Column Store; analytics — GS-DRAM ~= Column Store, 2.4x below "
        "Row Store with prefetching (4x without).",
        "Caveat: our measured analytics-energy gap is larger than the "
        "paper's and similar with/without prefetching — the in-order "
        "blocking core gains as much from prefetching on GS-DRAM as on "
        "the Row Store, so the 2.4x-vs-4x split does not reproduce; "
        "the orderings and >2x magnitudes do.",
    ],
    "fig13": [
        "Paper: tiling beats non-tiled increasingly with n; GS-DRAM "
        "beats the best tiled version by ~10% on average.",
        "Caveat: our measured GS advantage (~30%) exceeds the paper's "
        "10% — with a 2-lane SIMD in-order core, removing the software "
        "gather (2 loads + 1 pack per SIMD MAC) is worth relatively "
        "more than on the paper's machine. The ordering and the "
        "growth-with-n shape reproduce; matrix/cache sizes are scaled "
        "together (see DESIGN.md).",
    ],
    "abl1": [
        "(Ours) Section 3.2's motivation quantified: chip conflicts per "
        "gather with/without shuffling.",
    ],
    "abl2": [
        "(Ours) The Figure 11 starvation effect is an FR-FCFS property: "
        "an FCFS scheduler narrows the Row Store's throughput gap.",
    ],
    "abl3": [
        "(Ours) Headline ratios are stable across table sizes, "
        "supporting the scaled-down reproduction.",
    ],
    "abl4": [
        "(Ours) Section 7's Impulse comparison quantified: an Impulse-"
        "style controller matches GS-DRAM's cache utilisation but reads "
        "8x the lines from commodity DRAM.",
    ],
    "abl5": [
        "(Ours) Section 4.2's multi-channel extension: multiprogrammed "
        "streams scale with channels; GS-DRAM's 8x traffic reduction "
        "means one GS channel outruns four commodity channels on the "
        "same scans.",
    ],
    "sec53-kv": [
        "Paper (Section 5.3, sketched): inserts benefit from key+value "
        "in one line; lookups benefit from key-only gathered lines.",
        "(Ours) quantified: inserts at parity; the pattern-1 key scan "
        "halves line traffic versus the pair layout.",
    ],
    "abl6": [
        "(Ours) End-to-end benefit per supported pattern: the gathered "
        "scan's DRAM traffic is exactly 1/stride of the scalar scan's, "
        "for strides 2, 4, and 8.",
    ],
    "sweep-stages": [
        "(Ours) Sensitivity: each butterfly stage halves the lines a "
        "field scan touches; the full 3 stages reach the 8x reduction. "
        "Even one stage beats the row store.",
    ],
    "sweep-prefetch": [
        "(Ours) Sensitivity: prefetching helps both mechanisms; GS-DRAM "
        "wins at every degree. Degree 8 over-prefetches the gathered "
        "stream (bus contention) — the paper's degree 4 is a good "
        "operating point.",
    ],
    "sweep-l2": [
        "(Ours) Sensitivity: the analytics gap persists across L2 "
        "capacities — it is a bandwidth property, not a cache-size "
        "artifact.",
    ],
    "fw-auto": [
        "Paper (Section 4): \"it is also possible for the processor to "
        "dynamically identify different access patterns ... transparently "
        "to the application. We leave the design of such an automatic "
        "mechanism for future work.\"",
        "(Ours) implemented: a per-PC record-stride detector rewrites "
        "eligible scalar loads into gathers (provably semantics-"
        "preserving); an unmodified row-store scan recovers most of the "
        "hand-written pattload version's benefit.",
    ],
    "sec53-graph": [
        "Paper (Section 5.3, sketched): node updates and graph "
        "traversals have different access patterns from whole-graph "
        "field operations.",
        "(Ours) quantified: field analytics gain ~8x line traffic "
        "reduction; BFS (pattern 0) is unaffected. BFS levels are "
        "verified against networkx.",
    ],
}

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table/figure in the paper's evaluation, reproduced by
`pytest benchmarks/ --benchmark-only`. The tables below are the output
of the most recent default-scale run (`REPRO_SCALE=default`); regenerate
with `python -m repro.harness.report` after re-running the benchmarks.

**Scale.** The paper simulates a 1M-tuple table (64 MB) and matrices up
to n=1024 on Gem5; this pure-Python cycle-level reproduction runs the
same workloads scaled down (default: 16K tuples; GEMM n<=64 with caches
scaled by the same factor), keeping the capacity *ratios* that produce
each figure's shape. Ablation abl-3 demonstrates the headline ratios
are stable across sizes. Absolute cycle counts are not comparable to
the paper's (different core model, different scale); the reproduction
targets are orderings and approximate factors.

**Functional verification.** Every run checks its answers: DB queries
against a Python oracle, GEMM against numpy, BFS against networkx. A
benchmark fails (not just deviates) if any answer is wrong.
"""


@dataclass
class Section:
    key: str
    title: str


SECTIONS = [
    Section("fig7", "Figure 7 — gathered-line families (mechanism correctness)"),
    Section("fig9", "Figure 9 — transaction workload"),
    Section("fig10", "Figure 10 — analytics workload"),
    Section("fig11", "Figure 11 — HTAP"),
    Section("fig12", "Figure 12 — performance & energy summary"),
    Section("fig13", "Figure 13 — GEMM"),
    Section("abl1", "Ablation 1 — shuffling vs chip conflicts"),
    Section("abl2", "Ablation 2 — FR-FCFS vs FCFS under HTAP"),
    Section("abl3", "Ablation 3 — table-size scaling"),
    Section("abl4", "Ablation 4 — Impulse baseline (Section 7)"),
    Section("abl5", "Ablation 5 — multi-channel scaling (Section 4.2)"),
    Section("abl6", "Ablation 6 — per-pattern stride sweep"),
    Section("sweep-stages", "Sensitivity — shuffle stages"),
    Section("sweep-prefetch", "Sensitivity — prefetch degree"),
    Section("sweep-l2", "Sensitivity — L2 capacity"),
    Section("sec53-kv", "Section 5.3 — key-value store (pattern 1)"),
    Section("sec53-graph", "Section 5.3 — graph processing"),
    Section("fw-auto", "Future work — dynamic pattern detection (Section 4)"),
]


def generate(results_dir: pathlib.Path, output: pathlib.Path) -> str:
    """Write EXPERIMENTS.md from the results directory; returns the text."""
    parts = [HEADER]
    for section in SECTIONS:
        parts.append(f"\n## {section.title}\n")
        for claim in PAPER_CLAIMS.get(section.key, []):
            parts.append(f"> {claim}\n")
        table_file = results_dir / f"{section.key}.txt"
        if table_file.exists():
            parts.append("\n```\n" + table_file.read_text().rstrip() + "\n```\n")
        else:
            parts.append(
                "\n*(no recorded run — execute "
                "`pytest benchmarks/ --benchmark-only` first)*\n"
            )
    text = "".join(parts)
    output.write_text(text)
    return text


def main() -> None:
    root = pathlib.Path(__file__).resolve().parents[3]
    results = root / "benchmarks" / "results"
    output = root / "EXPERIMENTS.md"
    generate(results, output)
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
