"""Section 5.3 applications: key-value store and graph processing.

The paper sketches (without evaluating) two further GS-DRAM use cases;
this driver quantifies both against record-layout baselines:

- **KV store**: full key scans with pattern 1 (eight keys per gathered
  line) vs scanning the pair layout.
- **Graph**: whole-graph field analytics with pattern 7 vs a record
  layout, with BFS as the pattern-0 control (expected: parity).
"""

from __future__ import annotations

import random

from repro.cpu.isa import Compute, Load
from repro.graph import (
    GraphStore,
    bfs_ops,
    field_analytics_ops,
    initialise_records,
)
from repro.kvstore.store import KVStore
from repro.sim.config import plain_dram_config, table1_config
from repro.sim.system import System
from repro.utils.records import FigureResult


def _kv_pair_scan_baseline(system: System, base: int, count: int, sink):
    """Key scan over the pair layout: one load per key, 4 keys/line."""
    import struct

    for index in range(count):
        yield Load(base + index * 16, pc=0x5800,
                   on_value=lambda b: sink(struct.unpack("<Q", b)[0]))
        yield Compute(1)


def run_kvstore_experiment(pairs: int = 4096) -> FigureResult:
    """KV store: insert cost and key-scan cost, GS vs pair layout.

    Inserts are timed on identical op streams (expected: parity — both
    write one pair line per insert). Scans run on *fresh* systems with
    functionally pre-loaded data and an L2 smaller than the store, so
    they measure memory behaviour rather than cache residency; the
    gathered scan touches half the lines of the pair-layout scan.
    """
    figure = FigureResult(
        figure="sec53-kv",
        description=f"KV store: {pairs} pairs, insert + full key scan",
        x_label="metric",
    )
    data = [(10_000 + 13 * i, i) for i in range(pairs)]
    overrides = {"l2_size": 64 * 1024}

    # --- insert phase (timed, identical op streams) -------------------
    import struct

    insert_cycles = {}
    for gs in (True, False):
        system = System(table1_config(**overrides) if gs
                        else plain_dram_config(**overrides))
        if gs:
            kv = KVStore(system, capacity=pairs)
            result = system.run([kv.bulk_insert_ops(data)])
        else:
            base = system.malloc(pairs * 16)

            def inserts():
                from repro.cpu.isa import Store

                for index, (key, value) in enumerate(data):
                    yield Compute(4)
                    yield Store(base + index * 16,
                                struct.pack("<QQ", key, value), pc=0x5900)

            result = system.run([inserts()])
        insert_cycles["GS-DRAM" if gs else "pair layout"] = result.cycles

    # --- scan phase (fresh systems, preloaded data) -------------------
    payload = b"".join(struct.pack("<QQ", k, v) for k, v in data)

    system_gs = System(table1_config(**overrides))
    kv = KVStore(system_gs, capacity=pairs)
    kv.count = pairs
    kv.oracle = dict(data)
    system_gs.mem_write(kv.base, payload)
    keys: list[int] = []
    before = system_gs.controller.stats.get("cmd_RD")
    scan_gs = system_gs.run([kv.scan_all_keys_ops(keys.append)])
    gathered_reads = system_gs.controller.stats.get("cmd_RD") - before
    if keys != [k for k, _ in data]:
        raise AssertionError("gathered key scan returned wrong keys")

    system_plain = System(plain_dram_config(**overrides))
    base = system_plain.malloc(pairs * 16)
    system_plain.mem_write(base, payload)
    keys2: list[int] = []
    before2 = system_plain.controller.stats.get("cmd_RD")
    scan_plain = system_plain.run(
        [_kv_pair_scan_baseline(system_plain, base, pairs, keys2.append)]
    )
    pair_reads = system_plain.controller.stats.get("cmd_RD") - before2
    if keys2 != [k for k, _ in data]:
        raise AssertionError("pair-layout key scan returned wrong keys")

    figure.add_point("GS-DRAM", "insert cycles", insert_cycles["GS-DRAM"])
    figure.add_point("pair layout", "insert cycles",
                     insert_cycles["pair layout"])
    figure.add_point("GS-DRAM", "scan cycles", scan_gs.cycles)
    figure.add_point("pair layout", "scan cycles", scan_plain.cycles)
    figure.add_point("GS-DRAM", "scan DRAM reads", gathered_reads)
    figure.add_point("pair layout", "scan DRAM reads", pair_reads)
    figure.notes.append(
        "inserts are pair-line writes on both (parity); the key scan "
        "gathers 8 keys per line vs 4 keys per pair line (2x traffic)"
    )
    return figure


def run_graph_experiment(vertices: int = 1024, edges: int = 4096,
                         seed: int = 11) -> FigureResult:
    """Field analytics + BFS on GS vs record layout."""
    figure = FigureResult(
        figure="sec53-graph",
        description=(
            f"Graph ({vertices} vertices, {edges} edges): field analytics "
            "vs BFS traversal"
        ),
        x_label="kernel",
    )
    rng = random.Random(seed)
    edge_list = [(rng.randrange(vertices), rng.randrange(vertices))
                 for _ in range(edges)]
    labels = [rng.randrange(4) for _ in range(vertices)]

    reference = None
    for gs in (False, True):
        system = System(table1_config() if gs else plain_dram_config())
        store = GraphStore(system, vertices, edge_list, gs=gs)
        initialise_records(store, labels)
        analytics: dict = {}
        run_a = system.run([field_analytics_ops(store, analytics)])
        if analytics["degree_sum"] != store.num_edges:
            raise AssertionError("degree sum mismatch")

        system_b = System(table1_config() if gs else plain_dram_config())
        store_b = GraphStore(system_b, vertices, edge_list, gs=gs)
        initialise_records(store_b, labels)
        levels: dict = {}
        run_b = system_b.run([bfs_ops(store_b, 0, levels)])
        if reference is None:
            reference = levels
        elif levels != reference:
            raise AssertionError("BFS levels differ between layouts")

        name = "GS-DRAM" if gs else "record layout"
        figure.add_point(name, "analytics cycles", run_a.cycles)
        figure.add_point(name, "BFS cycles", run_b.cycles)
    figure.notes.append(
        "field analytics gather 8 vertices per line; traversal is "
        "per-record (pattern 0) and unaffected, as Section 5.3 implies"
    )
    return figure
