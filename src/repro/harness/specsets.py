"""Representative per-figure RunSpec sets, shared across tools.

One case per figure family, used by both ``repro bench`` (timing) and
the observability CLI (``repro trace`` / ``repro metrics``): the tools
agree on what "one representative fig9 run" means, and a spec simulated
for the bench can be served from the result cache when the same spec is
later profiled (and vice versa — modulo the ``obs`` flag, which is part
of the cache key precisely so observed and plain runs never alias).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.harness.common import Scale
from repro.perf.specs import RunSpec

#: Figures with spec-based drivers (fig7 is a closed-form rendering and
#: has nothing to trace). "infer" is the ML-inference family
#: (repro.infer): not a paper figure, but the same figure-shaped
#: baseline-vs-GS comparison over GEMV / embedding / KV-cache gathers.
#: "pim" is the in-DRAM compute ablation (repro.pim): GS-DRAM gather +
#: CPU fold vs MRA+SHIFT programs executing inside the chips
#: (docs/INDRAM.md).
SPEC_FIGURES = ("fig9", "fig10", "fig11", "fig13", "infer", "pim")

#: Cache sizing for the inference family: the paper's interesting
#: regime has the gathered working set exceed the caches (its 64 MB
#: table vs 2 MB L2); at repro scale we shrink the caches instead so
#: the baseline's lane-walk thrashes while gathered lines stay
#: resident — the same trick the HTAP figure plays with htap_l2_size.
INFER_CACHE = {"l1_size": 1024, "l2_size": 8192}


def figure_specs(figure: str, scale: Scale,
                 mode: str = "event") -> list[RunSpec]:
    """The representative runs for ``figure`` at ``scale``.

    ``mode="fast"`` yields the vectorized twins of the same runs. Two
    figures need workload tweaks to stay within the fast path's
    deterministic envelope: fig10 drops the hardware prefetcher (the
    fast substrate has no timing for it to react to), and fig11 runs
    the phased fixed-count HTAP variant instead of the open-ended
    two-core race. Those parameter differences are visible in the spec
    (and therefore in the cache key), never silent.
    """
    from repro.db.workload import FIGURE9_MIXES

    if mode not in ("event", "fast"):
        raise ConfigError(
            f"unknown run mode {mode!r}; expected 'event' or 'fast'"
        )
    fast = mode == "fast"
    layouts = ("Row Store", "Column Store", "GS-DRAM")
    if figure == "fig9":
        mix = FIGURE9_MIXES[3]
        return [
            RunSpec(
                kind="transactions",
                layout=layout,
                params={
                    "mix": mix,
                    "num_tuples": scale.db_tuples,
                    "count": scale.db_transactions,
                },
                seed=42,
                mode=mode,
            )
            for layout in layouts
        ]
    if figure == "fig10":
        return [
            RunSpec(
                kind="analytics",
                layout=layout,
                params={
                    "query": (0,),
                    "num_tuples": scale.db_tuples,
                    "prefetch": not fast,
                },
                mode=mode,
            )
            for layout in layouts
        ]
    if figure == "fig11":
        params = {"num_tuples": scale.htap_tuples}
        if fast:
            params["txn_count"] = scale.db_transactions
        return [
            RunSpec(
                kind="htap",
                layout=layout,
                params=dict(params),
                config_overrides={"l2_size": scale.htap_l2_size},
                mode=mode,
            )
            for layout in ("Row Store", "GS-DRAM")
        ]
    if figure == "fig13":
        return [
            RunSpec(
                kind="gemm",
                params={"variant": variant, "n": scale.gemm_sizes[0], **extra},
                seed=3,
                mode=mode,
            )
            for variant, extra in (
                ("naive", {}),
                ("tiled", {"tile": 8}),
                ("gs", {"tile": 8}),
            )
        ]
    if figure == "infer":
        m, n, batch = scale.infer_gemv
        vocab, bags, bag_size = scale.infer_embed
        shapes = {
            "gemv": {"m": m, "n": n, "batch": batch},
            "embed": {"vocab": vocab, "bags": bags, "bag_size": bag_size},
            "kvcache": {"steps": scale.infer_kv_steps},
        }
        return [
            RunSpec(
                kind="infer",
                params={"workload": workload, "variant": variant, **shape},
                config_overrides=dict(INFER_CACHE),
                seed=11,
                mode=mode,
            )
            for workload, shape in shapes.items()
            for variant in ("baseline", "gs")
        ]
    if figure == "pim":
        # seed=1 reuses the memoized fig9/fig10 rows master, so the
        # ablation's table column is free when the DB figures already ran.
        return [
            RunSpec(
                kind="pim",
                params={
                    "workload": workload,
                    "variant": variant,
                    "num_tuples": scale.db_tuples,
                },
                seed=1,
                mode=mode,
            )
            for workload in ("sum", "filter")
            for variant in ("gs", "pim")
        ]
    raise ConfigError(
        f"unknown figure {figure!r}; expected one of {SPEC_FIGURES}"
    )


def spec_label(spec: RunSpec) -> str:
    """A short human label for one spec (trace track / log names)."""
    parts = [spec.kind]
    if spec.layout:
        parts.append(spec.layout)
    workload = spec.params.get("workload")
    if workload:
        parts.append(str(workload))
    variant = spec.params.get("variant")
    if variant:
        parts.append(str(variant))
    return ":".join(parts)
