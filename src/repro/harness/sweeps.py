"""Sensitivity sweeps over the design parameters.

The paper evaluates one configuration (GS-DRAM(8,3,3), degree-4
prefetch, 2 MB L2). These sweeps show how the headline analytics
result responds to each knob — the kind of sensitivity analysis an
artifact evaluation asks for:

- **shuffle stages** (0..3): how much of the benefit each butterfly
  stage buys (stage count bounds the largest single-READ stride);
- **prefetch degree** (0..8): interaction between gathers and the
  stride prefetcher;
- **L2 capacity**: the benefit persists from cache-starved to
  cache-rich configurations.

All sweep points are independent simulations and run through the
:mod:`repro.perf` pool/cache like the figure drivers.
"""

from __future__ import annotations

from repro.db.workload import AnalyticsQuery
from repro.errors import WorkloadError
from repro.perf import RunSpec, run_specs
from repro.utils.records import FigureResult

_QUERY = AnalyticsQuery((0,))


def sweep_shuffle_stages(num_tuples: int = 4096,
                         jobs: int | None = None) -> FigureResult:
    """Analytics cycles vs shuffle stage count.

    With ``s`` stages the largest single-READ stride is ``2^s``; the
    field scan (stride 8) therefore needs pattern ``2^s - 1`` gathers
    of partial groups — fewer stages mean more lines touched. Stage
    count 0 degenerates to row-store behaviour (the scan must fall back
    to pattern-0 loads).
    """
    figure = FigureResult(
        figure="sweep-stages",
        description=f"Analytics ({num_tuples} tuples) vs shuffle stages",
        x_label="stages",
    )
    stage_values = (1, 2, 3)
    # Reference: the row store (what stage 0 degenerates to), then one
    # partial-gather store per stage count.
    specs = [
        RunSpec(kind="analytics", layout="Row Store",
                params={"query": _QUERY, "num_tuples": num_tuples})
    ] + [
        RunSpec(
            kind="analytics",
            layout=f"partial-gather-{(1 << stages) - 1}",
            params={"query": _QUERY, "num_tuples": num_tuples},
            config_overrides={"shuffle_stages": stages},
        )
        for stages in stage_values
    ]
    runs = run_specs(specs, jobs=jobs)
    row = runs[0]
    for stages, run in zip(stage_values, runs[1:]):
        if not run.verified:
            raise WorkloadError(f"stages={stages}: wrong answer")
        figure.add_point("GS-DRAM", stages, run.result.cycles)
        figure.add_point("Row Store reference", stages, row.result.cycles)
    figure.notes.append(
        "each stage halves the lines a field scan touches; 3 stages "
        "reach the full 8x"
    )
    return figure


def sweep_prefetch_degree(num_tuples: int = 8192,
                          degrees: tuple[int, ...] = (0, 2, 4, 8),
                          jobs: int | None = None) -> FigureResult:
    """Analytics cycles vs prefetch degree, GS-DRAM vs Row Store."""
    figure = FigureResult(
        figure="sweep-prefetch",
        description=f"Analytics ({num_tuples} tuples) vs prefetch degree",
        x_label="degree",
    )
    points = [
        (degree, layout)
        for degree in degrees
        for layout in ("Row Store", "GS-DRAM")
    ]
    specs = [
        RunSpec(
            kind="analytics",
            layout=layout,
            params={
                "query": _QUERY,
                "num_tuples": num_tuples,
                "prefetch": degree > 0,
            },
            config_overrides={"prefetch_degree": max(degree, 1)},
        )
        for degree, layout in points
    ]
    for (degree, layout), run in zip(points, run_specs(specs, jobs=jobs)):
        if not run.verified:
            raise WorkloadError("prefetch sweep: wrong answer")
        figure.add_point(layout, degree, run.result.cycles)
    figure.notes.append("degree 0 disables the prefetcher")
    return figure


def sweep_l2_size(num_tuples: int = 8192,
                  sizes=(64 * 1024, 256 * 1024, 1024 * 1024),
                  jobs: int | None = None) -> FigureResult:
    """Analytics cycles vs L2 capacity (cold scans: expect flatness)."""
    figure = FigureResult(
        figure="sweep-l2",
        description=f"Analytics ({num_tuples} tuples) vs L2 size",
        x_label="l2_kib",
    )
    points = [
        (size, layout)
        for size in sizes
        for layout in ("Row Store", "GS-DRAM")
    ]
    specs = [
        RunSpec(
            kind="analytics",
            layout=layout,
            params={"query": _QUERY, "num_tuples": num_tuples,
                    "prefetch": True},
            config_overrides={"l2_size": size},
        )
        for size, layout in points
    ]
    for (size, layout), run in zip(points, run_specs(specs, jobs=jobs)):
        if not run.verified:
            raise WorkloadError("l2 sweep: wrong answer")
        figure.add_point(layout, size // 1024, run.result.cycles)
    figure.notes.append(
        "a cold single-pass scan is capacity-insensitive; the GS gap is "
        "a bandwidth property, not a cache-size artifact"
    )
    return figure
