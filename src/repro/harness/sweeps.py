"""Sensitivity sweeps over the design parameters.

The paper evaluates one configuration (GS-DRAM(8,3,3), degree-4
prefetch, 2 MB L2). These sweeps show how the headline analytics
result responds to each knob — the kind of sensitivity analysis an
artifact evaluation asks for:

- **shuffle stages** (0..3): how much of the benefit each butterfly
  stage buys (stage count bounds the largest single-READ stride);
- **prefetch degree** (0..8): interaction between gathers and the
  stride prefetcher;
- **L2 capacity**: the benefit persists from cache-starved to
  cache-rich configurations.
"""

from __future__ import annotations

from repro.db.engine import run_analytics
from repro.db.layouts import GSDRAMStore, RowStore
from repro.db.workload import AnalyticsQuery
from repro.errors import WorkloadError
from repro.utils.records import FigureResult

_QUERY = AnalyticsQuery((0,))


def sweep_shuffle_stages(num_tuples: int = 4096) -> FigureResult:
    """Analytics cycles vs shuffle stage count.

    With ``s`` stages the largest single-READ stride is ``2^s``; the
    field scan (stride 8) therefore needs pattern ``2^s - 1`` gathers
    of partial groups — fewer stages mean more lines touched. Stage
    count 0 degenerates to row-store behaviour (the scan must fall back
    to pattern-0 loads).
    """
    figure = FigureResult(
        figure="sweep-stages",
        description=f"Analytics ({num_tuples} tuples) vs shuffle stages",
        x_label="stages",
    )
    # Reference: the row store (what stage 0 degenerates to).
    row = run_analytics(RowStore(), _QUERY, num_tuples=num_tuples)
    for stages in (1, 2, 3):
        stride = 1 << stages
        pattern = stride - 1
        layout = _PartialGatherStore(pattern)
        run = run_analytics(
            layout, _QUERY, num_tuples=num_tuples,
            config_overrides={"shuffle_stages": stages},
        )
        if not run.verified:
            raise WorkloadError(f"stages={stages}: wrong answer")
        figure.add_point("GS-DRAM", stages, run.result.cycles)
        figure.add_point("Row Store reference", stages, row.result.cycles)
    figure.notes.append(
        "each stage halves the lines a field scan touches; 3 stages "
        "reach the full 8x"
    )
    return figure


class _PartialGatherStore(GSDRAMStore):
    """A GS store that scans with a smaller-stride pattern.

    With pattern ``p = 2^s - 1`` (s < 3), one gathered line holds field
    ``f`` for only ``2^s`` tuples (the other chips return other
    fields), so a field scan needs ``8 / 2^s`` gathers per 8-tuple
    group, touching proportionally more lines. The useful positions
    within each gathered line are computed from the gather geometry —
    the same mapping knowledge pattern-aware software always needs.
    """

    def __init__(self, pattern: int) -> None:
        super().__init__()
        self._scan_pattern = pattern

    def attach(self, system, num_tuples: int) -> None:
        if num_tuples % self.schema.num_fields != 0:
            from repro.errors import WorkloadError as _WE

            raise _WE("tuple count must be a multiple of 8")
        self.system = system
        self.num_tuples = num_tuples
        self.pattern = self._scan_pattern
        self.base = system.pattmalloc(
            num_tuples * self.schema.tuple_bytes, shuffle=True,
            pattern=self._scan_pattern,
        )

    def analytics_ops(self, query, on_value):
        import struct

        from repro.core.pattern import gather_spec
        from repro.cpu.isa import Compute, pattload

        self._require_attached()
        pattern = self._scan_pattern
        group = pattern + 1
        chips = self.schema.num_fields
        columns_per_row = 128
        sink = lambda b: on_value(struct.unpack("<Q", b)[0])
        for field in query.fields:
            self.schema.validate_field(field)
            for window in range(0, self.num_tuples, group):
                # The gathered line holding field `field` of tuples
                # window..window+group-1 is issued at this column:
                column = (window - window % group) + (field & pattern)
                spec = gather_spec(chips, pattern, column % columns_per_row)
                # Positions whose gathered value is field `field` of a
                # window tuple (value index == field).
                positions = [i for i, idx in enumerate(spec.indices)
                             if idx % chips == field]
                lead = True
                for position in positions:
                    address = self.base + column * 64 + position * 8
                    pc = (0x7300 if lead else 0x7380) + field
                    lead = False
                    yield pattload(address, pattern=pattern, pc=pc,
                                   on_value=sink)
                    yield Compute(1)


def sweep_prefetch_degree(num_tuples: int = 8192,
                          degrees: tuple[int, ...] = (0, 2, 4, 8)) -> FigureResult:
    """Analytics cycles vs prefetch degree, GS-DRAM vs Row Store."""
    figure = FigureResult(
        figure="sweep-prefetch",
        description=f"Analytics ({num_tuples} tuples) vs prefetch degree",
        x_label="degree",
    )
    for degree in degrees:
        overrides = {"prefetch_degree": max(degree, 1)}
        prefetch = degree > 0
        for layout_cls in (RowStore, GSDRAMStore):
            run = run_analytics(
                layout_cls(), _QUERY, num_tuples=num_tuples,
                prefetch=prefetch, config_overrides=overrides,
            )
            if not run.verified:
                raise WorkloadError("prefetch sweep: wrong answer")
            figure.add_point(layout_cls().name, degree, run.result.cycles)
    figure.notes.append("degree 0 disables the prefetcher")
    return figure


def sweep_l2_size(num_tuples: int = 8192,
                  sizes=(64 * 1024, 256 * 1024, 1024 * 1024)) -> FigureResult:
    """Analytics cycles vs L2 capacity (cold scans: expect flatness)."""
    figure = FigureResult(
        figure="sweep-l2",
        description=f"Analytics ({num_tuples} tuples) vs L2 size",
        x_label="l2_kib",
    )
    for size in sizes:
        for layout_cls in (RowStore, GSDRAMStore):
            run = run_analytics(
                layout_cls(), _QUERY, num_tuples=num_tuples,
                prefetch=True, config_overrides={"l2_size": size},
            )
            if not run.verified:
                raise WorkloadError("l2 sweep: wrong answer")
            figure.add_point(layout_cls().name, size // 1024, run.result.cycles)
    figure.notes.append(
        "a cold single-pass scan is capacity-insensitive; the GS gap is "
        "a bandwidth property, not a cache-size artifact"
    )
    return figure
