"""ML-inference workload family for GS-DRAM (paper Section 7 analog).

Three kernels whose memory behaviour is dominated by non-unit-stride
gathers — batched GEMV over interleaved weights, embedding-bag lookup,
and KV-cache attention gather — each runnable on the baseline
interleaved machine or the shuffled GS-DRAM machine, in cycle-level or
fast mode, with numpy oracles and recordable traces. The ingest
frontend additionally compiles *external* traces (same text format)
onto the gather machine, inferring patterns where the trace doesn't
annotate them.
"""

from repro.infer.generators import (
    GATHER_PATTERN,
    PREPARERS,
    VARIANTS,
    WORKLOADS,
    PreparedWorkload,
    prepare_embed,
    prepare_gemv,
    prepare_kvcache,
)
from repro.infer.ingest import (
    CompiledTrace,
    IngestRun,
    compile_trace,
    run_ingested,
)
from repro.infer.runner import (
    VARIANT_MECHANISMS,
    InferRun,
    replay_infer,
    run_infer,
)

__all__ = [
    "GATHER_PATTERN",
    "PREPARERS",
    "VARIANTS",
    "WORKLOADS",
    "PreparedWorkload",
    "prepare_gemv",
    "prepare_embed",
    "prepare_kvcache",
    "CompiledTrace",
    "IngestRun",
    "compile_trace",
    "run_ingested",
    "VARIANT_MECHANISMS",
    "InferRun",
    "run_infer",
    "replay_infer",
]
