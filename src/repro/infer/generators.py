"""ML-inference workload generators: GEMV, embedding-bag, KV-cache.

Each generator prepares one inference-style workload on a live system
(event or fast — the API is identical) and returns a
:class:`PreparedWorkload`: an op-stream factory plus an oracle-backed
finalizer. The three workloads cover the access patterns that dominate
modern inference serving, all of which are stride-8-value streams the
paper's pattern 7 turns into single-line gathers:

- **gemv** — batched GEMV over lane-interleaved weights: each group of
  8 output neurons stores weight ``k`` of all 8 rows in one line, so a
  single row's weights are a stride-64B scalar stream (baseline) or a
  pattern-7 gather per 8 weights (GS-DRAM). This is the weight layout
  HBM-PIMulator's Tracegen emits for PIM GEMV.
- **embed** — embedding-bag lookup: 8-dim embedding rows interleaved 8
  entries to a line group, with configurable table size and bag-size
  distribution. One entry's vector is 8 lines on the baseline, one
  gathered line on GS-DRAM.
- **kvcache** — decode-time attention over a growing KV cache laid out
  ``[t][d][h]``: appending a head's key scatters across the timestep's
  line group (``pattstore``), and every per-head key fetch is a
  stride-64B stream (baseline) or a pattern-7 gather (GS-DRAM).

Variants: ``"baseline"`` runs the interleaved layout on commodity DRAM
with scalar software gathers; ``"gs"`` places the same layout in a
shuffled ``pattmalloc`` region and uses pattload/pattstore. Op counts
per gathered group are identical (8 accesses either way, matching the
paper's SIMD-register word granularity); the win is line traffic.

Ops are emitted as :class:`CountingLoad` / :class:`CountingStore`
subclasses of the ISA ops so generators can account per-PC traffic
without a second bookkeeping pass; ``record_ops`` and both cores
dispatch them by ``isinstance``.
"""

from __future__ import annotations

import hashlib
import struct
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.cpu.isa import Compute, Load, Store
from repro.errors import WorkloadError

LINE_BYTES = 64
VALUES_PER_LINE = 8
#: Stride-8-value gather over 8 chips (Section 4.2's pattern 7).
GATHER_PATTERN = 7
_MASK = (1 << 64) - 1

WORKLOADS = ("gemv", "embed", "kvcache")
VARIANTS = ("baseline", "gs")

#: Static-PC bases, one block per workload so trace analysis sees each
#: strided stream as a distinct candidate.
PC_GEMV_X, PC_GEMV_W, PC_GEMV_OUT = 0x8100, 0x8110, 0x8120
PC_EMBED_TABLE, PC_EMBED_OUT = 0x8200, 0x8210
PC_KV_APPEND, PC_KV_KEY, PC_KV_OUT = 0x8300, 0x8310, 0x8320


class CountingLoad(Load):
    """A :class:`Load` that bumps a per-PC traffic counter on issue."""

    __slots__ = ()

    def __init__(self, counter: Counter, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        counter[self.pc] += 1


class CountingStore(Store):
    """A :class:`Store` that bumps a per-PC traffic counter on issue."""

    __slots__ = ()

    def __init__(self, counter: Counter, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        counter[self.pc] += 1


@dataclass
class PreparedWorkload:
    """One generator instance bound to a live system."""

    workload: str
    variant: str
    params: dict
    #: (base, size) of every allocated region, in allocation order.
    #: Shuffled regions are page-rounded by the allocator, so regions
    #: are not necessarily contiguous; reads walk this list.
    regions: list[tuple[int, int]]
    #: Fresh single-core op stream (generators are single-shot).
    ops: Callable[[], Iterator]
    #: After the run: (verified, answer_digest). Reads memory back, so
    #: call it only after capturing component stats.
    finalize: Callable[[], tuple[bool, str]]
    #: Oracle image of the concatenated regions after a correct run;
    #: replayed traces are verified against its digest.
    expected_image: Callable[[], bytes]
    #: Per-PC op counts, filled as the core consumes the stream.
    pc_traffic: Counter = field(default_factory=Counter)

    def read_image(self, system) -> bytes:
        """The live concatenated region bytes (drains dirty lines)."""
        return b"".join(
            system.mem_read(base, size) for base, size in self.regions
        )


def _require(condition: bool, message: str, **context) -> None:
    if not condition:
        raise WorkloadError(message, **context)


def _interleave(rows: np.ndarray) -> bytes:
    """Lane-interleave ``rows`` (shape (n, k), n % 8 == 0) into line
    groups: line ``g*k + c`` holds value ``c`` of rows ``8g..8g+7``."""
    n, k = rows.shape
    return np.ascontiguousarray(
        rows.reshape(n // 8, 8, k).transpose(0, 2, 1)
    ).astype("<u8").tobytes()


def _pack(values) -> bytes:
    """Little-endian u64 bytes of ``values`` (ndarray or int iterable)."""
    if isinstance(values, np.ndarray):
        return np.ascontiguousarray(values.astype(np.uint64)).astype(
            "<u8"
        ).tobytes()
    return np.array([v & _MASK for v in values], dtype=np.uint64).astype(
        "<u8"
    ).tobytes()


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _u64s(data: bytes) -> list[int]:
    return list(struct.unpack(f"<{len(data) // 8}Q", data))


def _alloc(system, variant: str, size: int) -> int:
    """The workload's gathered region: shuffled on GS, plain otherwise."""
    if variant == "gs":
        return system.pattmalloc(size, shuffle=True, pattern=GATHER_PATTERN)
    return system.pattmalloc(size)


def _group_reads(counter: Counter, variant: str, base: int, group_line: int,
                 lane: int, pc: int, on_value) -> Iterator:
    """The 8 values at ``lane`` across line group ``group_line..+8``.

    Baseline: 8 scalar loads walking the group at a line stride.
    GS-DRAM: 4 16-byte pattloads of the one line that gathers the lane
    (two SIMD values per load, as in the paper's GEMM kernel).
    Either way ``on_value`` sees the 8 values in the same order.
    """
    if variant == "gs":
        line = base + (group_line + lane) * LINE_BYTES
        for j in range(4):
            yield CountingLoad(counter, line + j * 16, size=16,
                               pattern=GATHER_PATTERN, pc=pc,
                               on_value=on_value)
    else:
        for d in range(8):
            yield CountingLoad(
                counter, base + (group_line + d) * LINE_BYTES + lane * 8,
                size=8, pc=pc, on_value=on_value)


# ----------------------------------------------------------------------
# Batched GEMV
# ----------------------------------------------------------------------
def prepare_gemv(system, variant: str, m: int = 16, n: int = 16,
                 batch: int = 2, seed: int = 11) -> PreparedWorkload:
    """Batched GEMV ``out[q] = W @ x[q]`` over lane-interleaved weights."""
    _require(variant in VARIANTS, f"unknown variant {variant!r}")
    _require(m > 0 and m % 8 == 0, "m must be a positive multiple of 8")
    _require(n > 0 and n % 8 == 0, "n must be a positive multiple of 8")
    _require(batch > 0, "batch must be positive")

    rng = np.random.default_rng(seed)
    weights = rng.integers(0, 1 << 16, size=(m, n), dtype=np.int64)
    inputs = rng.integers(0, 1 << 16, size=(batch, n), dtype=np.int64)

    w_base = _alloc(system, variant, m * n * 8)
    x_base = system.pattmalloc(batch * n * 8)
    out_base = system.pattmalloc(batch * m * 8)
    system.mem_write(w_base, _interleave(weights))
    system.mem_write(x_base, inputs.astype("<u8").tobytes())

    counter = Counter()
    outputs: list[int] = []

    def ops():
        for q in range(batch):
            xs: list[int] = []
            x_sink = lambda data, xs=xs: xs.extend(_u64s(data))
            for k in range(0, n, 2):
                yield CountingLoad(counter, x_base + (q * n + k) * 8,
                                   size=16, pc=PC_GEMV_X, on_value=x_sink)
            for g in range(m // 8):
                for lane in range(8):
                    ws: list[int] = []
                    w_sink = lambda data, ws=ws: ws.extend(_u64s(data))
                    for c in range(n // 8):
                        yield from _group_reads(
                            counter, variant, w_base, g * n + 8 * c, lane,
                            PC_GEMV_W, w_sink)
                        yield Compute(8)  # 8 multiply-accumulates
                    acc = sum(w * x for w, x in zip(ws, xs)) & _MASK
                    outputs.append(acc)
                    yield CountingStore(
                        counter, out_base + (q * m + 8 * g + lane) * 8,
                        struct.pack("<Q", acc), pc=PC_GEMV_OUT)

    # Batched oracle: row q of inputs @ W.T is W @ x[q]; values stay
    # far below 2**63, so the mask is a representation change only.
    oracle = (inputs @ weights.T).reshape(-1).astype(np.uint64).tolist()

    def expected_image() -> bytes:
        return (_interleave(weights) + inputs.astype("<u8").tobytes()
                + _pack(oracle))

    prepared = PreparedWorkload(
        workload="gemv", variant=variant,
        params={"m": m, "n": n, "batch": batch, "seed": seed},
        regions=[(w_base, m * n * 8), (x_base, batch * n * 8),
                 (out_base, batch * m * 8)],
        ops=ops, finalize=None, expected_image=expected_image,
        pc_traffic=counter,
    )

    def finalize() -> tuple[bool, str]:
        verified = (outputs == oracle
                    and prepared.read_image(system) == expected_image())
        return verified, _digest(_pack(outputs))

    prepared.finalize = finalize
    return prepared


# ----------------------------------------------------------------------
# Embedding-bag lookup
# ----------------------------------------------------------------------
def prepare_embed(system, variant: str, vocab: int = 64, bags: int = 6,
                  bag_size: int = 4, bag_dist: str = "fixed",
                  seed: int = 11) -> PreparedWorkload:
    """Embedding-bag sum over an 8-dim table, 8 entries per line group.

    ``bag_dist`` picks the bag-size distribution: ``"fixed"`` uses
    ``bag_size`` everywhere; ``"uniform"`` draws each bag's size from
    ``[1, 2*bag_size]`` (mean ``bag_size``-ish, seeded).
    """
    _require(variant in VARIANTS, f"unknown variant {variant!r}")
    _require(vocab > 0 and vocab % 8 == 0,
             "vocab must be a positive multiple of 8")
    _require(bags > 0, "bags must be positive")
    _require(bag_size > 0, "bag_size must be positive")
    _require(bag_dist in ("fixed", "uniform"),
             f"unknown bag_dist {bag_dist!r}")

    rng = np.random.default_rng(seed)
    table = rng.integers(0, 1 << 16, size=(vocab, 8), dtype=np.int64)
    if bag_dist == "fixed":
        sizes = [bag_size] * bags
    else:
        sizes = [int(s) for s in
                 rng.integers(1, 2 * bag_size + 1, size=bags)]
    bag_indices = [
        [int(e) for e in rng.integers(0, vocab, size=size)]
        for size in sizes
    ]

    table_base = _alloc(system, variant, vocab * 8 * 8)
    out_base = system.pattmalloc(bags * 8 * 8)
    system.mem_write(table_base, _interleave(table))

    counter = Counter()
    outputs: list[int] = []

    def ops():
        for b, entries in enumerate(bag_indices):
            acc = [0] * 8
            for entry in entries:
                group, lane = divmod(entry, 8)
                row: list[int] = []
                row_sink = lambda data, row=row: row.extend(_u64s(data))
                yield from _group_reads(
                    counter, variant, table_base, group * 8, lane,
                    PC_EMBED_TABLE, row_sink)
                yield Compute(8)  # 8 element-wise adds
                for d in range(8):
                    acc[d] = (acc[d] + row[d]) & _MASK
            outputs.extend(acc)
            for d in range(8):
                yield CountingStore(counter, out_base + (b * 8 + d) * 8,
                                    struct.pack("<Q", acc[d]),
                                    pc=PC_EMBED_OUT)

    # Per-bag batched gather+sum replaces the per-(entry, dim) loop.
    oracle = [
        value
        for entries in bag_indices
        for value in table[np.array(entries, dtype=np.int64)]
        .sum(axis=0)
        .astype(np.uint64)
        .tolist()
    ]

    def expected_image() -> bytes:
        return _interleave(table) + _pack(oracle)

    prepared = PreparedWorkload(
        workload="embed", variant=variant,
        params={"vocab": vocab, "bags": bags, "bag_size": bag_size,
                "bag_dist": bag_dist, "seed": seed},
        regions=[(table_base, vocab * 64), (out_base, bags * 64)],
        ops=ops, finalize=None, expected_image=expected_image,
        pc_traffic=counter,
    )

    def finalize() -> tuple[bool, str]:
        verified = (outputs == oracle
                    and prepared.read_image(system) == expected_image())
        return verified, _digest(_pack(outputs))

    prepared.finalize = finalize
    return prepared


# ----------------------------------------------------------------------
# KV-cache attention gather
# ----------------------------------------------------------------------
def prepare_kvcache(system, variant: str, steps: int = 6, heads: int = 8,
                    seed: int = 11) -> PreparedWorkload:
    """Decode-loop attention: append one timestep's keys, then score the
    whole (growing) context per head.

    The cache is laid out ``[t][d][h]``: line ``t*8 + d`` holds dim
    ``d`` of all 8 heads at timestep ``t``, so one head's key vector is
    a stride-64B column of the timestep's 8-line group. Appends write
    that column (scalar stores vs pattstore scatters) and every score
    re-reads the columns of all earlier timesteps (scalar loads vs
    pattern-7 gathers). Scores are the per-(step, head) sums of
    Q·K dot products over the context so far.
    """
    _require(variant in VARIANTS, f"unknown variant {variant!r}")
    _require(steps > 0, "steps must be positive")
    _require(heads == 8, "heads must be 8 (one line group per timestep)")

    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 12, size=(steps, heads, 8), dtype=np.int64)
    queries = rng.integers(0, 1 << 12, size=(steps, heads, 8),
                           dtype=np.int64)

    kv_base = _alloc(system, variant, steps * heads * 8 * 8)
    out_base = system.pattmalloc(steps * heads * 8)
    system.mem_write(kv_base, bytes(steps * heads * 64))

    counter = Counter()
    outputs: list[int] = []

    def ops():
        for s in range(steps):
            # Append K[s]: one strided column write per head.
            for h in range(heads):
                for d in range(8):
                    payload = struct.pack("<Q", int(keys[s, h, d]) & _MASK)
                    if variant == "gs":
                        # pattstore scatters byte offset d*8 of the
                        # gathered line to lane h of line s*8+d.
                        yield CountingStore(
                            counter, kv_base + (s * 8 + h) * LINE_BYTES + d * 8,
                            payload, pattern=GATHER_PATTERN, pc=PC_KV_APPEND)
                    else:
                        yield CountingStore(
                            counter, kv_base + (s * 8 + d) * LINE_BYTES + h * 8,
                            payload, pc=PC_KV_APPEND)
            # Attention: every head scores the context so far.
            for h in range(heads):
                acc = 0
                for t in range(s + 1):
                    k_vec: list[int] = []
                    k_sink = lambda data, k_vec=k_vec: k_vec.extend(
                        _u64s(data))
                    yield from _group_reads(
                        counter, variant, kv_base, t * 8, h,
                        PC_KV_KEY, k_sink)
                    yield Compute(8)  # dot product
                    acc = (acc + sum(
                        int(queries[s, h, d]) * k_vec[d] for d in range(8)
                    )) & _MASK
                outputs.append(acc)
                yield CountingStore(counter, out_base + (s * heads + h) * 8,
                                    struct.pack("<Q", acc), pc=PC_KV_OUT)

    # scores[s, t, h] = Q[s, h] . K[t, h]; the causal prefix sum over t
    # lands on the diagonal of the cumulative sum. Products stay below
    # 2**24 and the full sum below 2**40, so int64 is exact.
    scores = np.einsum("shd,thd->sth", queries, keys)
    oracle = (
        np.cumsum(scores, axis=1)[np.arange(steps), np.arange(steps), :]
        .reshape(-1)
        .astype(np.uint64)
        .tolist()
    )

    def expected_image() -> bytes:
        # Final cache holds every appended key in [t][d][h] order.
        cache = np.ascontiguousarray(
            keys.transpose(0, 2, 1)).astype("<u8").tobytes()
        return cache + _pack(oracle)

    prepared = PreparedWorkload(
        workload="kvcache", variant=variant,
        params={"steps": steps, "heads": heads, "seed": seed},
        regions=[(kv_base, steps * heads * 64),
                 (out_base, steps * heads * 8)],
        ops=ops, finalize=None, expected_image=expected_image,
        pc_traffic=counter,
    )

    def finalize() -> tuple[bool, str]:
        verified = (outputs == oracle
                    and prepared.read_image(system) == expected_image())
        return verified, _digest(_pack(outputs))

    prepared.finalize = finalize
    return prepared


PREPARERS = {
    "gemv": prepare_gemv,
    "embed": prepare_embed,
    "kvcache": prepare_kvcache,
}
