"""Trace-ingest frontend: compile external PIM-style traces to op streams.

The entry seam for workloads this repo did not generate: any trace in
the :mod:`repro.trace.format` text format (the same line-oriented shape
HBM-PIMulator-style tracegens emit) compiles into a pattload/pattstore
op stream and runs on a GS-DRAM machine.

Two translation rules, in priority order:

1. **Explicit annotations win.** Records carrying a non-zero pattern ID
   replay verbatim as pattload/pattstore — an authoring tool that
   already knows its layout keeps full control.
2. **Pattern inference for the rest.** :func:`repro.trace.analysis.
   analyze` nominates static PCs whose pattern-0 streams move at a
   record stride; :func:`compile_trace` rewrites each aligned run of
   ``chips`` consecutive single-value loads from such a PC (one lane
   walked down a line group) into ``chips`` pattloads of the one line
   that gathers the lane. Op count is unchanged; the run's line
   traffic drops from ``chips`` lines to 1, exactly the transformation
   a GS-aware compiler would apply. Runs that are misaligned, mixed
   with stores, or interrupted stay scalar — the rewrite never changes
   which bytes a load returns.

:func:`run_ingested` executes a compiled trace on a fresh shuffled
region with deterministically seeded contents, rebasing addresses so
line-group alignment is preserved, and digests every loaded value — so
`rewrite=True` vs `rewrite=False` runs of the same trace are
differentially comparable (same values, less traffic), which is what
:mod:`repro.check.inference` enforces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.cpu.isa import Compute, Load, Store
from repro.errors import WorkloadError
from repro.sim.config import table1_config
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.trace.analysis import TraceReport, analyze
from repro.trace.format import TraceRecord
from repro.vec.shim import component_snapshot

LINE_BYTES = 64
VALUE_BYTES = 8


@dataclass
class CompiledTrace:
    """An ingested trace, ready to replay."""

    #: The compiled records (rewritten where inference applied).
    records: list[TraceRecord]
    #: Analysis of the *input* trace (candidates, footprint, patterns).
    report: TraceReport
    #: pc -> number of scalar runs rewritten into gathers.
    rewritten: dict[int, int] = field(default_factory=dict)

    @property
    def gather_runs(self) -> int:
        return sum(self.rewritten.values())


def _candidate_pcs(report: TraceReport, chips: int) -> set[int]:
    """PCs whose dominant stride is exactly one line (full-group runs)."""
    return {
        candidate.pc
        for candidate in report.candidates
        if candidate.stride == LINE_BYTES
        and candidate.line_reduction == chips
    }


def _rewrite_run(run: list[TraceRecord], chips: int) -> list[TraceRecord]:
    """Gathered equivalent of one aligned scalar lane-walk, or None."""
    first = run[0]
    group_line = first.address // LINE_BYTES
    lane_offset = first.address % LINE_BYTES
    if group_line % chips or lane_offset % VALUE_BYTES:
        return None
    for step, record in enumerate(run):
        if record.address != (group_line + step) * LINE_BYTES + lane_offset:
            return None
    lane = lane_offset // VALUE_BYTES
    gathered_line = (group_line + lane) * LINE_BYTES
    return [
        TraceRecord(
            kind="L", core=first.core,
            address=gathered_line + j * VALUE_BYTES, size=VALUE_BYTES,
            pattern=chips - 1, pc=first.pc,
        )
        for j in range(chips)
    ]


def compile_trace(
    records: list[TraceRecord],
    rewrite: bool = True,
    chips: int = 8,
) -> CompiledTrace:
    """Compile a trace: honour explicit patterns, infer the rest.

    With ``rewrite=False`` the records pass through untouched (explicit
    annotations still replay as gathers — they are part of the trace).
    """
    report = analyze(records, line_bytes=LINE_BYTES,
                     value_bytes=VALUE_BYTES, chips=chips)
    if not rewrite:
        return CompiledTrace(records=list(records), report=report)

    candidates = _candidate_pcs(report, chips)
    rewritten: dict[int, int] = {}
    out: list[TraceRecord] = []
    run: list[TraceRecord] = []

    def flush() -> None:
        nonlocal run
        if len(run) == chips:
            gathered = _rewrite_run(run, chips)
            if gathered is not None:
                rewritten[run[0].pc] = rewritten.get(run[0].pc, 0) + 1
                out.extend(gathered)
                run = []
                return
        out.extend(run)
        run = []

    for record in records:
        eligible = (
            record.kind == "L"
            and record.pattern == 0
            and record.size == VALUE_BYTES
            and record.pc in candidates
        )
        if not eligible:
            flush()
            out.append(record)
            continue
        if run and (record.pc != run[0].pc or len(run) == chips):
            flush()
        run.append(record)
        if len(run) == chips:
            flush()
    flush()
    return CompiledTrace(records=out, report=report, rewritten=rewritten)


@dataclass
class IngestRun:
    """Outcome of executing one compiled trace."""

    compiled: CompiledTrace
    mode: str
    result: RunResult
    #: sha256 over every loaded value, in program order.
    values_digest: str
    #: sha256 over the footprint region after the run.
    memory_digest: str
    loads_observed: int = 0
    component_stats: dict | None = None

    @property
    def work_proxy(self) -> int:
        return self.result.cycles or self.result.memory_accesses


def _footprint_lines(records: list[TraceRecord]) -> tuple[int, int]:
    lines = [
        record.address // LINE_BYTES
        for record in records
        if record.kind in ("L", "S")
    ]
    if not lines:
        raise WorkloadError("trace touches no memory")
    # A patterned access at line L reaches the whole aligned group.
    last = max(record.address // LINE_BYTES + (8 if record.pattern else 1)
               for record in records if record.kind in ("L", "S"))
    return min(lines), last


def run_ingested(
    records: list[TraceRecord],
    rewrite: bool = True,
    mode: str = "event",
    chips: int = 8,
    init_seed: int = 7,
    config_overrides: dict | None = None,
    compiled: CompiledTrace | None = None,
) -> IngestRun:
    """Execute an ingested trace on a GS-DRAM machine.

    The trace's line footprint is rebased into one shuffled allocation,
    padded so every line keeps its index modulo ``chips`` (gather
    groups stay aligned), and filled with seeded deterministic bytes;
    stores then overwrite exactly what the trace says. Only single-core
    traces are supported here (multi-core traces replay through
    ``replay_ops`` on an event machine directly).
    """
    if any(record.core != 0 for record in records):
        raise WorkloadError(
            "ingest execution expects a single-core trace",
            cores=sorted({r.core for r in records}),
        )
    if compiled is None:
        compiled = compile_trace(records, rewrite=rewrite, chips=chips)

    min_line, end_line = _footprint_lines(records)
    pad = min_line % chips
    total_lines = end_line - (min_line - pad)
    overrides = config_overrides or {}
    config = table1_config(**overrides)
    if mode == "fast":
        from repro.vec.fastpath import FastSystem

        system = FastSystem(config)
    elif mode == "event":
        system = System(config)
    else:
        raise WorkloadError(f"unknown ingest mode {mode!r}")

    base = system.pattmalloc(total_lines * LINE_BYTES, shuffle=True,
                             pattern=chips - 1)
    shift = base - (min_line - pad) * LINE_BYTES
    rng = np.random.default_rng(init_seed)
    system.mem_write(
        base,
        rng.integers(0, 256, size=total_lines * LINE_BYTES,
                     dtype=np.uint8).tobytes(),
    )

    loaded: list[bytes] = []

    def ops():
        for record in compiled.records:
            if record.kind == "C":
                yield Compute(record.count)
            elif record.kind == "L":
                yield Load(record.address + shift, size=record.size,
                           pattern=record.pattern, pc=record.pc,
                           on_value=loaded.append)
            else:
                yield Store(record.address + shift, record.payload,
                            pattern=record.pattern, pc=record.pc)

    result = system.run([ops()])
    stats = component_snapshot(system)
    image = system.mem_read(base, total_lines * LINE_BYTES)
    return IngestRun(
        compiled=compiled, mode=mode, result=result,
        values_digest=hashlib.sha256(b"".join(loaded)).hexdigest(),
        memory_digest=hashlib.sha256(image).hexdigest(),
        loads_observed=len(loaded),
        component_stats=stats,
    )
