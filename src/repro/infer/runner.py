"""Drivers for the inference workload family (``kind="infer"`` specs).

One code path serves both execution modes: ``mode="event"`` builds the
cycle-level :class:`~repro.sim.System`, ``mode="fast"`` the drop-in
:class:`~repro.vec.fastpath.FastSystem` — same allocation, same op
stream, same oracle, so event-vs-fast equivalence is checked by
construction plus the full-stat battery in
:mod:`repro.check.inference`, not by maintaining two kernels.

``run_infer`` generates and runs a workload; ``replay_infer`` rebuilds
the identical machine + memory image but drives it from a recorded
trace instead of the generator, which is how the check layer proves
generated and ingested streams are the same workload.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ConfigError, WorkloadError
from repro.infer.generators import PREPARERS, VARIANTS, WORKLOADS
from repro.sim.config import plain_dram_config, table1_config
from repro.sim.results import RunResult, StageTimer
from repro.sim.system import System
from repro.trace.format import TraceRecord, record_ops, replay_ops
from repro.vec.shim import component_snapshot

#: Paper-style mechanism labels for the two variants.
VARIANT_MECHANISMS = {"baseline": "Interleaved (DRAM)",
                      "gs": "Shuffled (GS-DRAM)"}


@dataclass
class InferRun:
    """Outcome of one inference workload run (either mode)."""

    workload: str
    variant: str
    mode: str
    params: dict
    result: RunResult
    verified: bool
    #: sha256 over the workload's output values in program order —
    #: equal across modes (and across generate/replay) iff every
    #: computed value is equal. Replayed runs have no Python-side
    #: consumers, so theirs is the memory-image digest criterion only.
    answer: str
    #: sha256 over the final bytes of every allocated region.
    memory_digest: str
    #: Records captured when the run was traced (0 otherwise).
    trace_records: int = 0
    #: Per-PC op counts (generated runs only).
    pc_traffic: dict = field(default_factory=dict)
    #: Per-component stat dicts for the equivalence battery.
    component_stats: dict | None = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def work_proxy(self) -> int:
        """Ranking metric valid in both modes: cycles when timed, DRAM
        line traffic on the fast path (see ``GemmRun.work_proxy``)."""
        return self.result.cycles or self.result.memory_accesses


def _build_system(variant: str, mode: str, config_overrides: dict | None):
    if variant not in VARIANTS:
        raise ConfigError(f"unknown infer variant {variant!r}; "
                          f"expected one of {VARIANTS}")
    if mode not in ("event", "fast"):
        raise ConfigError(f"unknown run mode {mode!r}")
    overrides = config_overrides or {}
    config = (table1_config(**overrides) if variant == "gs"
              else plain_dram_config(**overrides))
    if mode == "fast":
        from repro.vec.fastpath import FastSystem

        return FastSystem(config)
    return System(config)


def _prepare(system, workload: str, variant: str, params: dict):
    if workload not in WORKLOADS:
        raise ConfigError(f"unknown infer workload {workload!r}; "
                          f"expected one of {WORKLOADS}")
    return PREPARERS[workload](system, variant, **params)


def run_infer(
    workload: str,
    variant: str,
    mode: str = "event",
    config_overrides: dict | None = None,
    record_to: list[TraceRecord] | None = None,
    **params,
) -> InferRun:
    """Generate, run, and oracle-verify one inference workload.

    Pass ``record_to`` to tee the op stream into a trace (the list is
    filled as the core consumes ops).
    """
    timer = StageTimer()
    with timer.stage("setup"):
        system = _build_system(variant, mode, config_overrides)
    with timer.stage("generate"):
        prepared = _prepare(system, workload, variant, params)
    ops = prepared.ops()
    if record_to is not None:
        ops = record_ops(ops, 0, record_to)
    with timer.stage("run"):
        result = system.run([ops])
    # Snapshot before finalize: reading memory back drains dirty lines,
    # which would perturb the writeback/DBI counters the battery diffs.
    stats = component_snapshot(system)
    with timer.stage("verify"):
        verified, answer = prepared.finalize()
        memory_digest = hashlib.sha256(
            prepared.read_image(system)
        ).hexdigest()
    timer.attach(result)
    return InferRun(
        workload=workload, variant=variant, mode=mode,
        params=dict(prepared.params), result=result, verified=verified,
        answer=answer, memory_digest=memory_digest,
        trace_records=len(record_to) if record_to is not None else 0,
        pc_traffic=dict(prepared.pc_traffic),
        component_stats=stats,
    )


def replay_infer(
    workload: str,
    variant: str,
    records: list[TraceRecord],
    mode: str = "event",
    config_overrides: dict | None = None,
    **params,
) -> InferRun:
    """Re-run a recorded inference trace on an identically built machine.

    Allocation and initial memory come from the generator (same seeds,
    same layout); the op stream comes from ``records``. Because
    replayed stores carry their exact payloads, a faithful trace must
    reproduce the generated run's final memory image — ``verified``
    here means the replayed image matches the *oracle* image, and the
    check layer additionally diffs result stats against the generated
    twin.
    """
    timer = StageTimer()
    with timer.stage("setup"):
        system = _build_system(variant, mode, config_overrides)
    with timer.stage("generate"):
        prepared = _prepare(system, workload, variant, params)
    if any(record.core != 0 for record in records):
        raise WorkloadError(
            "inference replay expects a single-core trace",
            cores=sorted({r.core for r in records}),
        )
    with timer.stage("run"):
        result = system.run([replay_ops(records, core=0)])
    stats = component_snapshot(system)
    with timer.stage("verify"):
        image = prepared.read_image(system)
        expected = prepared.expected_image()
        memory_digest = hashlib.sha256(image).hexdigest()
    timer.attach(result)
    return InferRun(
        workload=workload, variant=variant, mode=mode,
        params=dict(prepared.params), result=result,
        verified=image == expected,
        answer="", memory_digest=memory_digest,
        trace_records=len(records),
        component_stats=stats,
    )
