"""Key-value store application (paper Section 5.3, pattern 1)."""

from repro.kvstore.store import KVStore, LookupResult

__all__ = ["KVStore", "LookupResult"]
