"""Key-value store on GS-DRAM (paper Section 5.3).

The paper's pattern-1 use case: with 8-byte keys and 8-byte values
stored as adjacent pairs, the cache line (pattern 0, column c) holds
four key-value pairs, while the *gathered* line (pattern 1, even
column) holds eight consecutive keys and (pattern 1, odd column) eight
consecutive values.

- ``insert`` benefits from the pair layout (key and value in one line,
  pattern 0);
- ``lookup`` scans keys eight-per-cache-line with pattern 1, touching
  half the lines a pair-layout scan would.

The store is functional + timed like everything else: operations are
instruction streams, and results are checked against a dict oracle.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.cpu.isa import Compute, Load, Store, pattload
from repro.errors import WorkloadError
from repro.sim.system import System

#: Bytes per key / per value.
SLOT = 8
#: Pairs per cache line (64 / 16).
PAIRS_PER_LINE = 4
#: Keys per gathered line with pattern 1 (one per chip).
KEYS_PER_GATHER = 8
#: Stride-2 pattern.
PATTERN = 1

_PC_INSERT, _PC_SCAN_LEAD, _PC_SCAN_BODY, _PC_VALUE = 0x5000, 0x5001, 0x5002, 0x5003


@dataclass
class LookupResult:
    """Mutable carrier for a scan's outcome."""

    found: bool = False
    value: int = 0
    keys_examined: int = 0


class KVStore:
    """An append-only KV array with gather-accelerated key scans."""

    def __init__(self, system: System, capacity: int) -> None:
        if not system.module.supports_patterns:
            raise WorkloadError("KVStore requires a GS-DRAM system")
        if capacity % KEYS_PER_GATHER != 0:
            raise WorkloadError(
                f"capacity must be a multiple of {KEYS_PER_GATHER}"
            )
        self.system = system
        self.capacity = capacity
        self.count = 0
        self.base = system.pattmalloc(
            capacity * 2 * SLOT, shuffle=True, pattern=PATTERN
        )
        self.oracle: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def pair_address(self, index: int) -> int:
        """Address of pair ``index``'s key (value follows at +8)."""
        return self.base + index * 2 * SLOT

    def gather_key_address(self, group: int, position: int) -> int:
        """Address of the ``position``-th key in key-gather line ``group``.

        Key-gather lines sit at even columns: group g's gathered line is
        issued at column 2g and covers the keys of pairs 8g .. 8g+7.
        """
        line = 2 * group
        return self.base + line * 64 + position * SLOT

    # ------------------------------------------------------------------
    # Operations (instruction streams)
    # ------------------------------------------------------------------
    def insert_ops(self, key: int, value: int) -> Iterator:
        """Append one pair (pattern-0 store of key and value together)."""
        if self.count >= self.capacity:
            raise WorkloadError("KV store is full")
        index = self.count
        self.count += 1
        self.oracle[key] = value
        payload = struct.pack("<QQ", key, value)
        yield Compute(4)  # slot bookkeeping
        yield Store(self.pair_address(index), payload, pc=_PC_INSERT)

    def lookup_ops(self, key: int, result: LookupResult) -> Iterator:
        """Scan keys with pattern-1 gathers; fetch the value on a match.

        The scan walks gathered key lines (8 keys per line, 1 miss + 7
        hits each); a pair-layout scan would touch 2x the lines.
        """
        groups = (self.count + KEYS_PER_GATHER - 1) // KEYS_PER_GATHER
        match = [None]

        def check(position_base: int, data: bytes) -> None:
            found_key = struct.unpack("<Q", data)[0]
            result.keys_examined += 1
            if found_key == key and match[0] is None:
                match[0] = position_base

        for group in range(groups):
            for position in range(KEYS_PER_GATHER):
                index = group * KEYS_PER_GATHER + position
                if index >= self.count:
                    break
                pc = _PC_SCAN_LEAD if position == 0 else _PC_SCAN_BODY
                yield pattload(
                    self.gather_key_address(group, position),
                    pattern=PATTERN,
                    pc=pc,
                    on_value=lambda data, idx=index: check(idx, data),
                )
                yield Compute(1)  # compare
            if match[0] is not None:
                break

        if match[0] is not None:
            def capture(data: bytes) -> None:
                result.found = True
                result.value = struct.unpack("<Q", data)[0]

            yield Load(
                self.pair_address(match[0]) + SLOT, pc=_PC_VALUE,
                on_value=capture,
            )

    # ------------------------------------------------------------------
    # Whole-workload helpers
    # ------------------------------------------------------------------
    def bulk_insert_ops(self, pairs: list[tuple[int, int]]) -> Iterator:
        for key, value in pairs:
            yield from self.insert_ops(key, value)

    def scan_all_keys_ops(self, sink) -> Iterator:
        """Enumerate every key via gathers (analytics-style key scan)."""
        groups = self.count // KEYS_PER_GATHER
        for group in range(groups):
            for position in range(KEYS_PER_GATHER):
                pc = _PC_SCAN_LEAD if position == 0 else _PC_SCAN_BODY
                yield pattload(
                    self.gather_key_address(group, position),
                    pattern=PATTERN,
                    pc=pc,
                    on_value=lambda data: sink(struct.unpack("<Q", data)[0]),
                )
                yield Compute(1)
