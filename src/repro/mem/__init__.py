"""Memory controller: requests, schedulers, timed command engine."""

from repro.mem.controller import MemoryController
from repro.mem.impulse import ImpulseController, ImpulseModule
from repro.mem.mapping import (
    MappingPolicy,
    PIMRowGroupPolicy,
    StaticPatternPolicy,
)
from repro.mem.profile import (
    BandwidthProfile,
    RowLocality,
    bandwidth_profile,
    row_locality,
)
from repro.mem.request import MemoryRequest, Phase, RequestKind
from repro.mem.schedulers import FCFS, FRFCFS, Scheduler

__all__ = [
    "BandwidthProfile",
    "FCFS",
    "FRFCFS",
    "ImpulseController",
    "ImpulseModule",
    "MappingPolicy",
    "PIMRowGroupPolicy",
    "RowLocality",
    "StaticPatternPolicy",
    "bandwidth_profile",
    "row_locality",
    "MemoryController",
    "MemoryRequest",
    "Phase",
    "RequestKind",
    "Scheduler",
]
