"""Multi-channel memory systems (paper Section 4.2).

Table 1's evaluation machine has a single channel, but Section 4.2
notes that with multiple channels (or ranks) the controller "must
access the corresponding cache line within each channel ... and
interleave the data from different channels appropriately".

This module provides a clean multi-channel composition:

- :class:`MultiChannelModule` — N identical modules behind one
  module-shaped facade. Interleaving is at **DRAM-row granularity**
  (consecutive global rows alternate channels), so a gathered group —
  which by construction lives inside one row — never straddles
  channels and every request routes to exactly one channel. (Cache-
  line-granularity interleaving would split gathers across channels;
  the facade rejects that configuration explicitly rather than model
  it wrong.)
- :class:`MultiChannelController` — one controller per channel plus a
  router; aggregate statistics mirror the single-controller interface.

Bank identifiers in the combined address space are globalised
(``channel * banks_per_module + local_bank``) so cache-layer row keys
stay unique.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import DecodedAddress
from repro.dram.module import DRAMModule
from repro.errors import AddressError, ConfigError
from repro.mem.controller import MemoryController
from repro.mem.request import MemoryRequest
from repro.mem.schedulers import Scheduler
from repro.utils.events import Engine
from repro.utils.statistics import Histogram, StatGroup


@dataclass(frozen=True)
class _CombinedGeometry:
    """Geometry facade over N identical channels."""

    channels: int
    chips: int
    banks: int  # global bank count (channels * per-channel banks)
    rows_per_bank: int
    columns_per_row: int
    column_bytes: int
    row_bytes: int
    capacity_bytes: int

    @property
    def line_bytes(self) -> int:
        return self.chips * self.column_bytes


class _CombinedMapping:
    """Address mapping facade: global address <-> (channel, local)."""

    def __init__(self, modules: list[DRAMModule]) -> None:
        self.channels = len(modules)
        self._local = modules[0].mapping
        self.row_bytes = modules[0].geometry.row_bytes
        self.line_bytes = modules[0].line_bytes
        self.column_bits = self._local.column_bits
        self._banks_per_channel = modules[0].geometry.banks
        self._capacity = modules[0].geometry.capacity_bytes * self.channels

    def line_address(self, address: int) -> int:
        return address & ~(self.line_bytes - 1)

    def route(self, address: int) -> tuple[int, int]:
        """(channel, channel-local address) for a global address."""
        if address < 0 or address >= self._capacity:
            raise AddressError(f"address {address:#x} out of range")
        global_row, within = divmod(address, self.row_bytes)
        channel = global_row % self.channels
        local_row = global_row // self.channels
        return channel, local_row * self.row_bytes + within

    def global_address(self, channel: int, local: int) -> int:
        local_row, within = divmod(local, self.row_bytes)
        return (local_row * self.channels + channel) * self.row_bytes + within

    def encode(self, bank: int, row: int, column: int, offset: int = 0) -> int:
        """Global address from globalised-bank coordinates."""
        channel, local_bank = divmod(bank, self._banks_per_channel)
        local = self._local.encode(local_bank, row, column, offset)
        return self.global_address(channel, local)


class MultiChannelModule:
    """Module facade over N identical channels (row-interleaved)."""

    def __init__(self, modules: list[DRAMModule]) -> None:
        if len(modules) < 2:
            raise ConfigError("MultiChannelModule needs >= 2 channels")
        first = modules[0]
        for module in modules[1:]:
            if module.geometry != first.geometry:
                raise ConfigError("all channels must share one geometry")
            if module.supports_patterns != first.supports_patterns:
                raise ConfigError("all channels must share one mechanism")
        self.channels = modules
        self.mapping = _CombinedMapping(modules)
        g = first.geometry
        self.geometry = _CombinedGeometry(
            channels=len(modules),
            chips=g.chips,
            banks=g.banks * len(modules),
            rows_per_bank=g.rows_per_bank,
            columns_per_row=g.columns_per_row,
            column_bytes=g.column_bytes,
            row_bytes=g.row_bytes,
            capacity_bytes=g.capacity_bytes * len(modules),
        )
        self.timing = first.timing
        self.cpu_per_bus = first.cpu_per_bus
        self._banks_per_channel = g.banks

    @property
    def line_bytes(self) -> int:
        return self.geometry.line_bytes

    @property
    def supports_patterns(self) -> bool:
        return self.channels[0].supports_patterns

    # ------------------------------------------------------------------
    def route(self, address: int) -> tuple[int, int]:
        return self.mapping.route(address)

    def decode(self, address: int) -> DecodedAddress:
        """Decode with globalised bank IDs (unique across channels)."""
        channel, local = self.route(address)
        loc = self.channels[channel].decode(local)
        return DecodedAddress(
            bank=channel * self._banks_per_channel + loc.bank,
            row=loc.row,
            column=loc.column,
            offset=loc.offset,
        )

    def overlapping_columns(self, column: int, pattern: int) -> set[int]:
        return self.channels[0].overlapping_columns(column, pattern)  # type: ignore[attr-defined]

    def constituents(self, address: int, pattern: int, shuffled: bool = True):
        """Globalised constituents: delegate, then re-route addresses."""
        channel, local = self.route(address)
        local_parts = self.channels[channel].constituents(local, pattern, shuffled)  # type: ignore[attr-defined]
        return [
            (self.mapping.global_address(channel, line), offset)
            for line, offset in local_parts
        ]

    # ``shuffled`` defaults to True to mirror the GS module's native
    # default (plain channels ignore the flag).
    def read_line(self, address: int, pattern: int = 0, shuffled: bool = True) -> bytes:
        channel, local = self.route(address)
        return self.channels[channel].read_line(local, pattern, shuffled)

    def write_line(
        self, address: int, data: bytes, pattern: int = 0, shuffled: bool = True
    ) -> None:
        channel, local = self.route(address)
        self.channels[channel].write_line(local, data, pattern, shuffled)


class MultiChannelController:
    """Controller facade: routes requests, aggregates statistics."""

    def __init__(
        self,
        engine: Engine,
        module: MultiChannelModule,
        scheduler_factory,
        shuffle_latency: int = 3,
        refresh_enabled: bool = False,
        controller_factory=None,
    ) -> None:
        self.engine = engine
        self.module = module
        if controller_factory is None:
            def controller_factory(channel_module):
                return MemoryController(
                    engine,
                    channel_module,
                    scheduler=scheduler_factory(),
                    shuffle_latency=shuffle_latency,
                    refresh_enabled=refresh_enabled,
                )
        self.controllers = [
            controller_factory(channel_module)
            for channel_module in module.channels
        ]

    def submit(self, request: MemoryRequest) -> None:
        channel, local = self.module.route(request.address)
        request.annotations["channel"] = channel
        request.annotations["global_address"] = request.address
        request.address = local
        self.controllers[channel].submit(request)

    def pending_requests(self) -> int:
        return sum(c.pending_requests() for c in self.controllers)

    @property
    def stats(self) -> StatGroup:
        merged = StatGroup("memory_controllers")
        for controller in self.controllers:
            merged.merge(controller.stats)
        return merged

    @property
    def queue_delay(self) -> Histogram:
        merged = Histogram(bucket_width=50)
        for controller in self.controllers:
            for value, count in controller.queue_delay.buckets().items():
                for _ in range(count):
                    merged.observe(value)
        return merged
