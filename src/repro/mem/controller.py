"""Timed memory controller over the DRAM module.

The controller owns per-bank request queues and drives each bank's
command sequence (PRE -> ACT -> RD/WR) with an open-row policy: rows
are left open after access and closed only when a conflicting request
or a refresh needs the bank. Scheduling is per-bank FR-FCFS by default
(see :mod:`repro.mem.schedulers`); the shared data bus and command bus
serialize transfers across banks.

GS-DRAM specifics (Section 3.6): reads/writes on shuffled pages pay the
``shuffle_latency`` (3 cycles for GS-DRAM(8,3,3)) to traverse the
controller's shuffle network, and the pattern ID rides with the column
command at no extra timing cost.
"""

from __future__ import annotations

from typing import Callable

from repro.dram.commands import Command, CommandKind
from repro.dram.module import DRAMModule
from repro.errors import SimulationError
from repro.mem.request import MemoryRequest, Phase, RequestKind
from repro.mem.schedulers import FRFCFS, Scheduler
from repro.utils.events import Engine
from repro.utils.statistics import Histogram, StatGroup

#: Pre-rendered per-kind stat names; ``submit`` is called once per
#: memory request and must not re-format strings on the hot path.
_KIND_STAT = {kind: f"requests_{kind.value}" for kind in RequestKind}
_CMD_STAT = {kind: f"cmd_{kind.value}" for kind in CommandKind}


class MemoryController:
    """Queues, schedules, and times requests against one DRAM module."""

    def __init__(
        self,
        engine: Engine,
        module: DRAMModule,
        scheduler: Scheduler | None = None,
        shuffle_latency: int = 3,
        refresh_enabled: bool = False,
        trace_commands: bool = False,
        open_row_policy: bool = True,
    ) -> None:
        self.engine = engine
        self.module = module
        self.scheduler = scheduler or FRFCFS()
        # A scheduler passed explicitly may carry arbitration state from
        # a previous run (e.g. FR-FCFS starvation streaks); a controller
        # must start from a clean slate or back-to-back simulations with
        # the same scheduler instance are not deterministic.
        self.scheduler.reset()
        self.shuffle_latency = shuffle_latency if module.supports_patterns else 0
        self.refresh_enabled = refresh_enabled
        self.trace_commands = trace_commands
        #: Open-row (Table 1) vs closed-page: close the row after each
        #: column command when no queued request wants it.
        self.open_row_policy = open_row_policy
        self.command_trace: list[tuple[int, Command]] = []
        #: Optional structured tracer (:mod:`repro.obs.tracer`); ``None``
        #: keeps every hook to a single identity check on miss paths.
        self.tracer = None

        banks = module.geometry.banks
        self._queues: list[list[MemoryRequest]] = [[] for _ in range(banks)]
        self._active: list[MemoryRequest | None] = [None] * banks
        self._bus_free = 0  # data bus
        self._cmd_free = 0  # command bus (one command per bus cycle)
        self._rank_next_activate = 0  # tRRD across banks
        self._recent_activates: list[int] = []  # tFAW window (last 4 ACTs)

        self.stats = StatGroup("memory_controller")
        self.queue_delay = Histogram(bucket_width=50)
        self._last_refresh = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def submit(self, request: MemoryRequest) -> None:
        """Queue a request; its callback fires when data is delivered."""
        if self.refresh_enabled:
            self._maybe_refresh()
        request.arrival_time = self.engine.now
        request.location = self.module.decode(
            self.module.mapping.line_address(request.address)
        )
        request.phase = Phase.QUEUED
        self.stats.add("requests")
        self.stats.add(_KIND_STAT[request.kind])
        if request.pattern:
            self.stats.add("requests_patterned")
        bank_id = request.location.bank
        self._queues[bank_id].append(request)
        if self._active[bank_id] is None:
            self._bank_next(bank_id)

    def pending_requests(self) -> int:
        """Requests queued or in service (drain check for barriers)."""
        queued = sum(len(q) for q in self._queues)
        in_service = sum(1 for r in self._active if r is not None)
        return queued + in_service

    # ------------------------------------------------------------------
    # Per-bank service machinery
    # ------------------------------------------------------------------
    def _bank_next(self, bank_id: int) -> None:
        queue = self._queues[bank_id]
        if not queue or self._active[bank_id] is not None:
            return
        bank = self.module.banks[bank_id]
        request = self.scheduler.choose(queue, bank)
        queue.remove(request)
        self._active[bank_id] = request
        assert request.location is not None
        if bank.is_open(request.location.row):
            request.phase = Phase.NEED_COLUMN
            request.row_hit = True
        elif bank.open_row is None:
            request.phase = Phase.NEED_ACTIVATE
            request.row_hit = False
        else:
            request.phase = Phase.NEED_PRECHARGE
            request.row_hit = False
        self._advance(bank_id)

    def _advance(self, bank_id: int) -> None:
        # Wake-ups may be stale (the request they were scheduled for has
        # completed); the phase machine is idempotent, so a stale wake
        # simply drives whatever request is active now, or returns.
        request = self._active[bank_id]
        if request is None:
            return
        bank = self.module.banks[bank_id]
        now = self.engine.now
        timing = self.module.timing

        if request.phase is Phase.NEED_PRECHARGE:
            earliest = max(bank.next_precharge, self._cmd_free, now)
            if earliest > now:
                self.engine.schedule_at(earliest, self._advance, bank_id)
                return
            bank.issue_precharge(now)
            self._record_command(Command(CommandKind.PRECHARGE, bank=bank_id))
            self._occupy_cmd_bus(now)
            request.phase = Phase.NEED_ACTIVATE
            self._advance(bank_id)
            return

        if request.phase is Phase.NEED_ACTIVATE:
            earliest = max(
                bank.next_activate, self._rank_next_activate, self._cmd_free, now
            )
            if len(self._recent_activates) >= 4:
                # Four-activate window: the 5th ACT waits for tFAW after
                # the 1st of the last four.
                earliest = max(
                    earliest, self._recent_activates[-4] + timing.t_faw
                )
            if earliest > now:
                self.engine.schedule_at(earliest, self._advance, bank_id)
                return
            assert request.location is not None
            bank.issue_activate(request.location.row, now)
            self._recent_activates.append(now)
            if len(self._recent_activates) > 4:
                self._recent_activates.pop(0)
            self._record_command(
                Command(CommandKind.ACTIVATE, bank=bank_id,
                        row=request.location.row)
            )
            self._occupy_cmd_bus(now)
            self._rank_next_activate = now + timing.t_rrd
            request.phase = Phase.NEED_COLUMN
            self._advance(bank_id)
            return

        if request.phase is Phase.NEED_COLUMN:
            cas = timing.cwl if request.is_write else timing.cl
            earliest = max(
                bank.next_column, self._cmd_free, self._bus_free - cas, now
            )
            if earliest > now:
                self.engine.schedule_at(earliest, self._advance, bank_id)
                return
            self._issue_column(bank_id, request, now)
            return

        raise SimulationError(f"request in unexpected phase {request.phase}")

    def _issue_column(self, bank_id: int, request: MemoryRequest, now: int) -> None:
        bank = self.module.banks[bank_id]
        timing = self.module.timing
        assert request.location is not None
        row = request.location.row
        column = request.location.column
        if request.is_write:
            burst_end = bank.issue_write(row, now)
            self._record_command(
                Command(CommandKind.WRITE, bank=bank_id, row=row,
                        column=column, pattern=request.pattern)
            )
        else:
            burst_end = bank.issue_read(row, now)
            self._record_command(
                Command(CommandKind.READ, bank=bank_id, row=row,
                        column=column, pattern=request.pattern)
            )
        self._occupy_cmd_bus(now)
        self._bus_free = burst_end
        self.stats.add("row_hits" if request.row_hit else "row_misses")
        request.issue_time = now

        # Functional data movement happens with the burst.
        self._move_data(request)

        finish = burst_end + self._data_path_latency(request)
        request.finish_time = finish
        request.phase = Phase.DONE
        if self.tracer is not None:
            self.tracer.complete(
                "controller",
                "write" if request.is_write else "read",
                request.arrival_time,
                finish - request.arrival_time,
                tid=bank_id,
                args={
                    "row": row,
                    "column": column,
                    "pattern": request.pattern,
                    "row_hit": request.row_hit,
                },
            )
        self.queue_delay.observe(finish - request.arrival_time)
        self._active[bank_id] = None
        self.engine.schedule_at(finish, self._complete, request)
        if not self.open_row_policy:
            self._auto_precharge(bank_id, row)
        self._bank_next(bank_id)

    def _auto_precharge(self, bank_id: int, row: int) -> None:
        """Closed-page policy: close the row unless a queued request
        wants it (a minimal row-hit window)."""
        bank = self.module.banks[bank_id]
        wanted = any(
            req.location is not None and req.location.row == row
            for req in self._queues[bank_id]
        )
        if wanted or bank.open_row is None:
            return
        close_at = max(bank.next_precharge, self.engine.now)
        # Defer the precharge to its legal window via a scheduled close.
        if close_at > self.engine.now:
            self.engine.schedule_at(close_at, self._do_precharge, bank_id, row)
        else:
            self._do_precharge(bank_id, row)

    def _do_precharge(self, bank_id: int, row: int) -> None:
        bank = self.module.banks[bank_id]
        if bank.open_row != row or self._active[bank_id] is not None:
            return  # a newer request reopened or is using the bank
        if self.engine.now < bank.next_precharge:
            return  # superseded; a later close will fire if still idle
        bank.issue_precharge(self.engine.now)
        self._record_command(Command(CommandKind.PRECHARGE, bank=bank_id))

    def _data_path_latency(self, request: MemoryRequest) -> int:
        """Extra controller-side latency: the GS shuffle network."""
        if self.shuffle_latency and request.shuffled:
            return self.shuffle_latency
        return 0

    def _move_data(self, request: MemoryRequest) -> None:
        if request.annotations.get("no_data"):
            # The cache hierarchy handles functional data movement itself
            # (writes at eviction time, reads at fill-completion time).
            return
        address = self.module.mapping.line_address(request.address)
        if self.module.supports_patterns:
            if request.is_write:
                if request.data is None:
                    raise SimulationError(
                        "write request carries no data",
                        address=request.address,
                        pattern=request.pattern,
                        cycle=self.engine.now,
                    )
                self.module.write_line(
                    address, request.data, request.pattern, request.shuffled
                )
            else:
                request.data = self.module.read_line(
                    address, request.pattern, request.shuffled
                )
        else:
            if request.pattern:
                raise SimulationError(
                    "patterned request sent to a non-GS module",
                    address=request.address,
                    pattern=request.pattern,
                    cycle=self.engine.now,
                )
            if request.is_write:
                if request.data is None:
                    raise SimulationError(
                        "write request carries no data",
                        address=request.address,
                        cycle=self.engine.now,
                    )
                self.module.write_line(address, request.data)
            else:
                request.data = self.module.read_line(address)

    def _complete(self, request: MemoryRequest) -> None:
        if request.callback is not None:
            request.callback(request)

    # ------------------------------------------------------------------
    # Shared buses, refresh, bookkeeping
    # ------------------------------------------------------------------
    def _occupy_cmd_bus(self, now: int) -> None:
        self._cmd_free = now + self.module.cpu_per_bus

    def _record_command(self, command: Command) -> None:
        self.stats.add(_CMD_STAT[command.kind])
        if self.trace_commands:
            self.command_trace.append((self.engine.now, command))
        if self.tracer is not None:
            self.tracer.instant(
                "dram-command",
                command.kind.value,
                self.engine.now,
                tid=command.bank,
                args={
                    "bank": command.bank,
                    "row": command.row,
                    "column": command.column,
                    "pattern": command.pattern,
                },
            )

    def _maybe_refresh(self) -> None:
        """Lazy opportunistic refresh (accounting + bank blocking).

        Rather than a free-running timer (which would keep the event
        queue alive forever), elapsed refresh intervals are settled when
        a request arrives and the controller is idle. Real controllers
        may postpone up to 8 tREFI, so deferring while banks are busy is
        within spec; an all-bank REF then blocks every bank for tRFC.
        """
        timing = self.module.timing
        now = self.engine.now
        intervals = (now - self._last_refresh) // timing.t_refi
        if intervals <= 0:
            return
        if any(active is not None for active in self._active):
            return  # postponed; settled at a later submit
        self._last_refresh += intervals * timing.t_refi
        self.stats.add("cmd_REF", intervals)
        self.stats.add("refreshes", intervals)
        if self.trace_commands:
            from repro.dram.commands import refresh

            self.command_trace.append((now, refresh()))
        if self.tracer is not None:
            self.tracer.instant(
                "dram-command", CommandKind.REFRESH.value, now,
                args={"bank": -1, "intervals": intervals},
            )
        # The most recent refresh is (conservatively) modelled as in
        # progress now: close all rows and block the banks for tRFC.
        end = now + timing.t_rp + timing.t_rfc
        for bank in self.module.banks:
            bank.open_row = None
            bank.block_until(end)
