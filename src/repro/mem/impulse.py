"""An Impulse-style memory controller baseline [Carter+ HPCA'99].

The paper's closest related work: Impulse exports gather operations to
the memory controller. The controller assembles a cache line containing
only the values the strided pattern needs and returns it to the
processor — saving processor-side bandwidth and cache space — but with
a *commodity* DRAM module it must still read every underlying cache
line over the DRAM bus. GS-DRAM's argument (Section 7) is precisely
that Impulse "cannot mitigate the wasted memory bandwidth consumption
between the memory controller and DRAM".

:class:`ImpulseController` implements that behaviour: a request with a
non-zero pattern is expanded into one READ per distinct underlying DRAM
line; the gathered line is assembled at the controller and delivered
when the last constituent arrives. Pattern-0 requests behave exactly as
in the base controller. This gives the ablation ``abl-4`` a
quantitative version of the paper's related-work comparison.
"""

from __future__ import annotations

from typing import Callable

from repro.core.pattern import gather_spec
from repro.dram.module import DRAMModule
from repro.errors import SimulationError
from repro.mem.controller import MemoryController
from repro.mem.request import MemoryRequest, RequestKind
from repro.mem.schedulers import Scheduler
from repro.utils.events import Engine


class ImpulseController(MemoryController):
    """Controller-side gather over commodity DRAM."""

    def __init__(
        self,
        engine: Engine,
        module: DRAMModule,
        scheduler: Scheduler | None = None,
        refresh_enabled: bool = False,
    ) -> None:
        from repro.core.module import GSModule

        if isinstance(module, GSModule):
            raise SimulationError(
                "ImpulseController models gathers over *commodity* DRAM; "
                "use the base controller for a GS module"
            )
        super().__init__(
            engine, module, scheduler=scheduler, shuffle_latency=0,
            refresh_enabled=refresh_enabled,
        )
        self._chips = module.geometry.chips

    # ------------------------------------------------------------------
    def submit(self, request: MemoryRequest) -> None:
        if request.pattern == 0:
            super().submit(request)
            return
        if request.is_write:
            self._submit_scatter(request)
        else:
            self._submit_gather(request)

    # ------------------------------------------------------------------
    def _constituent_lines(self, request: MemoryRequest) -> list[tuple[int, int]]:
        """(line address, value index) per gathered value, in order."""
        line_address = self.module.mapping.line_address(request.address)
        loc = self.module.decode(line_address)
        spec = gather_spec(self._chips, request.pattern, loc.column)
        out = []
        for index in spec.indices:
            line, value = divmod(index, self._chips)
            address = self.module.mapping.encode(loc.bank, loc.row, line)
            out.append((address, value))
        return out

    def _submit_gather(self, request: MemoryRequest) -> None:
        constituents = self._constituent_lines(request)
        distinct = sorted({address for address, _ in constituents})
        state = {
            "remaining": len(distinct),
            "lines": {},
        }
        self.stats.add("impulse_gathers")
        self.stats.add("impulse_expansion", len(distinct))

        def on_piece(piece: MemoryRequest) -> None:
            state["lines"][piece.address] = piece.data
            state["remaining"] -= 1
            if state["remaining"] == 0:
                self._finish_gather(request, constituents, state["lines"])

        for address in distinct:
            super(ImpulseController, self).submit(
                MemoryRequest(
                    address,
                    RequestKind.READ,
                    core_id=request.core_id,
                    pc=request.pc,
                    callback=on_piece,
                )
            )

    def _finish_gather(
        self,
        request: MemoryRequest,
        constituents: list[tuple[int, int]],
        lines: dict[int, bytes | None],
    ) -> None:
        width = self.module.geometry.column_bytes
        if any(data is None for data in lines.values()):
            # Pieces carried no data (no_data annotation): the caller
            # handles functional movement; deliver without assembly.
            request.data = None
        else:
            parts = []
            for address, value_index in constituents:
                line = lines[address]
                assert line is not None
                parts.append(line[value_index * width : (value_index + 1) * width])
            request.data = b"".join(parts)
        request.finish_time = self.engine.now
        if request.callback is not None:
            request.callback(request)

    def _submit_scatter(self, request: MemoryRequest) -> None:
        """A patterned write: read-modify-write of every touched line."""
        if request.data is None and not request.annotations.get("no_data"):
            raise SimulationError(f"scatter without data: {request}")
        constituents = self._constituent_lines(request)
        width = self.module.geometry.column_bytes
        # Functional scatter first (unless the hierarchy did it).
        if not request.annotations.get("no_data"):
            for position, (address, value_index) in enumerate(constituents):
                line = bytearray(self.module.read_line(address))
                line[value_index * width : (value_index + 1) * width] = (
                    request.data[position * width : (position + 1) * width]
                )
                self.module.write_line(address, bytes(line))
        distinct = sorted({address for address, _ in constituents})
        state = {"remaining": len(distinct)}
        self.stats.add("impulse_scatters")
        self.stats.add("impulse_expansion", len(distinct))

        def on_piece(piece: MemoryRequest) -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                request.finish_time = self.engine.now
                if request.callback is not None:
                    request.callback(request)

        for address in distinct:
            piece = MemoryRequest(
                address,
                RequestKind.WRITE,
                core_id=request.core_id,
                callback=on_piece,
            )
            piece.annotations["no_data"] = True  # functional part done above
            super(ImpulseController, self).submit(piece)


class ImpulseModule(DRAMModule):
    """Commodity DRAM whose *functional* interface accepts patterns.

    The chips store plain unshuffled lines; a patterned functional read
    or write is served by touching every underlying line — mirroring
    what the Impulse controller does with timed commands. This lets the
    cache hierarchy and applications run unmodified on the Impulse
    baseline.
    """

    @property
    def supports_patterns(self) -> bool:
        return True

    def _constituents_of(self, line_address: int, pattern: int) -> list[tuple[int, int]]:
        """(pattern-0 line address, byte offset) per gathered value."""
        loc = self.mapping.decode(line_address)
        chips = self.geometry.chips
        width = self.geometry.column_bytes
        spec = gather_spec(chips, pattern, loc.column)
        out = []
        for index in spec.indices:
            line, value = divmod(index, chips)
            out.append((self.mapping.encode(loc.bank, loc.row, line), value * width))
        return out

    def constituents(
        self, address: int, pattern: int, shuffled: bool = False
    ) -> list[tuple[int, int]]:
        """Interface-compatible with :meth:`GSModule.constituents`."""
        if pattern == 0:
            width = self.geometry.column_bytes
            return [(address, i * width) for i in range(self.geometry.chips)]
        return self._constituents_of(address, pattern)

    def overlapping_columns(self, column: int, pattern: int) -> set[int]:
        """Columns of pattern-0 lines sharing data with this gather."""
        chips = self.geometry.chips
        column_mask = self.geometry.columns_per_row - 1
        return {((chip & pattern) ^ column) & column_mask for chip in range(chips)}

    def read_line(self, address: int, pattern: int = 0, shuffled: bool = False) -> bytes:
        if pattern == 0:
            return super().read_line(address)
        width = self.geometry.column_bytes
        parts = []
        for line_address, offset in self._constituents_of(address, pattern):
            parts.append(super().read_line(line_address)[offset : offset + width])
        return b"".join(parts)

    def write_line(
        self, address: int, data: bytes, pattern: int = 0, shuffled: bool = False
    ) -> None:
        if pattern == 0:
            super().write_line(address, data)
            return
        width = self.geometry.column_bytes
        for position, (line_address, offset) in enumerate(
            self._constituents_of(address, pattern)
        ):
            line = bytearray(super().read_line(line_address))
            line[offset : offset + width] = data[position * width : (position + 1) * width]
            super().write_line(line_address, bytes(line))
