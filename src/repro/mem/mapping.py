"""The mapping-policy seam: who owns address translation + placement.

Historically :class:`~repro.sim.system.System` wired a
:class:`~repro.vm.page_table.PageTable` and a
:class:`~repro.vm.pattmalloc.PattAllocator` together inline; every
consumer that wanted the same behaviour (the fast path, the PIM
executor) re-built the pair by hand. ROADMAP item 5 notes that both
dynamic remapping (DReAM-style) and in-DRAM compute placement want a
single seam instead. :class:`MappingPolicy` is that seam: it owns the
page table and allocator, answers translation queries, and exposes
placement hooks that subclasses specialise.

Two policies ship today:

- :class:`StaticPatternPolicy` — exactly the historical behaviour:
  static pattern-ID attributes recorded at ``pattmalloc`` time,
  identity physical mapping.
- :class:`PIMRowGroupPolicy` — adds same-bank *row-group* reservation
  for in-DRAM compute (MRA operands must share a bank, see
  docs/INDRAM.md): groups are carved top-down from the highest rows
  while the bump allocator grows bottom-up, and the allocator's
  capacity is shrunk past each reservation so the two can never meet.

This class is unrelated to the address-bit-split enum
:class:`repro.dram.address.MappingPolicy`, which keeps its name for
compatibility (it is embedded in perf cache keys).
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.vm.page_table import PageTable
from repro.vm.pattmalloc import PattAllocator


class MappingPolicy:
    """Owns translation + placement for one module's physical space."""

    name = "static"

    def __init__(self, module, page_table: PageTable | None = None) -> None:
        self.module = module
        self.page_table = page_table or PageTable()
        self.allocator = PattAllocator(
            capacity_bytes=module.geometry.capacity_bytes,
            line_bytes=module.line_bytes,
            row_bytes=module.geometry.row_bytes,
            page_table=self.page_table,
        )

    # -- allocation --------------------------------------------------
    def pattmalloc(self, size: int, shuffle: bool = False,
                   pattern: int = 0) -> int:
        """Allocate with GS attributes (Section 4.3's ``pattmalloc``)."""
        return self.allocator.pattmalloc(size, shuffle=shuffle, pattern=pattern)

    def malloc(self, size: int) -> int:
        """Plain allocation: no shuffling, pattern 0 only."""
        return self.allocator.malloc(size)

    # -- translation -------------------------------------------------
    def translate(self, address: int):
        """Virtual -> (physical, shuffled, alt_pattern); identity paddr."""
        return self.page_table.translate(address)

    def locate(self, address: int):
        """Physical address -> :class:`~repro.dram.address.DecodedAddress`."""
        return self.module.mapping.decode(address)

    def row_address(self, bank: int, row: int) -> int:
        """Physical address of the first byte of ``(bank, row)``."""
        return self.module.mapping.encode(bank, row, 0)

    # -- placement hooks ---------------------------------------------
    def reserve_row_group(self, bank: int, count: int) -> tuple[int, ...]:
        """Reserve ``count`` same-bank rows for in-DRAM compute.

        The static policy has no compute placement; subclasses that
        support it override this.
        """
        raise AllocationError(
            f"mapping policy {self.name!r} cannot reserve PIM row groups"
        )


class StaticPatternPolicy(MappingPolicy):
    """Today's behaviour: static pattern-ID mapping, nothing reserved."""

    name = "static-pattern"


class PIMRowGroupPolicy(StaticPatternPolicy):
    """Static mapping plus top-down per-bank row-group reservation."""

    name = "pim-row-group"

    def __init__(self, module, page_table: PageTable | None = None) -> None:
        super().__init__(module, page_table)
        rows = module.geometry.rows_per_bank
        #: Next unreserved row per bank, counting down from the top.
        self._next_free_row = {
            bank: rows for bank in range(module.geometry.banks)
        }

    def reserved_rows(self, bank: int) -> int:
        """How many rows of ``bank`` are reserved for compute."""
        return self.module.geometry.rows_per_bank - self._next_free_row[bank]

    def reserve_row_group(self, bank: int, count: int) -> tuple[int, ...]:
        """Carve ``count`` rows off the top of ``bank``; returns them
        in ascending row order.

        Reservation shrinks the bump allocator's capacity to the lowest
        physical address any reserved row can map to, so ordinary
        allocations can never grow into compute-owned rows (checked
        both ways: a reservation that would dip below already-allocated
        space raises).
        """
        if count <= 0:
            raise AllocationError(f"cannot reserve {count} rows")
        top = self._next_free_row[bank]
        floor = top - count
        if floor < 0:
            raise AllocationError(
                f"bank {bank}: no room for {count} more PIM rows "
                f"({self.reserved_rows(bank)} already reserved)"
            )
        # The lowest address a reserved row can occupy, over any bank
        # and either bit-split policy, is (bank 0, row floor, column 0).
        boundary = self.module.mapping.encode(0, floor, 0)
        if self.allocator.used_bytes > boundary:
            raise AllocationError(
                f"bank {bank}: PIM row group would overlap allocated data "
                f"(boundary {boundary:#x}, used {self.allocator.used_bytes:#x})"
            )
        self.allocator.capacity_bytes = min(
            self.allocator.capacity_bytes, boundary
        )
        self._next_free_row[bank] = floor
        return tuple(range(floor, top))
