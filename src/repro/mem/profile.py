"""Post-hoc profiling of controller command traces.

Run a simulation with ``trace_commands=True`` and feed the controller's
``command_trace`` here to get time-bucketed bandwidth, bus utilisation,
and row-buffer locality — the standard plots a memory-systems paper
shows beyond raw cycles. Being post-hoc, profiling adds zero cost to
runs that don't ask for it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.dram.commands import Command, CommandKind


@dataclass
class BandwidthProfile:
    """Data-bus traffic over time, in fixed-size cycle buckets."""

    bucket_cycles: int
    line_bytes: int
    buckets: list[int] = field(default_factory=list)  # bytes per bucket

    @property
    def total_bytes(self) -> int:
        return sum(self.buckets)

    @property
    def peak_bytes_per_cycle(self) -> float:
        if not self.buckets:
            return 0.0
        return max(self.buckets) / self.bucket_cycles

    def average_bytes_per_cycle(self) -> float:
        if not self.buckets:
            return 0.0
        return self.total_bytes / (len(self.buckets) * self.bucket_cycles)

    def utilization(self, bus_bytes_per_cycle: float) -> float:
        """Average fraction of peak bus bandwidth actually used.

        For DDR3-1600 behind a 4 GHz core: 64 bytes per 20 CPU cycles =
        3.2 bytes/cycle of peak transfer bandwidth.
        """
        if bus_bytes_per_cycle <= 0:
            return 0.0
        return self.average_bytes_per_cycle() / bus_bytes_per_cycle

    def busiest_bucket(self) -> int:
        """Index of the bucket with the most traffic (-1 if empty)."""
        if not self.buckets:
            return -1
        return max(range(len(self.buckets)), key=lambda i: self.buckets[i])


@dataclass
class RowLocality:
    """Row-buffer behaviour per bank."""

    activates_per_bank: dict[int, int]
    columns_per_activate: dict[int, float]  # mean columns served per row open
    runs_per_bank: dict[int, int] = field(default_factory=dict)

    @property
    def mean_row_run(self) -> float:
        """Average column commands served per row activation.

        Weighted by each bank's activation (run) count: a bank that
        opened 100 rows contributes 100x the weight of a bank that
        opened one, rather than each bank's mean counting equally.
        """
        if not self.columns_per_activate:
            return 0.0
        weights = {
            bank: self.runs_per_bank.get(bank, 1)
            for bank in self.columns_per_activate
        }
        total_runs = sum(weights.values())
        if total_runs == 0:
            return 0.0
        total_columns = sum(
            self.columns_per_activate[bank] * weights[bank]
            for bank in self.columns_per_activate
        )
        return total_columns / total_runs


def bandwidth_profile(
    trace: list[tuple[int, Command]],
    bucket_cycles: int = 1000,
    line_bytes: int = 64,
) -> BandwidthProfile:
    """Bucket the data-bus traffic of a command trace."""
    profile = BandwidthProfile(bucket_cycles=bucket_cycles, line_bytes=line_bytes)
    if not trace:
        return profile
    # max(), not trace[-1]: merged multi-controller traces are not
    # necessarily time-sorted, and an early trailing entry would size
    # the bucket list short and crash on the out-of-order commands.
    last_time = max(time for time, _command in trace)
    profile.buckets = [0] * (last_time // bucket_cycles + 1)
    for time, command in trace:
        if command.kind in (CommandKind.READ, CommandKind.WRITE):
            profile.buckets[time // bucket_cycles] += line_bytes
    return profile


def row_locality(trace: list[tuple[int, Command]]) -> RowLocality:
    """Per-bank activations and mean column commands per activation."""
    activates: dict[int, int] = defaultdict(int)
    columns_current: dict[int, int] = defaultdict(int)
    runs: dict[int, list[int]] = defaultdict(list)
    for _time, command in trace:
        bank = command.bank
        if command.kind is CommandKind.ACTIVATE:
            if columns_current[bank]:
                runs[bank].append(columns_current[bank])
                columns_current[bank] = 0
            activates[bank] += 1
        elif command.kind in (CommandKind.READ, CommandKind.WRITE):
            # Columns served on a row opened before the trace started
            # (no ACTIVATE recorded for this bank yet) have no matching
            # activation to attribute them to; counting them as a run
            # would credit a bank with locality its recorded activates
            # never produced.
            if activates[bank]:
                columns_current[bank] += 1
    for bank, pending in columns_current.items():
        if pending:
            runs[bank].append(pending)
    means = {
        bank: sum(bank_runs) / len(bank_runs)
        for bank, bank_runs in runs.items()
        if bank_runs
    }
    return RowLocality(
        activates_per_bank=dict(activates),
        columns_per_activate=means,
        runs_per_bank={bank: len(bank_runs) for bank, bank_runs in runs.items()},
    )
