"""Memory request type flowing from caches to the memory controller."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dram.address import DecodedAddress

_request_ids = itertools.count()


class RequestKind(enum.Enum):
    """Demand/prefetch reads and writebacks."""

    READ = "read"
    WRITE = "write"
    PREFETCH = "prefetch"

    @property
    def is_write(self) -> bool:
        return self is RequestKind.WRITE


class Phase(enum.Enum):
    """Controller-internal progress of a request's command sequence."""

    QUEUED = "queued"
    NEED_PRECHARGE = "need-precharge"
    NEED_ACTIVATE = "need-activate"
    NEED_COLUMN = "need-column"
    DONE = "done"


@dataclass(slots=True)
class MemoryRequest:
    """One cache-line request to the DRAM module.

    ``pattern`` and ``shuffled`` carry the GS-DRAM access semantics
    (Section 4.2): the pattern ID rides with the column command, the
    shuffle flag comes from the page table. ``pc`` feeds the stride
    prefetcher; ``core_id`` attributes stats and completions.

    Slotted: simulations allocate one of these per memory operation,
    and ``__slots__`` keeps them dict-free (ad-hoc metadata belongs in
    ``annotations``).
    """

    address: int
    kind: RequestKind
    pattern: int = 0
    shuffled: bool = True
    pc: int = 0
    core_id: int = 0
    callback: Callable[["MemoryRequest"], None] | None = None
    data: bytes | None = None  # payload for writes, filled for reads
    request_id: int = field(default_factory=lambda: next(_request_ids))
    # Filled in by the controller:
    location: DecodedAddress | None = None
    phase: Phase = Phase.QUEUED
    arrival_time: int = 0
    issue_time: int = 0
    finish_time: int = 0
    row_hit: bool | None = None
    annotations: dict[str, Any] = field(default_factory=dict)

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def is_demand(self) -> bool:
        return self.kind is not RequestKind.PREFETCH

    @property
    def queue_delay(self) -> int:
        """Cycles from arrival to first data beat."""
        return self.finish_time - self.arrival_time

    def __repr__(self) -> str:
        return (
            f"MemoryRequest(#{self.request_id} {self.kind.value} "
            f"addr={self.address:#x} patt={self.pattern} core={self.core_id})"
        )
