"""Memory-request scheduling policies.

The paper's configuration uses FR-FCFS [Rixner+ ISCA'00, Zuravleff
patent] with an open-row policy: ready row-buffer hits are served
before older row-buffer misses. The HTAP result (Figure 11) depends on
this policy's behaviour under contention — a streaming thread's row
hits starve another thread's misses to the same bank — so the policy
is pluggable and an FCFS baseline is provided for the ablation.
"""

from __future__ import annotations

from repro.dram.bank import Bank
from repro.mem.request import MemoryRequest, RequestKind


class Scheduler:
    """Chooses which queued request a newly-free bank serves next."""

    name = "base"

    def choose(self, candidates: list[MemoryRequest], bank: Bank) -> MemoryRequest:
        """Pick one of ``candidates`` (all target ``bank``; non-empty)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any per-run arbitration state.

        Called by a controller when it attaches, so a scheduler
        instance passed explicitly (or reused across back-to-back
        simulations) starts every run from the same state — otherwise
        two identical runs can schedule differently and determinism is
        lost.
        """


class FCFS(Scheduler):
    """Strict arrival order, regardless of the row buffer."""

    name = "FCFS"

    def choose(self, candidates: list[MemoryRequest], bank: Bank) -> MemoryRequest:
        return min(candidates, key=lambda r: (r.arrival_time, r.request_id))


class FRFCFS(Scheduler):
    """First-Ready FCFS: row hits first, then demand over prefetch, then age.

    ``starvation_limit`` optionally caps how many consecutive row hits
    may bypass a waiting row miss (0 disables the cap, which is the
    paper's configuration — the Figure 11 starvation effect requires
    it).
    """

    name = "FR-FCFS"

    def __init__(self, starvation_limit: int = 0) -> None:
        self.starvation_limit = starvation_limit
        # Keyed by the Bank object (not bank_id): two controllers'
        # same-numbered banks must not share a starvation streak.
        self._consecutive_hits: dict[Bank, int] = {}

    def reset(self) -> None:
        self._consecutive_hits.clear()

    def choose(self, candidates: list[MemoryRequest], bank: Bank) -> MemoryRequest:
        # Single pass (this is the controller's hottest loop): track the
        # best hit and best miss by key instead of building pool lists.
        # Key order encodes the policy: reads before writes, demand
        # before prefetch, then age; request_id makes ties impossible.
        open_row = bank.open_row
        best_hit = best_miss = None
        best_hit_key = best_miss_key = None
        for request in candidates:
            location = request.location
            assert location is not None
            key = (
                request.kind.is_write,
                request.kind is RequestKind.PREFETCH,
                request.arrival_time,
                request.request_id,
            )
            if location.row == open_row:
                if best_hit is None or key < best_hit_key:
                    best_hit, best_hit_key = request, key
            else:
                if best_miss is None or key < best_miss_key:
                    best_miss, best_miss_key = request, key
        streak = self._consecutive_hits.get(bank, 0)
        capped = (
            self.starvation_limit > 0
            and streak >= self.starvation_limit
            and best_miss is not None
        )
        if capped or best_hit is None:
            self._consecutive_hits[bank] = 0
            return best_miss
        self._consecutive_hits[bank] = streak + 1
        return best_hit
