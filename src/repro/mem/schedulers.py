"""Memory-request scheduling policies.

The paper's configuration uses FR-FCFS [Rixner+ ISCA'00, Zuravleff
patent] with an open-row policy: ready row-buffer hits are served
before older row-buffer misses. The HTAP result (Figure 11) depends on
this policy's behaviour under contention — a streaming thread's row
hits starve another thread's misses to the same bank — so the policy
is pluggable and an FCFS baseline is provided for the ablation.
"""

from __future__ import annotations

from repro.dram.bank import Bank
from repro.mem.request import MemoryRequest


class Scheduler:
    """Chooses which queued request a newly-free bank serves next."""

    name = "base"

    def choose(self, candidates: list[MemoryRequest], bank: Bank) -> MemoryRequest:
        """Pick one of ``candidates`` (all target ``bank``; non-empty)."""
        raise NotImplementedError


class FCFS(Scheduler):
    """Strict arrival order, regardless of the row buffer."""

    name = "FCFS"

    def choose(self, candidates: list[MemoryRequest], bank: Bank) -> MemoryRequest:
        return min(candidates, key=lambda r: (r.arrival_time, r.request_id))


class FRFCFS(Scheduler):
    """First-Ready FCFS: row hits first, then demand over prefetch, then age.

    ``starvation_limit`` optionally caps how many consecutive row hits
    may bypass a waiting row miss (0 disables the cap, which is the
    paper's configuration — the Figure 11 starvation effect requires
    it).
    """

    name = "FR-FCFS"

    def __init__(self, starvation_limit: int = 0) -> None:
        self.starvation_limit = starvation_limit
        self._consecutive_hits: dict[int, int] = {}

    def choose(self, candidates: list[MemoryRequest], bank: Bank) -> MemoryRequest:
        def is_hit(request: MemoryRequest) -> bool:
            assert request.location is not None
            return bank.is_open(request.location.row)

        hits = [r for r in candidates if is_hit(r)]
        misses = [r for r in candidates if not is_hit(r)]
        streak = self._consecutive_hits.get(bank.bank_id, 0)
        capped = (
            self.starvation_limit > 0
            and streak >= self.starvation_limit
            and misses
        )
        pool = misses if (capped or not hits) else hits
        chosen = min(pool, key=lambda r: (r.is_write, r.arrival_time, r.request_id))
        if hits and chosen in hits:
            self._consecutive_hits[bank.bank_id] = streak + 1
        else:
            self._consecutive_hits[bank.bank_id] = 0
        return chosen
