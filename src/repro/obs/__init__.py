"""Unified observability: metrics registry + structured event tracer.

Three layers, all optional and all zero-cost when unused:

- :mod:`repro.obs.registry` — a :class:`MetricsRegistry` mapping
  component paths (``mem.controller``, ``cache.l1.core0``) to the
  components' live :class:`StatGroup`/:class:`Histogram` objects, with
  snapshot / diff / merge and JSON export;
- :mod:`repro.obs.tracer` — a structured span/instant/counter tracer
  (categories: core, cache, mshr, controller, dram-command) exporting
  Chrome trace format for Perfetto;
- :mod:`repro.obs.views` — bandwidth and row-locality profiles derived
  from the trace's ``dram-command`` events, subsuming the old opt-in
  ``command_trace`` path.

Activate with ``observe()``; any :class:`~repro.sim.system.System`
built inside the block self-registers. ``RunSpec.obs`` plumbs the same
switch through the process pool and result cache. See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.registry import MetricsRegistry, MetricsSnapshot, default_registry
from repro.obs.session import ObsRun, ObsSession, current_session, observe
from repro.obs.tracer import (
    CATEGORIES,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.obs.views import (
    bandwidth_view,
    commands_from_trace,
    row_locality_view,
)

__all__ = [
    "CATEGORIES",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsRun",
    "ObsSession",
    "Tracer",
    "bandwidth_view",
    "chrome_trace",
    "commands_from_trace",
    "current_session",
    "default_registry",
    "observe",
    "row_locality_view",
    "validate_chrome_trace",
]
