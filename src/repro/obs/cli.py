"""CLI verbs: ``python -m repro trace <figure>`` and ``repro metrics <figure>``.

``trace`` runs a figure's representative spec set with the event tracer
enabled and writes one Chrome-trace JSON file (validated against the
schema before it touches disk) that loads directly in Perfetto.
``metrics`` runs the same specs with metrics-only observation and dumps
the merged registry snapshot as JSON.

Observed runs flow through the normal pool + result cache — the
``obs`` flag on each spec keeps their cache entries separate from
plain runs, so tracing a figure never poisons (or is served from) the
untraced cache population.
"""

from __future__ import annotations

import pathlib

from repro.harness.common import scale_by_name
from repro.harness.specsets import SPEC_FIGURES, figure_specs, spec_label
from repro.obs.session import ObsRun
from repro.obs.tracer import chrome_trace, validate_chrome_trace
from repro.obs.views import bandwidth_view, row_locality_view


def _observed_specs(figure: str, scale_name: str, obs: str):
    import dataclasses

    scale = scale_by_name(scale_name)
    specs = [
        dataclasses.replace(spec, obs=obs)
        for spec in figure_specs(figure, scale)
    ]
    return scale, specs


def run_trace(
    figure: str,
    scale_name: str = "quick",
    jobs: int | None = None,
    out: str | None = None,
    detail: bool = False,
    limit: int = 1_000_000,
) -> int:
    """Run ``figure`` traced; write (validated) Chrome-trace JSON."""
    import json
    import os

    from repro.perf.pool import run_specs

    obs = "trace-detail" if detail else "trace"
    scale, specs = _observed_specs(figure, scale_name, obs)
    print(f"tracing {figure} at scale '{scale.name}' "
          f"({len(specs)} runs, limit {limit} events/run)")
    os.environ["REPRO_TRACE_LIMIT"] = str(limit)
    try:
        records = run_specs(specs, jobs=jobs)
    finally:
        del os.environ["REPRO_TRACE_LIMIT"]

    runs = []
    dropped = 0
    for spec, record in zip(specs, records):
        if not isinstance(record, ObsRun) or record.trace_events is None:
            raise RuntimeError(
                f"run {spec_label(spec)} returned no trace; "
                "was the cache populated by a non-obs build?"
            )
        runs.append((spec_label(spec), record.trace_events))
        dropped += record.dropped_events

    payload = chrome_trace(runs, dropped=dropped)
    count = validate_chrome_trace(payload)

    path = pathlib.Path(out) if out else (
        pathlib.Path("traces") / f"{figure}-{scale.name}.json"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")

    for label, events in runs:
        locality = row_locality_view(events)
        bandwidth = bandwidth_view(events)
        print(
            f"  {label:<28} {len(events):>8} events"
            f"  row-run {locality.mean_row_run:6.1f}"
            f"  avg bus {bandwidth.average_bytes_per_cycle():5.2f} B/cyc"
        )
    if dropped:
        print(f"  note: {dropped} events dropped (per-run limit {limit})")
    print(f"wrote {path} ({count} events) -- "
          "open in https://ui.perfetto.dev")
    return 0


def run_metrics(
    figure: str,
    scale_name: str = "quick",
    jobs: int | None = None,
    out: str | None = None,
) -> int:
    """Run ``figure`` with metrics observation; dump the snapshot JSON."""
    from repro.obs.registry import MetricsSnapshot
    from repro.perf.pool import run_specs

    scale, specs = _observed_specs(figure, scale_name, "metrics")
    print(f"collecting metrics for {figure} at scale '{scale.name}' "
          f"({len(specs)} runs)")
    records = run_specs(specs, jobs=jobs)

    merged = MetricsSnapshot()
    for spec, record in zip(specs, records):
        if not isinstance(record, ObsRun):
            raise RuntimeError(f"run {spec_label(spec)} returned no metrics")
        # Namespace each run so counters from different layouts never
        # collapse into one ambiguous number.
        label = spec_label(spec).replace(" ", "_")
        namespaced = MetricsSnapshot(
            counters={
                f"{label}.{path}": values
                for path, values in record.metrics.counters.items()
            },
            histograms={
                f"{label}.{path}": digest
                for path, digest in record.metrics.histograms.items()
            },
        )
        merged = merged.merge(namespaced)

    text = merged.to_json()
    if out:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"wrote {path} ({len(merged.paths())} component paths)")
    else:
        print(text)
    return 0


__all__ = ["SPEC_FIGURES", "run_metrics", "run_trace"]
