"""Process-wide metrics registry over the components' own counters.

Every simulator component already keeps a :class:`StatGroup` (and
sometimes a :class:`Histogram`); what was missing is one place that
knows about all of them. A :class:`MetricsRegistry` maps *component
paths* — dotted names like ``mem.controller`` or ``cache.l1.core0`` —
to those live objects, and can freeze the whole tree into a
:class:`MetricsSnapshot`: a plain-data (picklable, JSON-able) view
supporting ``diff`` (what changed between two points of a run) and
``merge`` (fold the snapshots of many runs into one).

The registry holds *references*: registering is one dict insert, and
components keep updating their own counters with zero added cost.
Reading happens only when someone asks for a snapshot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.utils.statistics import Histogram, StatGroup

SNAPSHOT_SCHEMA = 1


@dataclass
class MetricsSnapshot:
    """A frozen, plain-data view of a registry at one instant."""

    counters: dict[str, dict[str, int]] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def paths(self) -> list[str]:
        """Every component path present, sorted."""
        return sorted(set(self.counters) | set(self.histograms))

    def get(self, path: str, counter: str) -> int:
        """One counter's value (0 when absent)."""
        return self.counters.get(path, {}).get(counter, 0)

    def total(self, counter: str, prefix: str = "") -> int:
        """Sum of ``counter`` across every path starting with ``prefix``.

        ``total("misses", "cache.l1")`` is the fleet-wide L1 miss count
        regardless of how many cores (or systems) registered.
        """
        return sum(
            values.get(counter, 0)
            for path, values in self.counters.items()
            if path.startswith(prefix)
        )

    # ------------------------------------------------------------------
    def diff(self, older: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counter deltas since ``older`` (histograms: the newer digest).

        Paths absent from ``older`` are treated as all-zero, so a diff
        against an early snapshot includes late-registered components.
        """
        counters: dict[str, dict[str, int]] = {}
        for path, values in self.counters.items():
            base = older.counters.get(path, {})
            delta = {
                key: value - base.get(key, 0)
                for key, value in values.items()
                if value - base.get(key, 0)
            }
            if delta:
                counters[path] = delta
        return MetricsSnapshot(counters=counters, histograms=dict(self.histograms))

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Sum two snapshots (e.g. the per-run snapshots of a sweep).

        Counters add; histogram digests add their counts/buckets and
        keep the larger maximum (the mean is recomputed from the sums).
        """
        counters = {path: dict(values) for path, values in self.counters.items()}
        for path, values in other.counters.items():
            into = counters.setdefault(path, {})
            for key, value in values.items():
                into[key] = into.get(key, 0) + value
        histograms = {path: dict(digest) for path, digest in self.histograms.items()}
        for path, digest in other.histograms.items():
            if path not in histograms:
                histograms[path] = dict(digest)
                continue
            histograms[path] = _merge_histogram(histograms[path], digest)
        return MetricsSnapshot(counters=counters, histograms=histograms)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-able form (stable key order for byte-stable exports)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {
                path: dict(sorted(self.counters[path].items()))
                for path in sorted(self.counters)
            },
            "histograms": {
                path: self.histograms[path] for path in sorted(self.histograms)
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        return cls(
            counters={
                path: dict(values)
                for path, values in payload.get("counters", {}).items()
            },
            histograms={
                path: dict(digest)
                for path, digest in payload.get("histograms", {}).items()
            },
        )


def _merge_histogram(a: dict, b: dict) -> dict:
    """Combine two histogram digests produced by Histogram.summary()."""
    count = a.get("count", 0) + b.get("count", 0)
    total = (
        a.get("mean", 0.0) * a.get("count", 0)
        + b.get("mean", 0.0) * b.get("count", 0)
    )
    buckets: dict[str, int] = dict(a.get("buckets", {}))
    for key, value in b.get("buckets", {}).items():
        buckets[key] = buckets.get(key, 0) + value
    return {
        "count": count,
        "mean": total / count if count else 0.0,
        "maximum": max(a.get("maximum", 0), b.get("maximum", 0)),
        "bucket_width": a.get("bucket_width", b.get("bucket_width", 1)),
        "buckets": buckets,
    }


class MetricsRegistry:
    """Component path -> live StatGroup / Histogram directory."""

    def __init__(self) -> None:
        self._groups: dict[str, StatGroup] = {}
        self._histograms: dict[str, Histogram] = {}

    def register(self, path: str, metric: StatGroup | Histogram) -> None:
        """Register a component's stats under a dotted path.

        Paths are unique: registering the same path twice is a
        configuration error (two components would silently shadow each
        other in every export).
        """
        if path in self._groups or path in self._histograms:
            raise ConfigError(f"metrics path {path!r} is already registered")
        if isinstance(metric, StatGroup):
            self._groups[path] = metric
        elif isinstance(metric, Histogram):
            self._histograms[path] = metric
        else:
            raise ConfigError(
                f"cannot register {type(metric).__name__} at {path!r}; "
                "expected StatGroup or Histogram"
            )

    def unregister(self, path: str) -> None:
        self._groups.pop(path, None)
        self._histograms.pop(path, None)

    def paths(self) -> list[str]:
        return sorted([*self._groups, *self._histograms])

    def __contains__(self, path: str) -> bool:
        return path in self._groups or path in self._histograms

    def __len__(self) -> int:
        return len(self._groups) + len(self._histograms)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every registered metric's current values."""
        return MetricsSnapshot(
            counters={
                path: group.as_dict() for path, group in self._groups.items()
            },
            histograms={
                path: histogram.summary()
                for path, histogram in self._histograms.items()
            },
        )


_DEFAULT: MetricsRegistry | None = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use).

    Observability sessions (:mod:`repro.obs.session`) use their own
    fresh registries so concurrent runs don't interleave; the default
    registry is for long-lived embedders that want one global sink.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricsRegistry()
    return _DEFAULT
