"""Observability sessions: wire a registry + tracer into built systems.

A session is the glue between drivers that know nothing about
observability and components that expose it. While a session is
active (``with observe(...) as session:``), every :class:`System`
constructed registers its components into the session's
:class:`MetricsRegistry` under stable dotted paths and — when tracing
is requested — gets the session's :class:`Tracer` installed into its
engine, cache hierarchy, and memory controller(s). The experiment
drivers (``run_transactions`` et al.) need no new parameters.

:class:`ObsRun` is the picklable envelope a worker returns for an
observed run: the driver's own record plus the metrics snapshot and
(optionally) the raw trace events, so observed results survive both
the process pool and the on-disk result cache.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.tracer import Tracer

_CURRENT: "ObsSession | None" = None


def current_session() -> "ObsSession | None":
    """The active session, or None (the common, zero-cost case)."""
    return _CURRENT


class ObsSession:
    """One observation window: a registry, an optional tracer, systems."""

    def __init__(
        self,
        trace: bool = False,
        max_trace_events: int = 1_000_000,
        detail: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer: Tracer | None = (
            Tracer(max_events=max_trace_events, detail=detail) if trace else None
        )
        self._systems = 0

    # ------------------------------------------------------------------
    def attach(self, system: Any) -> str:
        """Register one built system's components; returns its prefix.

        The first system gets bare paths (``mem.controller``); further
        systems in the same session are namespaced ``sys1.``, ``sys2.``
        ... so multi-run experiments keep every run's counters apart.
        """
        index = self._systems
        self._systems += 1
        prefix = "" if index == 0 else f"sys{index}."
        registry = self.registry

        for core in system.cores:
            registry.register(f"{prefix}cpu.core{core.core_id}", core.stats)
        hierarchy = system.hierarchy
        for core_id, l1 in enumerate(hierarchy.l1s):
            registry.register(f"{prefix}cache.l1.core{core_id}", l1.stats)
        registry.register(f"{prefix}cache.l2", hierarchy.l2.stats)
        registry.register(f"{prefix}cache.hierarchy", hierarchy.stats)
        registry.register(f"{prefix}cache.dbi", hierarchy.dbi.stats)
        if hierarchy.prefetcher is not None:
            registry.register(
                f"{prefix}cache.prefetcher", hierarchy.prefetcher.stats
            )

        controller = system.controller
        channel_controllers = getattr(controller, "controllers", None)
        if channel_controllers:
            for channel, channel_controller in enumerate(channel_controllers):
                base = f"{prefix}mem.channel{channel}.controller"
                registry.register(base, channel_controller.stats)
                registry.register(
                    f"{base}.queue_delay", channel_controller.queue_delay
                )
        else:
            registry.register(f"{prefix}mem.controller", controller.stats)
            registry.register(
                f"{prefix}mem.controller.queue_delay", controller.queue_delay
            )

        if self.tracer is not None:
            system.engine.tracer = self.tracer
            hierarchy.tracer = self.tracer
            if channel_controllers:
                for channel_controller in channel_controllers:
                    channel_controller.tracer = self.tracer
            else:
                controller.tracer = self.tracer
        return prefix

    def snapshot(self) -> MetricsSnapshot:
        return self.registry.snapshot()


@contextmanager
def observe(
    trace: bool = False,
    max_trace_events: int = 1_000_000,
    detail: bool = False,
) -> Iterator[ObsSession]:
    """Activate an observability session for the ``with`` body.

    Sessions do not nest: re-entering replaces the active session for
    the inner block and restores the outer one on exit, so each block's
    systems land in exactly one registry.
    """
    global _CURRENT
    previous = _CURRENT
    session = ObsSession(
        trace=trace, max_trace_events=max_trace_events, detail=detail
    )
    _CURRENT = session
    try:
        yield session
    finally:
        _CURRENT = previous


@dataclass
class ObsRun:
    """An observed run record: driver result + metrics (+ trace).

    Forwards ``result`` and ``verified`` so harness code that duck-types
    run records (``record.result.cycles``, ``record.verified``) works
    unchanged on observed runs.
    """

    record: Any
    metrics: MetricsSnapshot
    trace_events: list[dict] | None = None
    dropped_events: int = 0
    label: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def result(self) -> Any:
        return getattr(self.record, "result", None)

    @property
    def verified(self) -> bool:
        return bool(getattr(self.record, "verified", True))
