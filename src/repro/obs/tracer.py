"""Structured event tracer with Chrome-trace-format export.

The tracer records *spans* (``ph: "X"`` complete events with a
duration), *instant* events, and *counter* samples, each tagged with a
category: ``core``, ``cache``, ``mshr``, ``controller``, or
``dram-command``. Components hold a ``tracer`` attribute that is
``None`` by default — the hooks are a single identity check on paths
that already do real work, and the engine's dispatch loop keeps a
completely untraced fast path — so a run without tracing pays nothing.

Export is Chrome trace format (the JSON object form), loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``. Timestamps
are simulated CPU cycles written into the ``ts``/``dur`` microsecond
fields: 1 cycle renders as 1 us, so on-screen times are cycle counts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

from repro.errors import ReproError

#: The categories the simulator emits; validation rejects others so a
#: mistyped category fails a test instead of silently vanishing from
#: Perfetto's category filter.
CATEGORIES = ("core", "cache", "mshr", "controller", "dram-command", "engine")

#: Event phases this tracer produces.
_PHASES = ("X", "i", "C", "M")


class Tracer:
    """Append-only event recorder with a hard event cap.

    ``max_events`` bounds memory (and export size); once hit, further
    events are counted in ``dropped`` rather than stored, and the
    export notes the truncation. ``detail=True`` additionally records
    one instant event per engine dispatch — the full command-level
    timeline, at a large constant factor in trace size.
    """

    def __init__(self, max_events: int = 1_000_000, detail: bool = False) -> None:
        self.events: list[dict] = []
        self.max_events = max_events
        self.dropped = 0
        self.detail = detail
        self._category_cache: dict[type, str] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def instant(
        self,
        category: str,
        name: str,
        ts: int,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """A point-in-time event (``ph: "i"``, thread scope)."""
        event = {"name": name, "cat": category, "ph": "i", "ts": ts,
                 "pid": 0, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self._emit(event)

    def complete(
        self,
        category: str,
        name: str,
        ts: int,
        dur: int,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """A span (``ph: "X"``) from ``ts`` lasting ``dur`` cycles."""
        event = {"name": name, "cat": category, "ph": "X", "ts": ts,
                 "dur": dur, "pid": 0, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)

    def counter(
        self,
        category: str,
        name: str,
        ts: int,
        values: dict[str, float],
        tid: int = 0,
    ) -> None:
        """A counter sample (``ph: "C"``); Perfetto plots each key."""
        self._emit({"name": name, "cat": category, "ph": "C", "ts": ts,
                    "pid": 0, "tid": tid, "args": dict(values)})

    def engine_event(self, ts: int, callback: Callable[..., Any]) -> None:
        """One engine dispatch (recorded only when ``detail`` is on)."""
        if not self.detail:
            return
        owner = getattr(callback, "__self__", None)
        if owner is None:
            category = "engine"
        else:
            owner_type = type(owner)
            category = self._category_cache.get(owner_type)
            if category is None:
                category = _category_for(owner_type)
                self._category_cache[owner_type] = category
        self.instant(
            category, getattr(callback, "__qualname__", repr(callback)), ts
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self, label: str | None = None) -> dict:
        """The Chrome-trace JSON object for this tracer's events."""
        return chrome_trace([(label or "repro", self.events)],
                            dropped=self.dropped)

    def write_chrome(self, path: str | os.PathLike,
                     label: str | None = None) -> None:
        payload = self.to_chrome(label)
        with open(path, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.write("\n")


def _category_for(owner_type: type) -> str:
    """Map an event callback's owner to a trace category by type name."""
    name = owner_type.__name__
    if "Core" in name:
        return "core"
    if "Controller" in name:
        return "controller"
    if "Hierarchy" in name or "Cache" in name:
        return "cache"
    return "engine"


def chrome_trace(
    runs: list[tuple[str, list[dict]]], dropped: int = 0
) -> dict:
    """Combine per-run event lists into one Chrome-trace JSON object.

    Each run becomes its own process (``pid``), named via a metadata
    event, so Perfetto shows one labelled track group per simulation
    even though every engine's clock starts at cycle 0.
    """
    events: list[dict] = []
    for pid, (label, run_events) in enumerate(runs):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": label},
        })
        for event in run_events:
            events.append({**event, "pid": pid})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "cpu-cycles (1 cycle rendered as 1 us)",
            "generator": "repro.obs",
            "dropped_events": dropped,
        },
    }


def validate_chrome_trace(trace: dict | str | os.PathLike) -> int:
    """Validate a Chrome-trace JSON object (or file); return event count.

    Checks the subset of the format the tracer emits — enough for CI to
    guarantee the artifact loads in Perfetto: a ``traceEvents`` list
    whose entries carry a string ``name``, a known ``ph``, integer
    ``pid``/``tid``, a non-negative numeric ``ts`` (and ``dur`` for
    ``"X"`` spans), and a known category on non-metadata events.
    Raises :class:`ReproError` on the first violation.
    """
    if not isinstance(trace, dict):
        with open(trace) as handle:
            try:
                trace = json.load(handle)
            except ValueError as exc:
                raise ReproError(f"trace file is not valid JSON: {exc}") from exc
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ReproError("Chrome trace must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ReproError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        context = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ReproError(f"{context}: not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ReproError(f"{context}: missing or non-string 'name'")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ReproError(f"{context}: unknown phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ReproError(f"{context}: missing integer {key!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ReproError(f"{context}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ReproError(
                    f"{context}: 'X' span needs a non-negative 'dur'"
                )
        if phase != "M":
            category = event.get("cat")
            if category not in CATEGORIES:
                raise ReproError(f"{context}: unknown category {category!r}")
        if phase == "C" and not isinstance(event.get("args"), dict):
            raise ReproError(f"{context}: counter event needs dict 'args'")
    return len(events)
