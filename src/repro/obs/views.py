"""Derived profiling views over a structured trace.

Bandwidth buckets and row-buffer locality used to require opting into
the controller's separate ``command_trace`` machinery before the run.
With the tracer, the ``dram-command`` category *is* the command trace:
these helpers rebuild ``(time, Command)`` tuples from trace events and
delegate to the aggregation logic in :mod:`repro.mem.profile`, so the
post-hoc analyses stay one code path whichever way the commands were
captured.
"""

from __future__ import annotations

from repro.dram.commands import Command, CommandKind
from repro.mem.profile import (
    BandwidthProfile,
    RowLocality,
    bandwidth_profile,
    row_locality,
)

_KIND_BY_VALUE = {kind.value: kind for kind in CommandKind}


def commands_from_trace(events: list[dict]) -> list[tuple[int, Command]]:
    """The ``(time, Command)`` tuples hiding in ``dram-command`` events.

    Events from other categories are ignored, so the full mixed trace
    of an observed run can be passed directly.
    """
    commands: list[tuple[int, Command]] = []
    for event in events:
        if event.get("cat") != "dram-command":
            continue
        kind = _KIND_BY_VALUE.get(event.get("name", ""))
        if kind is None:
            continue
        args = event.get("args", {})
        # The in-DRAM compute kinds carry extra fields that
        # Command.__post_init__ validates; reconstruct them from the
        # event args (the PIM executor always records them).
        extra: dict = {}
        if kind is CommandKind.MULTI_ROW_ACTIVATE:
            extra = {"rows": tuple(args.get("rows", (0, 1))),
                     "op": args.get("op", "AND")}
        elif kind is CommandKind.SHIFT:
            extra = {"amount": args.get("amount", 1),
                     "op": args.get("op", "left")}
        commands.append(
            (
                int(event["ts"]),
                Command(
                    kind=kind,
                    bank=args.get("bank", event.get("tid", 0)),
                    row=args.get("row", 0),
                    column=args.get("column", 0),
                    pattern=args.get("pattern", 0),
                    **extra,
                ),
            )
        )
    return commands


def bandwidth_view(
    events: list[dict],
    bucket_cycles: int = 1000,
    line_bytes: int = 64,
) -> BandwidthProfile:
    """Time-bucketed data-bus traffic of an observed run's trace."""
    return bandwidth_profile(
        commands_from_trace(events),
        bucket_cycles=bucket_cycles,
        line_bytes=line_bytes,
    )


def row_locality_view(events: list[dict]) -> RowLocality:
    """Per-bank activation / row-run locality of an observed run's trace."""
    return row_locality(commands_from_trace(events))
