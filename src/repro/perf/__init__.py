"""Performance subsystem: parallel experiment runner, result cache, bench.

The figure harnesses sweep mechanism x scale grids of *independent*
simulations; :mod:`repro.perf.pool` fans those runs across a process
pool with deterministic result ordering, and :mod:`repro.perf.cache`
memoises each run on disk keyed by the full configuration plus the
code version, so harness reruns and CI skip already-simulated points.
:mod:`repro.perf.bench` times the tier-1 workloads and tracks the
wall-clock trajectory in ``BENCH_<date>.json`` baselines.
"""

from repro.perf.cache import ResultCache, code_version, default_cache
from repro.perf.partition import (
    partition_counts,
    partition_specs,
    shard_for_spec,
    stable_shard,
)
from repro.perf.pool import resolve_jobs, run_specs
from repro.perf.specs import RunSpec, cache_key, execute_spec, make_layout

__all__ = [
    "ResultCache",
    "RunSpec",
    "cache_key",
    "code_version",
    "default_cache",
    "execute_spec",
    "make_layout",
    "partition_counts",
    "partition_specs",
    "resolve_jobs",
    "run_specs",
    "shard_for_spec",
    "stable_shard",
]
