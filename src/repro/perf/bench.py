"""Perf baseline tooling: ``python -m repro bench``.

Times a fixed set of tier-1 workloads (one case per figure family),
cold and warm through the result cache, and writes a
``BENCH_<date>.json`` baseline with wall-clock, simulated events/sec,
cache hit rate, and per-component cycle attribution. When a previous
baseline from the *same machine* exists in the results directory, the
new run is compared against it and the command fails on a total
wall-clock regression beyond ``--threshold`` (default 15%) — CI keeps
the perf trajectory honest, developers get a one-command answer to
"did I just make the simulator slower?".

Cross-machine baselines are reported but not enforced (absolute
wall-clock is not comparable across hosts); set
``REPRO_BENCH_STRICT=1`` to enforce anyway.
"""

from __future__ import annotations

import cProfile
import dataclasses
import datetime
import io
import json
import os
import pathlib
import platform
import pstats
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.perf.cache import ResultCache, code_version
from repro.perf.pool import resolve_jobs, run_specs
from repro.perf.specs import RunSpec

DEFAULT_RESULTS_DIR = pathlib.Path("benchmarks/results")
DEFAULT_THRESHOLD = 0.15
#: Lines per strided-sweep point in the event-vs-fast bench cases
#: (fixed across scales so recorded speedups are comparable over time).
SWEEP_LINES = 1024
#: The cluster bench sweeps longer points (per-spec wall-clock must
#: dominate worker startup for the sharding ratio to mean anything).
CLUSTER_SWEEP_LINES = 8192
CLUSTER_SWEEP_STRIDES = (2, 4, 8)
#: Functions shown per case in the ``--profile`` dump.
PROFILE_TOP_N = 25


@dataclass
class BenchCase:
    """One timed workload: either a spec batch or a plain callable."""

    name: str
    specs: list[RunSpec] = field(default_factory=list)
    func: Callable[[], Any] | None = None


def _genverify_workload(vectorized: bool) -> Callable[[], Any]:
    """Generation + oracle-verification twin, scalar or vectorized.

    The two cases run the *same* figure-9-style workload (full-scale
    tuple table, full-scale transaction batch, observed-read oracle,
    final-state digest) through the scalar :class:`OracleTable` path
    and the columnar :class:`VecOracleTable` path. No simulator is
    involved, so the wall-clock ratio isolates exactly the
    generation+verify speedup the vectorization phase claims; equal
    digests double-check the twins computed the same thing. The
    workload shape is pinned to the ``full`` scale regardless of the
    bench's ``--scale`` so recorded speedups stay comparable.
    """

    def run() -> dict[str, Any]:
        from repro.db.schema import TableSchema
        from repro.db.table import OracleTable, VecOracleTable, table_digest
        from repro.db.workload import (
            FIGURE9_MIXES,
            clear_workload_caches,
            generate_transaction_arrays,
            generate_transactions,
            make_rows,
            make_rows_array,
        )
        from repro.harness.common import get_scale
        from repro.sim.results import StageTimer

        scale = get_scale("full")
        schema = TableSchema()
        mix = FIGURE9_MIXES[7]  # 4-2-2: reads, writes, and read-modify
        clear_workload_caches()  # cold timing must include row generation
        timer = StageTimer()
        if vectorized:
            with timer.stage("generate"):
                rows = make_rows_array(schema, scale.db_tuples)
                txns = generate_transaction_arrays(
                    schema, scale.db_tuples, mix, scale.db_transactions
                )
            with timer.stage("verify"):
                table = VecOracleTable(schema, rows)
                observed = table.apply_all(txns)
                digest = table.digest()
            observed_count = int(observed.size)
        else:
            with timer.stage("generate"):
                rows = make_rows(schema, scale.db_tuples)
                txns = generate_transactions(
                    schema, scale.db_tuples, mix, scale.db_transactions
                )
            with timer.stage("verify"):
                table = OracleTable(schema, rows)
                observed = table.apply_all(txns)
                digest = table_digest(table.rows)
            observed_count = len(observed)
        return {
            "digest": digest,
            "observed": observed_count,
            "stages": dict(timer.stages),
        }

    return run


def bench_cases(scale) -> list[BenchCase]:
    """The bench suite: one representative case per figure family.

    Spec-based cases run with ``obs="metrics"`` so each record carries a
    registry snapshot; per-component attribution comes from those
    snapshots rather than any bench-private bookkeeping. Registry
    observation is a handful of dict inserts per run, so the timing
    stays honest.

    At ``scale=paper`` the event-mode figure cases are dropped: the
    paper-scale workloads exist *because* of the vectorized path, and
    an event twin would run for hours. The fixed-size sweep pair and
    the genverify pair still run, so the fast-path and
    generation-speedup blocks stay populated.
    """
    from repro.harness.fig7_patterns import render_figure7
    from repro.harness.patternscan import pattern_sweep_specs
    from repro.harness.specsets import SPEC_FIGURES, figure_specs

    case_names = {
        "fig9": "fig9-transactions",
        "fig10": "fig10-analytics",
        "fig11": "fig11-htap",
        "fig13": "fig13-gemm",
        "infer": "infer-gather",
        "pim": "pim-ablation",
    }
    fast_only = scale.name == "paper"
    cases = [BenchCase("fig7-patterns", func=render_figure7)]
    for figure in SPEC_FIGURES:
        if not fast_only:
            cases.append(
                BenchCase(
                    case_names[figure],
                    specs=[
                        dataclasses.replace(spec, obs="metrics")
                        for spec in figure_specs(figure, scale)
                    ],
                )
            )
        # The same figure on the vectorized engine: the wall-clock
        # ratio against the event twin above is the per-figure
        # fast-path speedup recorded in the "fastpath" block.
        cases.append(
            BenchCase(
                f"{case_names[figure]}-fast",
                specs=[
                    dataclasses.replace(spec, obs="metrics")
                    for spec in figure_specs(figure, scale, mode="fast")
                ],
            )
        )
    # Scalar-vs-columnar oracle twins (no simulator): the recorded
    # generation+verify speedup. Names must not end in "-fast" — that
    # suffix pairs event/fast *figure* cases into the fastpath block.
    cases.append(
        BenchCase("genverify-scalar", func=_genverify_workload(False))
    )
    cases.append(
        BenchCase("genverify-vec", func=_genverify_workload(True))
    )
    # The same strided sweep on both substrates: the wall-clock ratio is
    # the recorded fast-path speedup (see docs/PERFORMANCE.md), and the
    # equivalence of the two results is asserted by repro.check.fastpath.
    cases.append(
        BenchCase(
            "fig7-sweep-event",
            specs=pattern_sweep_specs(lines=SWEEP_LINES, mode="event",
                                      obs="metrics"),
        )
    )
    cases.append(
        BenchCase(
            "fig7-sweep-fast",
            specs=pattern_sweep_specs(lines=SWEEP_LINES, mode="fast",
                                      obs="metrics"),
        )
    )
    return cases


def _run_results(records: list[Any]):
    """The RunResults hiding inside heterogeneous run records."""
    for record in records:
        result = getattr(record, "result", None)
        if result is not None and hasattr(result, "cycles"):
            yield result


def _stage_totals(records: list[Any]) -> dict[str, float]:
    """Summed per-stage wall time across a case's RunResults."""
    totals: dict[str, float] = {}
    for result in _run_results(records):
        for name, seconds in getattr(result, "stages", {}).items():
            totals[name] = totals.get(name, 0.0) + seconds
    return totals


def _attribution(records: list[Any]) -> dict[str, Any]:
    """Per-component attribution, read from the metrics registry.

    Spec-based cases return :class:`~repro.obs.ObsRun` records whose
    snapshots are merged into one component-path -> counters view; the
    headline numbers are totals over path prefixes (``cache.l1``,
    ``mem.``, ...). ``cycles``/``engine_events`` stay run-level (they
    are clock readings, not component counters).
    """
    from repro.obs.registry import MetricsSnapshot

    out: dict[str, Any] = {
        "cycles": 0.0,
        "instructions": 0.0,
        "engine_events": 0.0,
        "dram_reads": 0.0,
        "dram_writes": 0.0,
        "row_hits": 0.0,
        "row_misses": 0.0,
        "l1_misses": 0.0,
        "l2_misses": 0.0,
        "mean_memory_queue_delay": 0.0,
    }
    merged = MetricsSnapshot()
    observed = 0
    for record in records:
        snapshot = getattr(record, "metrics", None)
        if isinstance(snapshot, MetricsSnapshot):
            merged = merged.merge(snapshot)
            observed += 1
    for result in _run_results(records):
        out["cycles"] += result.cycles
        out["engine_events"] += result.extra.get("engine_events", 0.0)
    if observed:
        out["instructions"] = float(merged.total("instructions", "cpu."))
        out["dram_reads"] = float(merged.total("cmd_RD", "mem."))
        out["dram_writes"] = float(merged.total("cmd_WR", "mem."))
        out["row_hits"] = float(merged.total("row_hits", "mem."))
        out["row_misses"] = float(merged.total("row_misses", "mem."))
        out["l1_misses"] = float(merged.total("misses", "cache.l1"))
        out["l2_misses"] = float(merged.total("misses", "cache.l2"))
        delays = [
            digest for path, digest in merged.histograms.items()
            if path.endswith("queue_delay")
        ]
        total_count = sum(d.get("count", 0) for d in delays)
        if total_count:
            out["mean_memory_queue_delay"] = (
                sum(d.get("mean", 0.0) * d.get("count", 0) for d in delays)
                / total_count
            )
        out["components"] = {
            path: values for path, values in sorted(merged.counters.items())
        }
    return out


def _pim_block(pim_records: dict[str, list[Any]]) -> dict | None:
    """Per-workload GS-gather-vs-in-DRAM gains for the PIM ablation.

    Built from the run records the bench already produced. Each entry
    records both sides' work proxies, cycles, and energy — the
    baseline is the committed evidence for the ablation's honest
    result shape: at bench scale the in-DRAM *filter* wins outright in
    event mode while *sum* wins on traffic only (its cycle win needs
    tables large enough to amortise the per-chunk adder tree; see
    docs/INDRAM.md).
    """
    if not pim_records:
        return None
    block: dict[str, Any] = {}
    for mode, records in pim_records.items():
        runs = [getattr(record, "record", record) for record in records]
        by_key = {(run.workload, run.variant): run for run in runs}
        workloads: dict[str, Any] = {}
        for workload in ("sum", "filter"):
            gs = by_key.get((workload, "gs"))
            pim = by_key.get((workload, "pim"))
            if gs is None or pim is None:
                continue
            entry: dict[str, Any] = {
                "gs_work": gs.work_proxy,
                "pim_work": pim.work_proxy,
                "gain": (gs.work_proxy / pim.work_proxy
                         if pim.work_proxy else None),
                "traffic_reduction": (
                    gs.result.memory_accesses
                    / max(pim.result.memory_accesses, 1)
                ),
                "verified": gs.verified and pim.verified,
            }
            if mode == "event":
                entry["gs_cycles"] = gs.result.cycles
                entry["pim_cycles"] = pim.result.cycles
                entry["gs_energy_mj"] = gs.result.energy.total_mj
                entry["pim_energy_mj"] = pim.result.energy.total_mj
                pim_energy = pim.result.energy.total_mj
                entry["energy_gain"] = (
                    gs.result.energy.total_mj / pim_energy
                    if pim_energy else None
                )
            workloads[workload] = entry
        block[mode] = workloads
    return block or None


def _infer_block(infer_records: dict[str, list[Any]]) -> dict | None:
    """Per-workload GS-DRAM-vs-baseline gains for the inference family.

    Built from the run records the bench already produced (no extra
    simulation): the event side reports the cycle and energy gain, the
    fast side the work-proxy (memory-access) ratio — the two ways the
    paper quotes a mechanism win.
    """
    if not infer_records:
        return None
    block: dict[str, Any] = {}
    for mode, records in infer_records.items():
        runs = [getattr(record, "record", record) for record in records]
        by_key = {(run.workload, run.variant): run for run in runs}
        workloads: dict[str, Any] = {}
        for workload in ("gemv", "embed", "kvcache"):
            baseline = by_key.get((workload, "baseline"))
            gs = by_key.get((workload, "gs"))
            if baseline is None or gs is None:
                continue
            entry: dict[str, Any] = {
                "baseline_work": baseline.work_proxy,
                "gs_work": gs.work_proxy,
                "gain": (baseline.work_proxy / gs.work_proxy
                         if gs.work_proxy else None),
                "verified": baseline.verified and gs.verified,
            }
            if mode == "event":
                gs_energy = gs.result.energy.total_mj
                entry["energy_gain"] = (
                    baseline.result.energy.total_mj / gs_energy
                    if gs_energy else None
                )
            workloads[workload] = entry
        block[mode] = workloads
    return block or None


def machine_fingerprint() -> dict[str, str]:
    return {
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def available_cpus() -> int:
    """Cores this process may use — the ceiling on any cluster speedup."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-linux
        return os.cpu_count() or 1


def latest_baseline(results_dir: pathlib.Path) -> pathlib.Path | None:
    """The newest committed ``BENCH_*.json``, if any."""
    candidates = sorted(results_dir.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def compare_to_baseline(
    payload: dict, baseline: dict, threshold: float, strict: bool
) -> dict:
    """Regression verdict: new total wall vs the baseline's."""
    old_total = baseline.get("totals", {}).get("wall_s")
    new_total = payload["totals"]["wall_s"]
    verdict: dict[str, Any] = {
        "baseline_timestamp": baseline.get("timestamp"),
        "baseline_wall_s": old_total,
        "wall_s": new_total,
        "threshold": threshold,
    }
    same_machine = baseline.get("machine") == payload["machine"]
    if old_total is None:
        verdict["status"] = "no-baseline-total"
        return verdict
    old_scale = baseline.get("scale")
    new_scale = payload.get("scale")
    if old_scale is not None and new_scale is not None and old_scale != new_scale:
        # Wall-clock across scales measures the scales, not the code.
        verdict["status"] = "skipped-different-scale"
        return verdict
    if not same_machine and not strict:
        verdict["status"] = "skipped-different-machine"
        return verdict
    ratio = new_total / old_total if old_total else float("inf")
    verdict["ratio"] = ratio
    verdict["status"] = "regression" if ratio > 1.0 + threshold else "ok"
    return verdict


def run_bench(
    scale_name: str = "quick",
    jobs: int | None = None,
    results_dir: str | os.PathLike = DEFAULT_RESULTS_DIR,
    threshold: float = DEFAULT_THRESHOLD,
    cache_dir: str | os.PathLike | None = None,
    check_regression: bool = True,
    write: bool = True,
    profile: bool = False,
) -> tuple[dict, int]:
    """Run the bench suite; returns (payload, exit_code).

    ``profile=True`` wraps each case's cold pass in ``cProfile`` and
    writes the per-case top-``PROFILE_TOP_N`` cumulative functions to a
    ``PROFILE_<stamp>.txt`` next to the BENCH json. Profiling forces
    ``jobs=1`` — the profiler only sees this process, so pool workers
    would silently vanish from the attribution.
    """
    from repro.harness.common import scale_by_name

    scale = scale_by_name(scale_name)
    jobs = 1 if profile else resolve_jobs(jobs)
    results_dir = pathlib.Path(results_dir)

    # A fresh cache per bench run: the cold pass measures real
    # simulation speed, the warm pass measures the cache itself.
    scratch = None
    if cache_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = scratch.name
    cache = ResultCache(cache_dir)

    cases_out = []
    total_wall = 0.0
    total_events = 0.0
    infer_records: dict[str, list[Any]] = {}
    pim_records: dict[str, list[Any]] = {}
    profiles: dict[str, str] = {}
    try:
        for case in bench_cases(scale):
            profiler = cProfile.Profile() if profile else None
            if profiler is not None:
                profiler.enable()
            if case.func is not None:
                start = time.perf_counter()
                value = case.func()
                cold_wall = time.perf_counter() - start
                if profiler is not None:
                    profiler.disable()
                cache.put(f"bench-figure:{case.name}", value)
                start = time.perf_counter()
                cache.get(f"bench-figure:{case.name}")
                warm_wall = time.perf_counter() - start
                records: list[Any] = []
                # Callable cases can self-report stage timings by
                # returning a dict with a "stages" entry.
                stages = (dict(value["stages"])
                          if isinstance(value, dict) and "stages" in value
                          else {})
            else:
                start = time.perf_counter()
                records = run_specs(case.specs, jobs=jobs, cache=cache)
                cold_wall = time.perf_counter() - start
                if profiler is not None:
                    profiler.disable()
                start = time.perf_counter()
                run_specs(case.specs, jobs=jobs, cache=cache)
                warm_wall = time.perf_counter() - start
                stages = _stage_totals(records)
            if profiler is not None:
                buffer = io.StringIO()
                stats = pstats.Stats(profiler, stream=buffer)
                stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
                profiles[case.name] = buffer.getvalue()
            if case.name == "infer-gather":
                infer_records["event"] = records
            elif case.name == "infer-gather-fast":
                infer_records["fast"] = records
            elif case.name == "pim-ablation":
                pim_records["event"] = records
            elif case.name == "pim-ablation-fast":
                pim_records["fast"] = records
            attribution = _attribution(records)
            events = attribution["engine_events"]
            total_wall += cold_wall
            total_events += events
            cases_out.append(
                {
                    "name": case.name,
                    "runs": len(case.specs) or 1,
                    "wall_s": cold_wall,
                    "warm_wall_s": warm_wall,
                    "warm_speedup": cold_wall / warm_wall if warm_wall else None,
                    "events": events,
                    "events_per_s": events / cold_wall if cold_wall else 0.0,
                    "stages": stages,
                    "attribution": attribution,
                }
            )
    finally:
        if scratch is not None:
            scratch.cleanup()

    by_name = {case["name"]: case for case in cases_out}
    fastpath = None
    if "fig7-sweep-event" in by_name and "fig7-sweep-fast" in by_name:
        event_wall = by_name["fig7-sweep-event"]["wall_s"]
        fast_wall = by_name["fig7-sweep-fast"]["wall_s"]
        fastpath = {
            "sweep_lines": SWEEP_LINES,
            "event_wall_s": event_wall,
            "fast_wall_s": fast_wall,
            "speedup": event_wall / fast_wall if fast_wall else None,
        }
    figure_speedups = {}
    for name, case in by_name.items():
        if not name.endswith("-fast") or name[: -len("-fast")] not in by_name:
            continue
        event_wall = by_name[name[: -len("-fast")]]["wall_s"]
        fast_wall = case["wall_s"]
        figure_speedups[name[: -len("-fast")]] = {
            "event_wall_s": event_wall,
            "fast_wall_s": fast_wall,
            "speedup": event_wall / fast_wall if fast_wall else None,
        }
    if figure_speedups:
        fastpath = dict(fastpath or {}, figures=figure_speedups)

    infer_block = _infer_block(infer_records)
    if infer_block is not None and "infer-gather" in figure_speedups:
        infer_block["fast_speedup"] = figure_speedups["infer-gather"]["speedup"]

    pim_block = _pim_block(pim_records)
    if pim_block is not None and "pim-ablation" in figure_speedups:
        pim_block["fast_speedup"] = figure_speedups["pim-ablation"]["speedup"]

    genverify = None
    if "genverify-scalar" in by_name and "genverify-vec" in by_name:
        scalar_wall = by_name["genverify-scalar"]["wall_s"]
        vec_wall = by_name["genverify-vec"]["wall_s"]
        genverify = {
            "scale": "full",
            "scalar_wall_s": scalar_wall,
            "vec_wall_s": vec_wall,
            "speedup": scalar_wall / vec_wall if vec_wall else None,
        }

    stage_totals: dict[str, float] = {}
    for case in cases_out:
        for name, seconds in case["stages"].items():
            stage_totals[name] = stage_totals.get(name, 0.0) + seconds

    payload = {
        "schema": 2,  # 2: attribution sourced from the metrics registry
        "timestamp": datetime.datetime.now().isoformat(timespec="seconds"),
        "scale": scale.name,
        "jobs": jobs,
        "machine": machine_fingerprint(),
        "code_version": code_version(),
        "cases": cases_out,
        "fastpath": fastpath,
        "genverify": genverify,
        "infer": infer_block,
        "pim": pim_block,
        "stages": stage_totals,
        "cache": dict(cache.stats, hit_rate=cache.hit_rate),
        "totals": {
            "wall_s": total_wall,
            "events": total_events,
            "events_per_s": total_events / total_wall if total_wall else 0.0,
        },
    }

    exit_code = 0
    if check_regression:
        baseline_path = latest_baseline(results_dir)
        if baseline_path is not None:
            try:
                baseline = json.loads(baseline_path.read_text())
            except (OSError, ValueError):
                baseline = {}
            strict = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
            verdict = compare_to_baseline(payload, baseline, threshold, strict)
            verdict["baseline_file"] = baseline_path.name
            payload["regression_check"] = verdict
            if verdict["status"] == "regression":
                exit_code = 1

    if write:
        results_dir.mkdir(parents=True, exist_ok=True)
        stamp = datetime.datetime.now().strftime("%Y%m%d-%H%M%S")
        out_path = results_dir / f"BENCH_{stamp}.json"
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        payload["output_file"] = str(out_path)
        if profiles:
            profile_path = results_dir / f"PROFILE_{stamp}.txt"
            sections = [
                f"==== {name} ====\n{text}"
                for name, text in profiles.items()
            ]
            profile_path.write_text("\n".join(sections))
            payload["profile_file"] = str(profile_path)
    elif profiles:
        payload["profiles"] = profiles

    return payload, exit_code


def cluster_sweep_specs(lines: int = CLUSTER_SWEEP_LINES) -> list[RunSpec]:
    """The cluster bench workload: a wide fig7-style strided sweep.

    Wider and longer than the serial bench's sweep — more unique specs
    give the hash ring something to balance, and per-spec event-mode
    wall-clock must dominate per-worker startup for the measured ratio
    to reflect sharding rather than fixed costs.
    """
    return [
        RunSpec(
            kind="patternscan",
            params={"variant": variant, "stride": stride, "lines": size},
            mode="event",
        )
        for size in (lines, lines // 2)
        for stride in CLUSTER_SWEEP_STRIDES
        for variant in ("scalar", "gathered")
    ]


def run_cluster_bench(
    scale_name: str = "quick",
    cluster: int = 4,
    results_dir: str | os.PathLike = DEFAULT_RESULTS_DIR,
    write: bool = True,
    lines: int = CLUSTER_SWEEP_LINES,
) -> tuple[dict, int]:
    """Time one figure sweep at cluster sizes 1 and N; returns (payload, rc).

    ``repro bench --cluster N``. Each size gets a fresh result cache
    and its own :class:`~repro.serve.cluster.LocalCluster` of
    single-slot process-executor workers, so the measured ratio is the
    sharding speedup, not cache reuse. The per-size digest maps must be
    identical — a cluster that is fast but wrong fails the bench — and
    the baseline goes to ``CLUSTER_<stamp>.json`` (not ``BENCH_*``,
    which the serial regression gate globs).
    """
    from repro.serve.cluster import LocalCluster
    from repro.serve.server import ServeConfig

    del scale_name  # sweep size is fixed (comparable across runs)
    if cluster < 1:
        raise ValueError(f"cluster size must be >= 1, got {cluster}")
    specs = cluster_sweep_specs(lines)
    sizes = [1, cluster] if cluster > 1 else [1]
    worker_config = ServeConfig(
        port=0, executor="process", workers=1, state_dir=None,
        max_inflight=10_000, request_log=False,
    )

    entries = []
    digest_maps = []
    for size in sizes:
        with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
            cache = ResultCache(pathlib.Path(tmp) / "cache")
            with LocalCluster(size, cache=cache,
                              config=worker_config) as fleet:
                coordinator = fleet.coordinator(
                    poll=0.02, steal_after=30.0, speculate_after=300.0
                )
                start = time.perf_counter()
                report = coordinator.run_sweep(specs)
                wall = time.perf_counter() - start
        digest_maps.append(report.digests)
        entries.append({
            "cluster": size,
            "wall_s": wall,
            "specs": len(specs),
            "unique_specs": report.unique_specs,
            "per_worker": report.per_worker,
            "stats": report.stats,
        })

    digests_agree = all(d == digest_maps[0] for d in digest_maps)
    speedup = None
    if len(entries) == 2 and entries[1]["wall_s"]:
        speedup = entries[0]["wall_s"] / entries[1]["wall_s"]
    payload = {
        "schema": 1,
        "timestamp": datetime.datetime.now().isoformat(timespec="seconds"),
        "sweep_lines": lines,
        "machine": machine_fingerprint(),
        # Sharding cannot beat the core count: a 1.0x speedup on a
        # 1-CPU box is the hardware ceiling, not a cluster defect, so
        # the baseline records what the ratio was measured against.
        "cpus": available_cpus(),
        "code_version": code_version(),
        "cluster": {
            "sizes": sizes,
            "entries": entries,
            "speedup": speedup,
            "digests_agree": digests_agree,
        },
    }
    if write:
        results_dir = pathlib.Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        stamp = datetime.datetime.now().strftime("%Y%m%d-%H%M%S")
        out_path = results_dir / f"CLUSTER_{stamp}.json"
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        payload["output_file"] = str(out_path)
    return payload, 0 if digests_agree else 1


def render_cluster_summary(payload: dict) -> str:
    block = payload["cluster"]
    lines = [
        f"cluster bench @ sweep_lines={payload['sweep_lines']} "
        f"({payload['machine']['hostname']}, "
        f"py{payload['machine']['python']})"
    ]
    for entry in block["entries"]:
        stats = entry["stats"]
        lines.append(
            f"  cluster={entry['cluster']:<2} {entry['wall_s']:8.3f}s "
            f"for {entry['specs']} specs "
            f"(stolen={stats['stolen']}, speculated={stats['speculated']}, "
            f"rate_limited={stats['rate_limited']})"
        )
    if block.get("speedup"):
        line = (
            f"  cluster speedup: {block['speedup']:.2f}x "
            f"({block['entries'][0]['wall_s']:.3f}s -> "
            f"{block['entries'][-1]['wall_s']:.3f}s)"
        )
        cpus = payload.get("cpus", 0)
        if cpus and cpus < block["entries"][-1]["cluster"]:
            line += f" [ceiling: {cpus} cpu{'s' if cpus != 1 else ''}]"
        lines.append(line)
    lines.append(
        "  digests agree across cluster sizes: "
        + ("yes" if block["digests_agree"] else "NO — MISMATCH")
    )
    if "output_file" in payload:
        lines.append(f"  wrote {payload['output_file']}")
    return "\n".join(lines)


def render_summary(payload: dict) -> str:
    lines = [
        f"bench @ scale={payload['scale']} jobs={payload['jobs']} "
        f"({payload['machine']['hostname']}, py{payload['machine']['python']})"
    ]
    for case in payload["cases"]:
        line = f"  {case['name']:<18} {case['wall_s']:8.3f}s cold"
        if case["warm_speedup"]:
            line += (
                f"  {case['warm_wall_s']:8.4f}s warm"
                f" ({case['warm_speedup']:6.1f}x)"
            )
        if case["events"]:
            line += f"  {case['events_per_s']:>12,.0f} events/s"
        lines.append(line)
    totals = payload["totals"]
    lines.append(
        f"  total: {totals['wall_s']:.3f}s, "
        f"{totals['events_per_s']:,.0f} events/s, "
        f"cache hit rate {payload['cache']['hit_rate']:.0%}"
    )
    stage_totals = payload.get("stages") or {}
    if stage_totals:
        breakdown = "  ".join(
            f"{name}={seconds:.3f}s"
            for name, seconds in sorted(stage_totals.items())
        )
        lines.append(f"  stages: {breakdown}")
    genverify = payload.get("genverify")
    if genverify and genverify.get("speedup"):
        lines.append(
            f"  genverify (scale={genverify['scale']}): "
            f"{genverify['speedup']:.1f}x vectorized "
            f"({genverify['scalar_wall_s']:.3f}s -> "
            f"{genverify['vec_wall_s']:.3f}s)"
        )
    fastpath = payload.get("fastpath")
    if fastpath and fastpath.get("speedup"):
        lines.append(
            f"  fast path: {fastpath['speedup']:.1f}x vs event sweep "
            f"({fastpath['event_wall_s']:.3f}s -> "
            f"{fastpath['fast_wall_s']:.3f}s)"
        )
    if fastpath:
        for figure, entry in sorted(fastpath.get("figures", {}).items()):
            if entry.get("speedup"):
                lines.append(
                    f"  fast path {figure}: {entry['speedup']:.1f}x "
                    f"({entry['event_wall_s']:.3f}s -> "
                    f"{entry['fast_wall_s']:.3f}s)"
                )
    infer_block = payload.get("infer")
    if infer_block:
        for workload, entry in sorted(infer_block.get("event", {}).items()):
            if entry.get("gain"):
                line = f"  infer {workload}: GS-DRAM {entry['gain']:.2f}x"
                if entry.get("energy_gain"):
                    line += f" ({entry['energy_gain']:.2f}x energy)"
                lines.append(line)
    pim_block = payload.get("pim")
    if pim_block:
        for workload, entry in sorted(pim_block.get("event", {}).items()):
            if entry.get("gain"):
                line = f"  pim {workload}: in-DRAM {entry['gain']:.2f}x"
                if entry.get("energy_gain"):
                    line += f" ({entry['energy_gain']:.2f}x energy"
                    line += (f", {entry['traffic_reduction']:.1f}x traffic)"
                             if entry.get("traffic_reduction") else ")")
                lines.append(line)
    verdict = payload.get("regression_check")
    if verdict:
        status = verdict["status"]
        if status == "regression":
            lines.append(
                f"  REGRESSION vs {verdict['baseline_file']}: "
                f"{verdict['ratio']:.2f}x total wall-clock "
                f"(threshold {1 + verdict['threshold']:.2f}x)"
            )
        elif status == "ok":
            lines.append(
                f"  vs {verdict['baseline_file']}: {verdict['ratio']:.2f}x "
                f"(within {1 + verdict['threshold']:.2f}x) -- OK"
            )
        else:
            lines.append(f"  baseline comparison: {status}")
    if "output_file" in payload:
        lines.append(f"  wrote {payload['output_file']}")
    if "profile_file" in payload:
        lines.append(f"  wrote {payload['profile_file']}")
    return "\n".join(lines)
