"""On-disk result cache for deterministic simulation runs.

Every experiment in this reproduction is a pure function of its
configuration (the workloads are seeded, the engine is deterministic),
so a finished run can be reused for free. Entries are keyed by a
stable, canonical description of the run *plus* :func:`code_version`,
a content hash of the whole ``repro`` source tree — touching any
source file invalidates every cached result, which is the conservative
thing for a simulator where any module can affect timing.

Each entry is one file: a sha256 digest line followed by the pickled
payload. The digest is verified on every read, so a truncated or
poisoned entry is detected and treated as a miss (and counted in
``stats["poisoned"]``) instead of silently corrupting an experiment.

Environment knobs:

- ``REPRO_CACHE=0`` disables the default cache entirely;
- ``REPRO_CACHE_DIR`` relocates it (default: ``.repro-cache/`` under
  the current directory).
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pathlib
import pickle
import tempfile
from typing import Any

_CODE_VERSION: str | None = None


def code_version() -> str:
    """Content hash of every ``repro`` source file (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


class ResultCache:
    """Digest-verified pickle cache under one directory."""

    def __init__(self, root: str | os.PathLike, version: str | None = None) -> None:
        self.root = pathlib.Path(root)
        self.version = code_version() if version is None else version
        self.stats = {
            "hits": 0, "misses": 0, "stores": 0, "poisoned": 0,
            "stale_tmp": 0,
        }

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> pathlib.Path:
        name = hashlib.sha256(f"{self.version}\0{key}".encode()).hexdigest()
        return self.root / f"{name}.pkl"

    def get(self, key: str) -> Any | None:
        """The cached value, or None on miss / digest mismatch."""
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats["misses"] += 1
            return None
        newline = blob.find(b"\n")
        if newline < 0:
            self.stats["poisoned"] += 1
            self.stats["misses"] += 1
            return None
        digest, payload = blob[:newline], blob[newline + 1 :]
        if hashlib.sha256(payload).hexdigest().encode() != digest:
            self.stats["poisoned"] += 1
            self.stats["misses"] += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self.stats["poisoned"] += 1
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return value

    def put(self, key: str, value: Any) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode()
        path = self.path_for(key)
        # Write to a uniquely-named temp file in the same directory,
        # then atomically rename over the entry. A pid-based temp name
        # is not enough once the service makes multi-writer puts the
        # common case: two threads of one process (or a recycled pid)
        # would interleave writes into the same temp file and publish a
        # torn entry. mkstemp gives every writer its own file; the
        # losing os.replace simply overwrites the winner with an
        # identical, complete entry.
        handle, temporary = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(digest + b"\n" + payload)
            os.replace(temporary, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temporary)
            raise
        self.stats["stores"] += 1

    def clear(self) -> int:
        """Delete every entry and stale temp file; returns total removed.

        ``*.tmp`` files are the leavings of interrupted :meth:`put`
        calls (mkstemp file written, never renamed): invisible to
        :meth:`get`, but they accumulate forever unless swept here.
        Swept temps are counted in ``stats["stale_tmp"]``.
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.root.glob("*.tmp"):
                path.unlink(missing_ok=True)
                removed += 1
                self.stats["stale_tmp"] += 1
        return removed

    @property
    def hit_rate(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0


def default_cache() -> ResultCache | None:
    """The process-wide cache, or None when ``REPRO_CACHE=0``."""
    if os.environ.get("REPRO_CACHE", "1") == "0":
        return None
    root = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    return ResultCache(root)
