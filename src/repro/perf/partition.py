"""Deterministic spec partitioning for sharded sweep execution.

The cluster coordinator (:mod:`repro.serve.cluster`) splits a figure
sweep across N workers. The split must be a pure function of the specs
themselves — not of submission order, process identity, or time — so
that any participant (coordinator, worker, a differential check) can
recompute "which worker owns this spec" independently and agree.

:func:`stable_shard` is that function: sha256 of the spec's canonical
cache key, reduced mod the shard count. ``hash()`` would not do; it is
salted per process (PYTHONHASHSEED), so two processes would disagree.

Sharding by *cache key* (rather than round-robin over a list) has a
second property the cluster leans on: identical specs always land on
the same worker, so the worker's own coalescing deduplicates them
exactly as a single server would, and the shared
:class:`~repro.perf.cache.ResultCache` sees one writer per key in the
common case.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.errors import ConfigError
from repro.perf.specs import RunSpec, cache_key


def stable_shard(key: str, shards: int) -> int:
    """Deterministic shard index for a cache key, identical everywhere.

    Any process can recompute an assignment without asking the
    coordinator: the index depends only on ``(key, shards)``.
    """
    if shards < 1:
        raise ConfigError(f"shard count must be >= 1, got {shards}")
    raw = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "big") % shards


def shard_for_spec(spec: RunSpec, shards: int) -> int:
    """The shard that owns ``spec`` (by its canonical cache key)."""
    return stable_shard(cache_key(spec), shards)


def partition_specs(
    specs: Sequence[RunSpec], shards: int
) -> list[list[RunSpec]]:
    """Split ``specs`` into ``shards`` lists by stable cache-key hash.

    Every shard list preserves the relative order of the input (so a
    worker executes its slice in sweep order), and the concatenation of
    all lists is a permutation of the input. Empty shards stay as empty
    lists — callers index the result by shard number.
    """
    parts: list[list[RunSpec]] = [[] for _ in range(shards)]
    for spec in specs:
        parts[shard_for_spec(spec, shards)].append(spec)
    return parts


def partition_counts(specs: Sequence[RunSpec], shards: int) -> list[int]:
    """Per-shard spec counts — the balance diagnostic for logs/bench."""
    return [len(part) for part in partition_specs(specs, shards)]
