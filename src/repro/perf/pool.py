"""Process-pool experiment runner with deterministic ordering.

:func:`run_specs` is the one entry point the harnesses use: give it a
list of :class:`~repro.perf.specs.RunSpec` and it returns the matching
run records *in input order*, regardless of which worker finished
first. Already-cached specs never reach a worker; fresh results are
written back to the cache.

Failure policy: exceptions raised *by the workload itself*
(:class:`repro.errors.ReproError` subclasses) propagate unchanged —
the run would fail serially too, and the harness's verification logic
is the right place to handle it. Infrastructure failures (a worker
killed by the OS, a timeout, a broken pool) are retried and finally
re-executed serially in-process, so a flaky pool degrades to the old
serial behaviour instead of losing the experiment.

``REPRO_JOBS`` sets the default worker count (1 = serial, the
default: most CI boxes and the figure harnesses' small grids don't
amortise pool startup). ``REPRO_RUN_TIMEOUT`` caps seconds per run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from repro.errors import ReproError
from repro.perf.cache import ResultCache, default_cache
from repro.perf.specs import RunSpec, cache_key, execute_spec

#: Sentinel distinguishing "no cache argument" from "explicitly None".
_DEFAULT = object()


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    An explicit argument is clamped to 1 (harness code computes worker
    counts and 0 means "serial" by construction); ``REPRO_JOBS`` is
    operator input and is validated instead — a value below 1 is a
    typo'd configuration, not a request for serial execution, and
    silently clamping it would hide the mistake.
    """
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ReproError(f"REPRO_JOBS={env!r} is not an integer") from None
        if value < 1:
            raise ReproError(
                f"REPRO_JOBS={env!r} must be >= 1 (1 means serial execution)"
            )
        return value
    return 1


def _resolve_timeout(timeout: float | None) -> float | None:
    if timeout is not None:
        return timeout
    env = os.environ.get("REPRO_RUN_TIMEOUT", "")
    return float(env) if env else None


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int | None = None,
    cache: ResultCache | None | object = _DEFAULT,
    timeout: float | None = None,
    retries: int = 1,
) -> list[Any]:
    """Execute every spec; returns results in the order given.

    ``cache=None`` disables caching for this call; by default the
    process-wide cache (:func:`repro.perf.cache.default_cache`) is
    consulted first and populated afterwards.
    """
    if cache is _DEFAULT:
        cache = default_cache()
    jobs = resolve_jobs(jobs)
    timeout = _resolve_timeout(timeout)

    results: list[Any] = [None] * len(specs)
    keys: list[str | None] = [None] * len(specs)
    pending: list[int] = []
    for index, spec in enumerate(specs):
        if cache is not None:
            keys[index] = cache_key(spec)
            hit = cache.get(keys[index])
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)

    if not pending:
        return results

    if jobs <= 1 or len(pending) == 1:
        for index in pending:
            results[index] = execute_spec(specs[index])
            if cache is not None:
                cache.put(keys[index], results[index])
        return results

    remaining = list(pending)
    for _attempt in range(max(0, retries) + 1):
        if not remaining:
            break
        remaining = _run_pooled(specs, results, remaining, jobs, timeout)

    # Graceful fallback: whatever the pool could not deliver runs
    # serially in this process.
    for index in remaining:
        results[index] = execute_spec(specs[index])

    if cache is not None:
        for index in pending:
            cache.put(keys[index], results[index])
    return results


def _run_pooled(
    specs: Sequence[RunSpec],
    results: list[Any],
    indices: list[int],
    jobs: int,
    timeout: float | None,
) -> list[int]:
    """One pool pass; returns the indices that still need running."""
    failed: list[int] = []
    try:
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(indices)))
    except OSError:
        return indices
    try:
        futures = {index: executor.submit(execute_spec, specs[index])
                   for index in indices}
        for index, future in futures.items():
            try:
                results[index] = future.result(timeout=timeout)
            except ReproError:
                raise  # deterministic workload failure: not the pool's fault
            except FutureTimeout:
                future.cancel()
                failed.append(index)
            except BrokenProcessPool:
                failed.extend(i for i in futures if results[i] is None
                              and i not in failed)
                break
            except Exception:
                # Pickling errors, workers killed mid-run, etc.
                failed.append(index)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return failed
