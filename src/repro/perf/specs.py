"""Declarative, picklable descriptions of single simulation runs.

The figure harnesses drive their workloads through generator closures,
which cannot cross a process boundary. A :class:`RunSpec` is the
process-safe alternative: a flat description (kind + layout + params +
config overrides + seed) that a worker rehydrates with
:func:`execute_spec` into the exact same driver call the serial
harness would have made. The same canonical form doubles as the cache
key (:func:`cache_key`), so pooled and cached execution agree on what
"the same run" means.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError


@dataclass
class RunSpec:
    """One independent simulation run, by value.

    ``kind`` selects the driver (``transactions`` / ``analytics`` /
    ``htap`` / ``gemm`` / ``patternscan`` / ``infer`` / ``pim``),
    ``layout`` names a storage
    layout from
    :func:`make_layout`, ``params`` are the driver's keyword arguments,
    and ``seed`` pins the workload generator.

    ``obs`` selects observability (see :mod:`repro.obs`): ``"off"``
    (default), ``"metrics"`` (registry snapshot, near-zero cost),
    ``"trace"`` (snapshot + structured event trace), or
    ``"trace-detail"`` (additionally one instant per engine event).
    Because ``obs`` is part of the canonical form, it is part of the
    cache key: a traced request is never served from an untraced cache
    entry, and vice versa.

    ``mode`` selects the execution substrate: ``"event"`` (default, the
    full timed machine) or ``"fast"`` (the timing-free fast path of
    :mod:`repro.vec` — identical functional counts, zero cycles; see
    docs/PERFORMANCE.md). Like ``obs`` it is part of the cache key, so
    fast and event results never collide in the result cache.
    """

    kind: str
    layout: str | None = None
    params: dict = field(default_factory=dict)
    config_overrides: dict = field(default_factory=dict)
    seed: int | None = None
    obs: str = "off"
    mode: str = "event"

    def __post_init__(self) -> None:
        if self.obs not in ("off", "metrics", "trace", "trace-detail"):
            raise ConfigError(
                f"unknown obs mode {self.obs!r}; expected 'off', "
                "'metrics', 'trace', or 'trace-detail'"
            )
        if self.mode not in ("event", "fast"):
            raise ConfigError(
                f"unknown run mode {self.mode!r}; expected 'event' or 'fast'"
            )


def _canonical(value: Any) -> Any:
    """A JSON-able, deterministic form of ``value`` for hashing."""
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [type(value).__name__, _canonical(dataclasses.asdict(value))]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(f"cannot canonicalise {type(value).__name__} for caching")


def cache_key(spec: RunSpec) -> str:
    """A stable string identifying ``spec`` (code version is added by
    the cache layer)."""
    return json.dumps(_canonical(dataclasses.asdict(spec)), sort_keys=True)


def make_layout(name: str):
    """Instantiate a storage layout by registry name.

    ``partial-gather-<p>`` builds the reduced-stride GS store used by
    the shuffle-stage sweep.
    """
    from repro.db.layouts import (
        ColumnStore,
        GSDRAMStore,
        PartialGatherStore,
        RowStore,
    )

    registry = {
        RowStore.name: RowStore,
        ColumnStore.name: ColumnStore,
        GSDRAMStore.name: GSDRAMStore,
    }
    if name in registry:
        return registry[name]()
    if name.startswith("partial-gather-"):
        return PartialGatherStore(int(name.rsplit("-", 1)[1]))
    raise ConfigError(f"unknown layout {name!r}")


def execute_spec(spec: RunSpec) -> Any:
    """Run one spec to completion; returns the driver's run record.

    This is the function process-pool workers call, so everything it
    touches must be importable from a bare interpreter and everything
    it returns must pickle. Observed specs (``obs != "off"``) run under
    an observability session and return an :class:`~repro.obs.ObsRun`
    envelope (record + metrics snapshot + optional trace events), which
    pickles across both the pool and the result cache.
    """
    if spec.obs != "off":
        import os

        from repro.obs.session import ObsRun, observe

        trace = spec.obs in ("trace", "trace-detail")
        # REPRO_TRACE_LIMIT reaches pool workers through the inherited
        # environment; a spec field would needlessly split cache keys.
        limit = int(os.environ.get("REPRO_TRACE_LIMIT", "1000000"))
        with observe(
            trace=trace,
            max_trace_events=limit,
            detail=spec.obs == "trace-detail",
        ) as session:
            record = _execute_driver(spec)
        tracer = session.tracer
        return ObsRun(
            record=record,
            metrics=session.snapshot(),
            trace_events=list(tracer.events) if tracer is not None else None,
            dropped_events=tracer.dropped if tracer is not None else 0,
        )
    return _execute_driver(spec)


def _execute_driver(spec: RunSpec) -> Any:
    """Dispatch to the figure driver named by ``spec.kind``."""
    from repro.db.engine import run_analytics, run_htap, run_transactions
    from repro.db.workload import AnalyticsQuery, TransactionMix

    params = dict(spec.params)
    if spec.kind == "transactions":
        mix = params.pop("mix")
        if isinstance(mix, dict):
            # Wire form: dataclasses.asdict flattened the mix.
            mix = TransactionMix(**mix)
        elif not isinstance(mix, TransactionMix):
            mix = TransactionMix(*mix)
        if spec.seed is not None:
            params.setdefault("seed", spec.seed)
        return run_transactions(
            make_layout(spec.layout),
            mix,
            config_overrides=dict(spec.config_overrides),
            mode=spec.mode,
            **params,
        )
    if spec.kind == "analytics":
        query = params.pop("query")
        if isinstance(query, dict):
            query = AnalyticsQuery(tuple(query["fields"]))
        elif not isinstance(query, AnalyticsQuery):
            query = AnalyticsQuery(tuple(query))
        return run_analytics(
            make_layout(spec.layout),
            query,
            config_overrides=dict(spec.config_overrides),
            mode=spec.mode,
            **params,
        )
    if spec.kind == "patternscan":
        from repro.harness.patternscan import run_patternscan

        return run_patternscan(
            params.pop("variant"),
            params.pop("stride"),
            config_overrides=dict(spec.config_overrides),
            mode=spec.mode,
            **params,
        )
    if spec.kind == "htap":
        # mode="fast" requires params["txn_count"] (the phased variant);
        # run_htap raises ConfigError for the open-ended fast combination.
        return run_htap(
            make_layout(spec.layout),
            config_overrides=dict(spec.config_overrides),
            mode=spec.mode,
            **params,
        )
    if spec.kind == "infer":
        from repro.infer.runner import run_infer

        workload = params.pop("workload")
        variant = params.pop("variant")
        overrides = dict(spec.config_overrides) or None
        if spec.seed is not None:
            params.setdefault("seed", spec.seed)
        return run_infer(
            workload,
            variant,
            mode=spec.mode,
            config_overrides=overrides,
            **params,
        )
    if spec.kind == "pim":
        from repro.pim.driver import run_pim

        workload = params.pop("workload")
        variant = params.pop("variant")
        overrides = dict(spec.config_overrides) or None
        if spec.seed is not None:
            params.setdefault("seed", spec.seed)
        return run_pim(
            workload,
            variant,
            mode=spec.mode,
            config_overrides=overrides,
            **params,
        )
    if spec.kind == "gemm":
        from repro.gemm.autotune import run_gs, run_naive, run_tiled

        variant = params.pop("variant")
        overrides = dict(spec.config_overrides) or None
        if spec.seed is not None:
            params.setdefault("seed", spec.seed)
        if variant == "naive":
            return run_naive(overrides=overrides, mode=spec.mode, **params)
        if variant == "tiled":
            return run_tiled(overrides=overrides, mode=spec.mode, **params)
        if variant == "gs":
            return run_gs(overrides=overrides, mode=spec.mode, **params)
        raise ConfigError(f"unknown gemm variant {variant!r}")
    raise ConfigError(f"unknown run kind {spec.kind!r}")
