"""Declarative, picklable descriptions of single simulation runs.

The figure harnesses drive their workloads through generator closures,
which cannot cross a process boundary. A :class:`RunSpec` is the
process-safe alternative: a flat description (kind + layout + params +
config overrides + seed) that a worker rehydrates with
:func:`execute_spec` into the exact same driver call the serial
harness would have made. The same canonical form doubles as the cache
key (:func:`cache_key`), so pooled and cached execution agree on what
"the same run" means.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError


@dataclass
class RunSpec:
    """One independent simulation run, by value.

    ``kind`` selects the driver (``transactions`` / ``analytics`` /
    ``htap`` / ``gemm``), ``layout`` names a storage layout from
    :func:`make_layout`, ``params`` are the driver's keyword arguments,
    and ``seed`` pins the workload generator.
    """

    kind: str
    layout: str | None = None
    params: dict = field(default_factory=dict)
    config_overrides: dict = field(default_factory=dict)
    seed: int | None = None


def _canonical(value: Any) -> Any:
    """A JSON-able, deterministic form of ``value`` for hashing."""
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [type(value).__name__, _canonical(dataclasses.asdict(value))]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(f"cannot canonicalise {type(value).__name__} for caching")


def cache_key(spec: RunSpec) -> str:
    """A stable string identifying ``spec`` (code version is added by
    the cache layer)."""
    return json.dumps(_canonical(dataclasses.asdict(spec)), sort_keys=True)


def make_layout(name: str):
    """Instantiate a storage layout by registry name.

    ``partial-gather-<p>`` builds the reduced-stride GS store used by
    the shuffle-stage sweep.
    """
    from repro.db.layouts import (
        ColumnStore,
        GSDRAMStore,
        PartialGatherStore,
        RowStore,
    )

    registry = {
        RowStore.name: RowStore,
        ColumnStore.name: ColumnStore,
        GSDRAMStore.name: GSDRAMStore,
    }
    if name in registry:
        return registry[name]()
    if name.startswith("partial-gather-"):
        return PartialGatherStore(int(name.rsplit("-", 1)[1]))
    raise ConfigError(f"unknown layout {name!r}")


def execute_spec(spec: RunSpec) -> Any:
    """Run one spec to completion; returns the driver's run record.

    This is the function process-pool workers call, so everything it
    touches must be importable from a bare interpreter and everything
    it returns must pickle.
    """
    from repro.db.engine import run_analytics, run_htap, run_transactions
    from repro.db.workload import AnalyticsQuery, TransactionMix

    params = dict(spec.params)
    if spec.kind == "transactions":
        mix = params.pop("mix")
        if not isinstance(mix, TransactionMix):
            mix = TransactionMix(*mix)
        if spec.seed is not None:
            params.setdefault("seed", spec.seed)
        return run_transactions(
            make_layout(spec.layout),
            mix,
            config_overrides=dict(spec.config_overrides),
            **params,
        )
    if spec.kind == "analytics":
        query = params.pop("query")
        if not isinstance(query, AnalyticsQuery):
            query = AnalyticsQuery(tuple(query))
        return run_analytics(
            make_layout(spec.layout),
            query,
            config_overrides=dict(spec.config_overrides),
            **params,
        )
    if spec.kind == "htap":
        return run_htap(
            make_layout(spec.layout),
            config_overrides=dict(spec.config_overrides),
            **params,
        )
    if spec.kind == "gemm":
        from repro.gemm.autotune import run_gs, run_naive, run_tiled

        variant = params.pop("variant")
        overrides = dict(spec.config_overrides) or None
        if spec.seed is not None:
            params.setdefault("seed", spec.seed)
        if variant == "naive":
            return run_naive(overrides=overrides, **params)
        if variant == "tiled":
            return run_tiled(overrides=overrides, **params)
        if variant == "gs":
            return run_gs(overrides=overrides, **params)
        raise ConfigError(f"unknown gemm variant {variant!r}")
    raise ConfigError(f"unknown run kind {spec.kind!r}")
