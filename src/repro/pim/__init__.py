"""repro.pim: modeled in-DRAM compute (many-row activation + shift).

The subsystem layers over the existing DRAM model (docs/INDRAM.md):

- :mod:`repro.pim.reference` — numpy reference semantics for the MRA
  and SHIFT primitives; the device implementation in
  :mod:`repro.dram` is held byte-identical to it by tests and the
  ``repro check pim`` stage.
- :mod:`repro.pim.executor` — issues MRA/SHIFT/readback command
  streams against a real module, walking the per-bank timing windows
  (``timed=True``, the event model) or just counting commands
  (``timed=False``, the fast model). Functional results are identical
  by construction.
- :mod:`repro.pim.ops` — compiles analytics aggregates (bit-serial
  column sum, predicate filter) into MRA+SHIFT programs over
  bit-sliced row groups placed by
  :class:`repro.mem.mapping.PIMRowGroupPolicy`.
- :mod:`repro.pim.driver` — ``run_pim``: the GS-gather-vs-PIM
  ablation runs behind ``kind="pim"`` RunSpecs.
"""

from repro.pim.driver import PIMRun, run_pim
from repro.pim.executor import PIMExecutor
from repro.pim.reference import combine_reference, shift_reference

__all__ = [
    "PIMExecutor",
    "PIMRun",
    "combine_reference",
    "run_pim",
    "shift_reference",
]
