"""``run_pim``: the GS-gather-vs-PIM analytics ablation driver.

Both variants answer the same aggregate over the same seeded table
column and verify against the same numpy oracle:

- ``variant="gs"`` — GS-DRAM gathers the field column with pattern-7
  pattloads (the paper's Figure 8 loop) and the CPU folds the values;
  exactly the existing analytics machinery, run on
  :class:`~repro.sim.System` (event) or
  :class:`~repro.vec.fastpath.FastSystem` (fast).
- ``variant="pim"`` — the column is bit-sliced into per-bank row
  groups placed by :class:`~repro.mem.mapping.PIMRowGroupPolicy` and
  the aggregate is computed in-DRAM by the MRA+SHIFT programs of
  :mod:`repro.pim.ops`, timed (event) or command-counted (fast) by
  :class:`~repro.pim.executor.PIMExecutor`.

``answer``/``memory_digest`` are mode-independent for each variant
(fast and event execute identical functional work), which is what
``repro check pim`` asserts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.db.layouts import GSDRAMStore
from repro.db.workload import AnalyticsQuery, make_rows, make_rows_array
from repro.dram.module import DRAMModule
from repro.energy.model import system_energy
from repro.errors import ConfigError
from repro.mem.mapping import PIMRowGroupPolicy
from repro.obs.session import current_session
from repro.pim.executor import PIMExecutor
from repro.pim.ops import SliceChunk, chunk_values
from repro.sim.config import plain_dram_config, table1_config
from repro.sim.results import RunResult, StageTimer
from repro.sim.system import System
from repro.vec.shim import component_snapshot, machine_shim

WORKLOADS = ("sum", "filter")
VARIANTS = ("gs", "pim")

#: Mechanism labels for the figure.
VARIANT_MECHANISMS = {"gs": "GS-DRAM gather + CPU",
                      "pim": "In-DRAM compute (PIM)"}


@dataclass
class PIMRun:
    """Outcome of one ablation run (either variant, either mode)."""

    workload: str
    variant: str
    mode: str
    params: dict
    result: RunResult
    verified: bool
    #: The aggregate value, as text (sum or match count).
    answer: str
    #: sha256 over the bytes the CPU actually received (gathered values
    #: for GS, slice/mask readback for PIM) — equal across modes iff
    #: the functional run was identical.
    memory_digest: str
    component_stats: dict | None = field(default=None)

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def work_proxy(self) -> int:
        """Cycles when timed, DRAM line traffic on the fast path."""
        return self.result.cycles or self.result.memory_accesses


def _threshold(values: np.ndarray) -> int:
    """Deterministic predicate constant: the column's median."""
    return int(np.sort(values)[values.shape[0] // 2])


def _oracle(workload: str, values: np.ndarray, threshold: int) -> int:
    if workload == "sum":
        return int(values.sum())
    if workload == "filter":
        return int((values < threshold).sum())
    raise ConfigError(f"unknown pim workload {workload!r}; "
                      f"expected one of {WORKLOADS}")


# ----------------------------------------------------------------------
# GS side: gather + CPU fold
# ----------------------------------------------------------------------
def _run_gs(workload, mode, num_tuples, field_id, seed,
            config_overrides, timer):
    layout = GSDRAMStore()
    with timer.stage("generate"):
        rows = make_rows(layout.schema, num_tuples, seed=seed)
        values = make_rows_array(layout.schema, num_tuples,
                                 seed=seed)[:, field_id]
        threshold = _threshold(values)
    with timer.stage("setup"):
        config = table1_config(**(config_overrides or {}))
        if mode == "fast":
            from repro.vec.fastpath import FastSystem

            system = FastSystem(config)
        elif mode == "event":
            system = System(config)
        else:
            raise ConfigError(f"unknown run mode {mode!r}")
        layout.attach(system, num_tuples)
        layout.load_rows(rows)

    total = [0]
    digest = hashlib.sha256()

    if workload == "sum":
        def sink(value: int) -> None:
            total[0] += value
            digest.update(value.to_bytes(8, "little"))
    else:
        def sink(value: int) -> None:
            if value < threshold:
                total[0] += 1
            digest.update(value.to_bytes(8, "little"))

    query = AnalyticsQuery((field_id,))
    with timer.stage("run"):
        result = system.run([layout.analytics_ops(query, sink)])
    stats = component_snapshot(system)
    with timer.stage("verify"):
        expected = _oracle(workload, values, threshold)
        verified = total[0] == expected
    return result, total[0], digest.hexdigest(), verified, threshold, stats


# ----------------------------------------------------------------------
# PIM side: bit-sliced in-DRAM programs
# ----------------------------------------------------------------------
def _run_pim_variant(workload, mode, num_tuples, field_id, seed,
                     config_overrides, timer):
    from repro.db.schema import TableSchema

    schema = TableSchema()
    with timer.stage("generate"):
        values = make_rows_array(schema, num_tuples, seed=seed)[:, field_id]
        threshold = _threshold(values)
        width_in = max(int(values.max()).bit_length(), 1)
    with timer.stage("setup"):
        if mode not in ("event", "fast"):
            raise ConfigError(f"unknown run mode {mode!r}")
        config = plain_dram_config(**(config_overrides or {}))
        module = DRAMModule(
            geometry=config.geometry,
            cpu_per_bus=config.cpu_per_bus,
            policy=config.mapping_policy,
        )
        policy = PIMRowGroupPolicy(module)
        executor = PIMExecutor(module, timed=(mode == "event"))
        chunks = [
            SliceChunk(executor, policy, bank, chunk_vals, width_in)
            for bank, chunk_vals in chunk_values(
                values, module.geometry.banks, module.geometry.row_bytes * 8
            )
        ]

    digest = hashlib.sha256()
    total = 0
    with timer.stage("run"):
        if workload == "sum":
            for chunk in chunks:
                chunk.sum_reduce()
            for chunk in chunks:
                partial, raw = chunk.read_sum()
                total += partial
                digest.update(raw)
        elif workload == "filter":
            for chunk in chunks:
                chunk.compare_less_than(threshold)
            for chunk in chunks:
                count, raw = chunk.read_mask()
                total += count
                digest.update(raw)
        else:
            raise ConfigError(f"unknown pim workload {workload!r}; "
                              f"expected one of {WORKLOADS}")

    counts = dict(executor.stats.as_dict())
    cycles = executor.cycles
    with timer.stage("verify"):
        expected = _oracle(workload, values, threshold)
        verified = total == expected

    # The CPU's only timed contribution is folding the per-chunk
    # partials; everything else happened inside the chips.
    instructions = len(chunks)
    energy = system_energy(
        runtime_cycles=cycles,
        instructions=instructions,
        l1_accesses=0,
        l2_accesses=0,
        command_counts=counts,
        cores=1,
        cpu_ghz=config.cpu_ghz,
    )
    result = RunResult(
        mechanism="pim",
        cycles=cycles,
        instructions=instructions,
        loads=counts.get("cmd_RD", 0),
        stores=0,
        l1_hits=0,
        l1_misses=0,
        l2_hits=0,
        l2_misses=0,
        dram_reads=counts.get("cmd_RD", 0),
        dram_writes=counts.get("cmd_WR", 0),
        row_hits=counts.get("cmd_RD", 0),
        row_misses=counts.get("cmd_ACT", 0),
        prefetches=0,
        coherence_invalidations=0,
        writebacks=0,
        energy=energy,
        extra={
            "cmd_MRA2": float(counts.get("cmd_MRA2", 0)),
            "cmd_MRA3": float(counts.get("cmd_MRA3", 0)),
            "cmd_SHIFT": float(counts.get("cmd_SHIFT", 0)),
            "shift_stages": float(counts.get("shift_stages", 0)),
            "pim_chunks": float(len(chunks)),
            "fast_path": 0.0 if mode == "event" else 1.0,
        },
    )
    # Surface the PIM counters through an active observability session
    # exactly like the vectorized engines do for skipped machines.
    session = current_session()
    if session is not None:
        session.attach(machine_shim(
            config,
            core_counts={"instructions": instructions},
            controller_counts=counts,
        ))
    stats = {"pim": counts}
    return result, total, digest.hexdigest(), verified, threshold, stats


def run_pim(
    workload: str,
    variant: str,
    mode: str = "event",
    config_overrides: dict | None = None,
    num_tuples: int = 8192,
    field_id: int = 0,
    seed: int = 1,
) -> PIMRun:
    """Run one side of the GS-gather-vs-PIM ablation, oracle-verified."""
    if workload not in WORKLOADS:
        raise ConfigError(f"unknown pim workload {workload!r}; "
                          f"expected one of {WORKLOADS}")
    if variant not in VARIANTS:
        raise ConfigError(f"unknown pim variant {variant!r}; "
                          f"expected one of {VARIANTS}")
    timer = StageTimer()
    runner = _run_gs if variant == "gs" else _run_pim_variant
    result, answer, memory_digest, verified, threshold, stats = runner(
        workload, mode, num_tuples, field_id, seed, config_overrides, timer
    )
    timer.attach(result)
    return PIMRun(
        workload=workload,
        variant=variant,
        mode=mode,
        params={"num_tuples": num_tuples, "field_id": field_id,
                "seed": seed, "threshold": threshold},
        result=result,
        verified=verified,
        answer=str(answer),
        memory_digest=memory_digest,
        component_stats=stats,
    )
