"""The PIM command executor: functional semantics + timing + counters.

The in-DRAM command stream is strictly sequential per bank (each MRA
consumes the previous one's destination), so its event-accurate timing
model needs no discrete event engine: a per-bank completion cursor
walking the real :class:`repro.dram.bank.Bank` issue windows, plus a
shared command-bus cursor (one command slot per ``cpu_per_bus``
cycles), reproduces exactly what the event controller would do with
these commands. Banks overlap with each other — chunked aggregates
farm one chunk per bank — and ``cycles`` is the latest completion.

``timed=False`` is the fast mode: the same commands mutate the same
byte arrays and bump the same counters, only the window walk is
skipped, so functional outputs and command counts are equal to the
timed run by construction (``repro check pim`` verifies the resulting
digest equality end to end).
"""

from __future__ import annotations

from repro.dram import commands
from repro.errors import ProtocolError
from repro.utils.statistics import StatGroup


class PIMExecutor:
    """Issues MRA / SHIFT / readback streams against one DRAM module."""

    def __init__(self, module, timed: bool = True, tracer=None) -> None:
        self.module = module
        self.timed = timed
        self.tracer = tracer
        self.stats = StatGroup("pim")
        banks = module.geometry.banks
        self._bank_time = [0] * banks
        self._bus_free = 0

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Completion cycle of the latest command (0 when untimed)."""
        return max(self._bank_time) if self.timed else 0

    def _slot(self, bank_id: int) -> int:
        """Earliest cycle the command bus + bank can accept a command."""
        return max(self._bus_free, self._bank_time[bank_id])

    def _took(self, bank_id: int, issue: int, end: int) -> None:
        self._bus_free = issue + self.module.cpu_per_bus
        self._bank_time[bank_id] = end

    def _trace(self, command) -> None:
        if self.tracer is None:
            return
        args = {"bank": command.bank, "row": command.row,
                "column": command.column, "pattern": command.pattern}
        if command.rows:
            args["rows"] = list(command.rows)
        if command.kind is commands.CommandKind.MULTI_ROW_ACTIVATE:
            args["op"] = command.op
        if command.kind is commands.CommandKind.SHIFT:
            args["op"] = command.op
            args["amount"] = command.amount
        now = self._bank_time[command.bank] if self.timed else 0
        self.tracer.instant("dram-command", command.kind.value, now,
                            tid=command.bank, args=args)

    # ------------------------------------------------------------------
    # In-DRAM compute commands
    # ------------------------------------------------------------------
    def mra(self, bank_id: int, rows: tuple[int, ...], dest: int,
            op: str) -> None:
        """Issue one multi-row activation (validated, functional, timed)."""
        command = commands.mra(bank_id, rows, dest, op)
        self.module.rank.mra(bank_id, command.rows, dest, op)
        self.stats.add(f"cmd_MRA{len(command.rows)}")
        self.stats.add(f"mra_{op.lower()}")
        if self.timed:
            bank = self.module.banks[bank_id]
            issue = max(self._slot(bank_id), bank.next_activate)
            end = bank.issue_mra(command.rows, issue)
            self._took(bank_id, issue, end)
        self._trace(command)

    def shift(self, bank_id: int, row: int, amount: int,
              direction: str = "left") -> None:
        """Issue one in-array shift (validated, functional, timed)."""
        command = commands.shift(bank_id, row, amount, direction)
        self.module.rank.shift_row(bank_id, row, amount, direction)
        stages = amount.bit_length()
        self.stats.add("cmd_SHIFT")
        self.stats.add("shift_stages", stages)
        if self.timed:
            bank = self.module.banks[bank_id]
            issue = max(self._slot(bank_id), bank.next_activate)
            end = bank.issue_shift(stages, issue)
            self._took(bank_id, issue, end)
        self._trace(command)

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def load_row(self, bank_id: int, row: int, data: bytes) -> None:
        """Functionally pre-load one row (untimed, like ``mem_write``).

        Bit-slice layout construction is part of a workload's setup
        phase — symmetric with the GS side loading its table through
        functional writes — so it issues no timed commands.
        """
        self.module.rank.write_row(bank_id, row, data)
        self.stats.add("rows_loaded")

    def read_lines(self, bank_id: int, row: int, columns: int) -> bytes:
        """Read the first ``columns`` lines of a row back to the CPU.

        Timed as the event controller would issue it: ACT, a row-hit
        READ per line, PRE.
        """
        if columns < 1 or columns > self.module.geometry.columns_per_row:
            raise ProtocolError(
                f"readback of {columns} lines from a "
                f"{self.module.geometry.columns_per_row}-column row")
        timing = self.module.timing
        if self.timed:
            bank = self.module.banks[bank_id]
            issue = max(self._slot(bank_id), bank.next_activate)
            bank.issue_activate(row, issue)
            self._bus_free = issue + self.module.cpu_per_bus
            burst_end = issue
            for _ in range(columns):
                slot = max(self._bus_free, bank.next_column)
                burst_end = bank.issue_read(row, slot)
                self._bus_free = slot + self.module.cpu_per_bus
            pre = max(self._bus_free, bank.next_precharge, burst_end)
            bank.issue_precharge(pre)
            self._bank_time[bank_id] = pre + timing.t_rp
        self.stats.add("cmd_ACT")
        self.stats.add("cmd_RD", columns)
        self.stats.add("cmd_PRE")
        parts = [
            self.module.rank.read_line(bank_id, row, column)
            for column in range(columns)
        ]
        return b"".join(parts)
