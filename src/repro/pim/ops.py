"""Compiling analytics aggregates into MRA + SHIFT programs.

Layout: *bit slices* with *dual-rail* encoding. A chunk of up to
``row_bytes * 8`` values lives in one bank as ``W`` slice rows —
bit-lane ``t`` of slice ``w`` is bit ``w`` of value ``t`` — plus one
complement row per slice. The complement rail exists because the MRA
primitive set (AND/OR/MAJ) has no inversion: every intermediate the
programs need is produced together with its complement from
complementary minterm formulas, and the input complements are
computed at (untimed) load, exactly like PULSAR-style bit-serial
arithmetic. Lanes beyond the live values hold 0 on the data rail and
1 on the complement rail — the dual-rail encoding of the value 0 —
so reductions over the full row are exact without masking.

Two aggregates compile today, both over one u64 field column of the
DB table:

- ``column sum`` — lane-halving tree reduction: per level, copy the
  accumulator slices (2-row AND with an all-ones control row), SHIFT
  the copies right by the level stride so lane ``t+s`` aligns with
  lane ``t``, then ripple-carry add copy into accumulator with a
  15-MRA dual-rail full adder per bit. After ``ceil(log2(lanes))``
  levels lane 0 holds the chunk total; the per-chunk partials (one
  per bank chunk) are read back and added on the CPU.
- ``predicate filter`` (``field < K``) — MSB-first comparator, ~3
  MRAs per bit, leaving a match mask row that is read back (N/8 bytes
  instead of the N*8 bytes a gather moves) and popcounted.

Shift-in zeros corrupt the complement rail only in the top ``s``
lanes of a level; a lane-index argument shows no live lane ever
consumes them, and the byte-for-byte oracle check in tests and
``repro check pim`` enforces it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.pim.executor import PIMExecutor
from repro.pim.reference import bit_slice_rows


def _ceil_log2(n: int) -> int:
    return max(n - 1, 0).bit_length()


class SliceChunk:
    """One bank-resident chunk of bit-sliced values + its programs."""

    def __init__(
        self,
        executor: PIMExecutor,
        policy,
        bank: int,
        values: np.ndarray,
        width_in: int,
    ) -> None:
        module = executor.module
        self.ex = executor
        self.bank = bank
        self.lanes = int(values.shape[0])
        self.row_bytes = module.geometry.row_bytes
        if self.lanes > self.row_bytes * 8:
            raise WorkloadError(
                f"chunk of {self.lanes} lanes exceeds the "
                f"{self.row_bytes * 8}-lane row")
        self.width_in = width_in
        self.levels = _ceil_log2(self.lanes)
        #: Slices needed for the running sum: inputs plus one carry-out
        #: bit per reduction level.
        self.width = width_in + self.levels
        group = policy.reserve_row_group(bank, 4 * self.width + 13)
        rows = list(group)
        take = lambda n: [rows.pop() for _ in range(n)]
        self.A = take(self.width)     # accumulator data rail
        self.An = take(self.width)    # accumulator complement rail
        self.B = take(self.width)     # shifted-addend data rail
        self.Bn = take(self.width)    # shifted-addend complement rail
        (self.ONE, self.ZERO, self.C, self.Cn, self.C2, self.C2n,
         self.S, self.E, self.L) = take(9)
        self.T = take(4)              # minterm scratch
        self._load(values)

    # ------------------------------------------------------------------
    # Setup (untimed, symmetric with the GS table load)
    # ------------------------------------------------------------------
    def _load(self, values: np.ndarray) -> None:
        slices = bit_slice_rows(values, self.width_in, self.row_bytes)
        for w in range(self.width_in):
            data = slices[w].tobytes()
            self.ex.load_row(self.bank, self.A[w], data)
            self.ex.load_row(self.bank, self.An[w],
                             (~slices[w]).tobytes())
        ones = b"\xff" * self.row_bytes
        self.ex.load_row(self.bank, self.ONE, ones)
        # Untouched rows read as zeros, but the high accumulator
        # slices' complement rails must read as ones (the dual-rail
        # encoding of 0) before their carry-out is written.
        for w in range(self.width_in, self.width):
            self.ex.load_row(self.bank, self.An[w], ones)

    # ------------------------------------------------------------------
    # Command-emitting building blocks
    # ------------------------------------------------------------------
    def _copy(self, src: int, dest: int) -> None:
        """dest := src, as a 2-row AND with the all-ones control row."""
        self.ex.mra(self.bank, (src, self.ONE), dest, "AND")

    def _clear_carry(self) -> None:
        self.ex.mra(self.bank, (self.ZERO, self.ONE), self.C, "AND")
        self.ex.mra(self.bank, (self.ZERO, self.ONE), self.Cn, "OR")

    def _full_adder(self, w: int) -> None:
        """A[w], carry := A[w] + B[w] + carry, dual-rail (15 MRAs)."""
        ex, bank = self.ex, self.bank
        a, an = self.A[w], self.An[w]
        b, bn = self.B[w], self.Bn[w]
        c, cn = self.C, self.Cn
        t1, t2, t3, t4 = self.T
        ex.mra(bank, (a, b, c), self.C2, "MAJ")
        ex.mra(bank, (an, bn, cn), self.C2n, "MAJ")
        # sum = XOR3 as an OR of its four minterms, staged in S so the
        # complement can still read the original a.
        ex.mra(bank, (a, bn, cn), t1, "AND")
        ex.mra(bank, (an, b, cn), t2, "AND")
        ex.mra(bank, (an, bn, c), t3, "AND")
        ex.mra(bank, (a, b, c), t4, "AND")
        ex.mra(bank, (t1, t2, t3), self.S, "OR")
        ex.mra(bank, (self.S, t4), self.S, "OR")
        # ~sum from the complementary minterms, straight into An[w].
        ex.mra(bank, (an, bn, cn), t1, "AND")
        ex.mra(bank, (a, b, cn), t2, "AND")
        ex.mra(bank, (a, bn, c), t3, "AND")
        ex.mra(bank, (an, b, c), t4, "AND")
        ex.mra(bank, (t1, t2, t3), an, "OR")
        ex.mra(bank, (an, t4), an, "OR")
        self._copy(self.S, a)
        # The carry chains into the next bit: swap roles (free —
        # compiler-side renaming, no command).
        self.C, self.C2 = self.C2, self.C
        self.Cn, self.C2n = self.C2n, self.Cn

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------
    def sum_reduce(self) -> None:
        """Tree-reduce the chunk; lane 0 of A ends up the chunk total."""
        stride = 1
        for level in range(self.levels):
            live_width = self.width_in + level
            for w in range(live_width):
                self._copy(self.A[w], self.B[w])
                self._copy(self.An[w], self.Bn[w])
                self.ex.shift(self.bank, self.B[w], stride, "right")
                self.ex.shift(self.bank, self.Bn[w], stride, "right")
            self._clear_carry()
            for w in range(live_width):
                self._full_adder(w)
            # Ripple carry-out becomes the new top slice (it was 0/1
            # dual-rail until now, so a copy is exact).
            self._copy(self.C, self.A[live_width])
            self._copy(self.Cn, self.An[live_width])
            stride *= 2

    def read_sum(self) -> tuple[int, bytes]:
        """Read lane 0 of every accumulator slice; returns (value, raw)."""
        raw = bytearray()
        total = 0
        for w in range(self.width):
            line = self.ex.read_lines(self.bank, self.A[w], 1)
            raw += line[:1]
            total |= (line[0] & 1) << w
        return total, bytes(raw)

    def compare_less_than(self, threshold: int) -> None:
        """Build the ``value < threshold`` match mask in row L."""
        ex, bank = self.ex, self.bank
        if threshold < 0:
            raise WorkloadError(f"threshold must be non-negative, got {threshold}")
        if threshold >> self.width_in:
            # Every representable value is below the threshold; the
            # bit loop only scans width_in bits, so emit the constant
            # mask directly instead of dropping the high bits.
            ex.mra(bank, (self.ZERO, self.ONE), self.L, "OR")
            return
        # E: still-equal prefix (starts all ones); L: already-less.
        ex.mra(bank, (self.ZERO, self.ONE), self.E, "OR")
        ex.mra(bank, (self.ZERO, self.ONE), self.L, "AND")
        t1 = self.T[0]
        for w in reversed(range(self.width_in)):
            if (threshold >> w) & 1:
                ex.mra(bank, (self.E, self.An[w]), t1, "AND")
                ex.mra(bank, (self.L, t1), self.L, "OR")
                ex.mra(bank, (self.E, self.A[w]), self.E, "AND")
            else:
                ex.mra(bank, (self.E, self.An[w]), self.E, "AND")

    def read_mask(self) -> tuple[int, bytes]:
        """Read the match mask back; returns (live popcount, raw bytes).

        Only ``ceil(lanes/8)`` bytes cross the bus — the 64x traffic
        reduction over gathering the values. Dead lanes (which encode
        the value 0 and may match the predicate) are sliced off before
        the popcount.
        """
        mask_bytes = (self.lanes + 7) // 8
        line_bytes = self.ex.module.line_bytes
        columns = (mask_bytes + line_bytes - 1) // line_bytes
        raw = self.ex.read_lines(self.bank, self.L, columns)[:mask_bytes]
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8),
                             bitorder="little")[: self.lanes]
        return int(bits.sum()), raw


def chunk_values(values: np.ndarray, banks: int, row_lanes: int,
                 min_lanes: int = 4096) -> list[tuple[int, np.ndarray]]:
    """Split a value column into per-bank chunks.

    Chunks want to be as large as possible (per-chunk width overhead
    amortises over lanes) but spread over banks for command-level
    parallelism; below ``banks * min_lanes`` values, fewer, fuller
    chunks win. Returns ``(bank, chunk)`` pairs, round-robin over
    banks.
    """
    n = values.shape[0]
    if n == 0:
        raise WorkloadError("cannot chunk an empty column")
    per_chunk = min(row_lanes, max(min_lanes, -(-n // banks)))
    chunks = []
    for index, start in enumerate(range(0, n, per_chunk)):
        chunks.append((index % banks, values[start : start + per_chunk]))
    return chunks
