"""Numpy reference semantics for the in-DRAM compute primitives.

The device model (:meth:`repro.dram.chip.Chip.combine_rows`,
:meth:`repro.dram.rank.Rank.shift_row`) operates on the real byte
arrays; this module states the same semantics independently in numpy.
Tests and the ``repro check pim`` stage hold the two byte-identical
across seeded random row contents — the reference is the spec, the
device code is the implementation.

Bit order: a row is one little-endian bit vector. Bit (lane) ``t``
lives in byte ``t // 8`` of the row's logical line order (column 0's
line first, chip 0's lanes first within a line), at bit position
``t % 8`` — numpy's ``bitorder="little"``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def combine_reference(rows: list[bytes], op: str) -> bytes:
    """Bitwise AND/OR over 2-3 equal-length rows, or MAJ over exactly 3."""
    if not 2 <= len(rows) <= 3:
        raise ConfigError(f"MRA reference needs 2-3 rows, got {len(rows)}")
    if len({len(r) for r in rows}) != 1:
        raise ConfigError("MRA reference rows must be equal length")
    arrs = [np.frombuffer(r, dtype=np.uint8) for r in rows]
    if op == "AND":
        out = arrs[0] & arrs[1]
        if len(arrs) == 3:
            out = out & arrs[2]
    elif op == "OR":
        out = arrs[0] | arrs[1]
        if len(arrs) == 3:
            out = out | arrs[2]
    elif op == "MAJ":
        if len(arrs) != 3:
            raise ConfigError("MAJ reference requires exactly 3 rows")
        a, b, c = arrs
        out = (a & b) | (a & c) | (b & c)
    else:
        raise ConfigError(f"unknown MRA reference op {op!r}")
    return out.tobytes()


def shift_reference(row: bytes, amount: int, direction: str = "left") -> bytes:
    """Shift a row as one little-endian bit vector, zero-filling."""
    if amount <= 0:
        raise ConfigError(f"shift reference needs a positive amount, got {amount}")
    bits = np.unpackbits(np.frombuffer(row, dtype=np.uint8), bitorder="little")
    out = np.zeros_like(bits)
    if amount < bits.size:
        if direction == "left":
            # Left = toward higher bit indices (multiply by 2**amount).
            out[amount:] = bits[: bits.size - amount]
        elif direction == "right":
            out[: bits.size - amount] = bits[amount:]
        else:
            raise ConfigError(f"unknown shift direction {direction!r}")
    elif direction not in ("left", "right"):
        raise ConfigError(f"unknown shift direction {direction!r}")
    return np.packbits(out, bitorder="little").tobytes()


def bit_slice_rows(values: np.ndarray, width: int, row_bytes: int) -> np.ndarray:
    """Pack ``values`` into bit-slice rows: slice ``w``'s lane ``t`` is
    bit ``w`` of ``values[t]``.

    Returns a ``(width, row_bytes)`` uint8 array; lanes beyond
    ``len(values)`` are zero (which dual-rail encoding reads as the
    value 0).
    """
    lanes = values.shape[0]
    if lanes > row_bytes * 8:
        raise ConfigError(
            f"{lanes} lanes exceed the {row_bytes * 8}-lane row")
    vals = values.astype(np.uint64, copy=False)
    rows = np.zeros((width, row_bytes), dtype=np.uint8)
    for w in range(width):
        bits = ((vals >> np.uint64(w)) & np.uint64(1)).astype(np.uint8)
        packed = np.packbits(bits, bitorder="little")
        rows[w, : packed.size] = packed
    return rows
