"""repro.serve — async simulation-as-a-service over the perf substrate.

A local HTTP/JSON service that accepts :class:`~repro.perf.specs.RunSpec`
jobs, schedules them with priority + per-client admission control,
coalesces identical specs onto one execution, shares the process-wide
result cache, journals jobs for crash recovery, and serves its own
:mod:`repro.obs` metrics. See docs/SERVING.md for the API and
``python -m repro serve --help`` for the knobs.
"""

from repro.serve.client import RateLimited, ServeClient, ServeError
from repro.serve.cluster import (
    ClusterCoordinator,
    ClusterError,
    ClusterReport,
    ClusterRunner,
    HashRing,
    LocalCluster,
    WorkerHandle,
    WorkerRegistry,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_result,
    encode_result,
    result_digest,
    spec_from_wire,
    spec_to_wire,
)
from repro.serve.queue import AdmissionDenied, Job, JobQueue, TokenBucket
from repro.serve.server import (
    DEFAULT_PORT,
    JobRunner,
    ServeConfig,
    SimulationServer,
    serve,
)
from repro.serve.store import JobStore
from repro.serve.testing import ServerThread

__all__ = [
    "AdmissionDenied",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterReport",
    "ClusterRunner",
    "DEFAULT_PORT",
    "HashRing",
    "Job",
    "LocalCluster",
    "WorkerHandle",
    "WorkerRegistry",
    "JobQueue",
    "JobRunner",
    "JobStore",
    "PROTOCOL_VERSION",
    "RateLimited",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "SimulationServer",
    "TokenBucket",
    "decode_result",
    "encode_result",
    "result_digest",
    "serve",
    "spec_from_wire",
    "spec_to_wire",
]
