"""CLI handlers for the service verbs: serve / submit / jobs.

``python -m repro`` owns argument *parsing* (so ``repro --help`` shows
everything in one place); this module owns the *behaviour*, mirroring
how :mod:`repro.obs.cli` and :mod:`repro.check.cli` are split.

Spec sources for ``repro submit``, in precedence order:

- ``--spec-json '<json>'`` — a full RunSpec wire object (repeatable);
- ``--spec-file path`` — a JSON file holding one spec or a list;
- ``--figure fig9 [--scale quick]`` — that figure's representative
  specs (:func:`repro.harness.specsets.figure_specs`);
- ``--patternscan variant:stride [--lines N]`` — one fig7-style point.

``--mode`` / ``--obs`` override the corresponding field on every
submitted spec, so ``repro submit --figure fig9 --obs metrics`` does
what it reads like.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time

from repro.errors import ConfigError, ReproError
from repro.perf.cache import code_version
from repro.perf.specs import RunSpec
from repro.serve.client import RateLimited, ServeClient, ServeError
from repro.serve.protocol import spec_from_wire
from repro.serve.server import ServeConfig, serve


def run_serve(args) -> int:
    """``repro serve``: run a server until SIGINT/SIGTERM/admin stop."""
    import asyncio
    import logging

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        max_inflight=args.max_inflight,
        rate=args.rate,
        burst=args.burst,
        state_dir=None if args.no_state else args.state_dir,
        drain_deadline=args.drain_deadline,
        request_log=not args.quiet,
    )
    runner = None
    cluster_size = getattr(args, "cluster", None)
    if cluster_size is not None and cluster_size > 1:
        # Sharded mode: the front server keeps the public API (and the
        # journal at --state-dir) but dispatches every job to one of N
        # in-process workers sharing the result cache. Each worker runs
        # its own process executor, so the fleet parallelises for real.
        import dataclasses as _dataclasses

        from repro.perf.cache import default_cache
        from repro.serve.cluster import ClusterRunner, LocalCluster

        shared_cache = default_cache()
        worker_config = _dataclasses.replace(
            config, port=0, executor=args.executor, workers=1,
            state_dir=None, rate=0.0, max_inflight=10_000,
            request_log=False,
        )
        cluster = LocalCluster(
            cluster_size, cache=shared_cache, config=worker_config
        ).start()
        runner = ClusterRunner(
            cluster.registry, cache=shared_cache, cluster=cluster
        )
        print(
            f"repro serve: cluster mode, {cluster_size} workers on ports "
            f"{[h.port for h in cluster.registry.all()]}"
        )
    try:
        return asyncio.run(serve(config, runner=runner))
    except KeyboardInterrupt:
        return 0


def _gather_specs(args) -> list[RunSpec]:
    specs: list[RunSpec] = []
    for raw in args.spec_json or ():
        specs.append(spec_from_wire(json.loads(raw)))
    if args.spec_file:
        payload = json.loads(open(args.spec_file, encoding="utf-8").read())
        items = payload if isinstance(payload, list) else [payload]
        specs.extend(spec_from_wire(item) for item in items)
    if args.figure:
        from repro.harness.common import current_scale
        from repro.harness.specsets import figure_specs

        import os

        os.environ["REPRO_SCALE"] = args.scale
        specs.extend(figure_specs(args.figure, current_scale()))
    if args.patternscan:
        variant, _, stride = args.patternscan.partition(":")
        if not stride:
            raise ConfigError(
                "--patternscan expects 'variant:stride', e.g. 'gathered:4'"
            )
        specs.append(
            RunSpec(
                kind="patternscan",
                params={
                    "variant": variant,
                    "stride": int(stride),
                    "lines": args.lines,
                },
            )
        )
    if not specs:
        raise ConfigError(
            "nothing to submit: pass --spec-json, --spec-file, "
            "--figure, or --patternscan"
        )
    if args.mode or args.obs:
        specs = [
            dataclasses.replace(
                spec,
                mode=args.mode or spec.mode,
                obs=args.obs or spec.obs,
            )
            for spec in specs
        ]
    return specs


def run_submit(args) -> int:
    """``repro submit``: send specs, optionally wait, print one JSON/line."""
    client = ServeClient(
        host=args.host, port=args.port, client_id=args.client,
        timeout=args.timeout,
    )
    specs = _gather_specs(args)
    handshake = client.handshake()
    if handshake["skew"] is not None:
        print(
            f"warning: version skew — server runs "
            f"{handshake['skew']['server'][:12]}, client runs "
            f"{handshake['skew']['client'][:12]}; cache keys will not be "
            "shared across the skew",
            file=sys.stderr,
        )
    failures = 0
    for spec in specs:
        try:
            response = _submit_with_backoff(client, spec, args)
        except ServeError as error:
            failures += 1
            print(json.dumps({"error": str(error), "code": error.code}))
            continue
        job = response["job"]
        line = {
            "job_id": job["job_id"],
            "state": job["state"],
            "coalesced": response.get("coalesced", False),
            "cached": job.get("cached", False),
            "digest": job.get("digest"),
            "error": job.get("error"),
        }
        if job["state"] == "failed":
            failures += 1
        print(json.dumps(line))
    return 1 if failures else 0


def _submit_with_backoff(client: ServeClient, spec: RunSpec, args) -> dict:
    """Submit one spec, honouring Retry-After up to ``--retries`` times."""
    attempts = max(0, args.retries)
    while True:
        try:
            return client.submit(
                spec,
                priority=args.priority,
                wait=not args.no_wait,
                timeout=args.timeout,
            )
        except RateLimited as limited:
            if attempts <= 0:
                raise
            attempts -= 1
            time.sleep(min(limited.retry_after or 1.0, 30.0))


def run_jobs(args) -> int:
    """``repro jobs``: list the server's jobs (table or ``--json``)."""
    client = ServeClient(host=args.host, port=args.port, timeout=args.timeout)
    try:
        jobs = client.jobs()
    except ServeError as error:
        print(f"repro jobs: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(jobs, indent=2))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    header = f"{'JOB':16} {'STATE':10} {'PRI':>3} {'CLIENT':12} SPEC"
    print(header)
    for job in jobs:
        spec = job["spec"]
        label = spec["kind"]
        if spec.get("layout"):
            label += f":{spec['layout']}"
        label += f":{spec.get('mode', 'event')}"
        print(
            f"{job['job_id']:16} {job['state']:10} {job['priority']:>3} "
            f"{job['client'][:12]:12} {label}"
        )
    return 0


def version_string() -> str:
    """``repro --version`` payload: package version + source-tree hash.

    The same ``code_version`` is echoed by the server's handshake
    (``/healthz``), so comparing ``repro --version`` output on two
    machines answers "are these the same simulator?" exactly the way
    the client's skew check does.
    """
    import repro

    return f"repro {repro.__version__} (code {code_version()[:16]})"
