"""Blocking HTTP client for the simulation service.

:class:`ServeClient` is the one wrapper the CLI verbs (``repro
submit`` / ``repro jobs``), the tests, and the service-level
differential check share. It speaks the :mod:`repro.serve.protocol`
schema over plain ``http.client`` (stdlib, synchronous — callers are
CLIs and test harnesses, not event loops).

The first request performs the version handshake: the server's
``code_version`` is remembered and compared against this process's
own; a mismatch means client and server are running different source
trees, so their cache keys — and therefore "same spec" — disagree.
:meth:`handshake` surfaces the skew; ``repro submit`` prints it as a
warning rather than failing, since skewed-but-compatible protocols
still interoperate.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from repro.errors import ReproError
from repro.perf.cache import code_version
from repro.perf.specs import RunSpec
from repro.serve import protocol


class ServeError(ReproError):
    """An error response from the service (or a transport failure)."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        code: str = "",
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message, status=status or None, code=code or None)
        self.status = status
        self.code = code
        self.retry_after = retry_after


class RateLimited(ServeError):
    """HTTP 429: back off ``retry_after`` seconds and resubmit."""


class ServeClient:
    """One server endpoint; stateless apart from the handshake result."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8747,
        client_id: str = "cli",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        #: Server's code version, learned from the first response.
        self.server_version: str | None = None
        self.server_protocol: int | None = None

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"X-Repro-Version": code_version()}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            self.server_version = response.getheader("X-Repro-Version",
                                                     self.server_version)
            header_protocol = response.getheader("X-Repro-Protocol")
            if header_protocol is not None:
                self.server_protocol = int(header_protocol)
            try:
                data = json.loads(raw) if raw else {}
            except ValueError:
                raise ServeError(
                    f"non-JSON response from {self.host}:{self.port}",
                    status=response.status,
                ) from None
            if response.status >= 400:
                error = data.get("error", {})
                retry_after = response.getheader("Retry-After")
                retry = float(retry_after) if retry_after else None
                cls = RateLimited if response.status == 429 else ServeError
                raise cls(
                    error.get("message", f"HTTP {response.status}"),
                    status=response.status,
                    code=error.get("code", ""),
                    retry_after=retry,
                )
            return data
        except (ConnectionError, OSError, http.client.HTTPException) as error:
            raise ServeError(
                f"cannot reach repro server at {self.host}:{self.port}: {error}"
            ) from None
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def handshake(self) -> dict:
        """Health + version-skew detection.

        Returns the health body with an extra ``"skew"`` key: None when
        client and server run the same source tree, otherwise a dict of
        both versions.
        """
        body = self.health()
        if body.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ServeError(
                f"protocol skew: server speaks v{body.get('protocol')}, "
                f"client speaks v{protocol.PROTOCOL_VERSION}",
                code=protocol.ERR_BAD_REQUEST,
            )
        local = code_version()
        remote = body.get("version")
        body["skew"] = (
            None if remote == local
            else {"server": remote, "client": local}
        )
        return body

    def submit(
        self,
        spec: RunSpec,
        priority: int = 0,
        wait: bool = False,
        timeout: float | None = None,
        shard: int | None = None,
    ) -> dict:
        """Submit one spec; returns the submit response body.

        With ``wait=True`` the server blocks the request until the job
        finishes (bounded by its ``max_wait``), and the response carries
        the encoded result. ``shard`` is the cluster coordinator's
        assignment annotation (standalone callers leave it unset).
        """
        body = protocol.submit_request(
            spec,
            client=self.client_id,
            priority=priority,
            wait=wait,
            timeout=timeout,
            shard=shard,
        )
        request_timeout = None
        if wait:
            request_timeout = (timeout or self.timeout) + 10.0
        return self._request("POST", "/v1/jobs", body, timeout=request_timeout)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def result(self, job_id: str, decode: bool = True) -> Any:
        """The finished job's record (decoded by default).

        Raises :class:`ServeError` when the job is not done yet; poll
        :meth:`status` or use :meth:`wait` first.
        """
        body = self._request("GET", f"/v1/jobs/{job_id}/result")
        if not body.get("ready"):
            job = body.get("job", {})
            raise ServeError(
                f"job {job_id} is not done (state={job.get('state')!r}, "
                f"error={job.get('error')!r})",
                code=protocol.ERR_BAD_REQUEST,
            )
        return protocol.decode_result(body["result"]) if decode else body["result"]

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its view."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in protocol.TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout:g}s waiting for job {job_id} "
                    f"(state={job['state']!r})"
                )
            time.sleep(poll)

    def shutdown(self, drain: bool = True) -> dict:
        return self._request(
            "POST", "/v1/admin/shutdown", {"drain": drain}
        )
