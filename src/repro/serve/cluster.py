"""Sharded multi-worker cluster on top of the simulation service.

One :class:`~repro.serve.server.SimulationServer` executes jobs well;
figure sweeps are hundreds of independent specs, so the natural next
step is several servers executing shards of one sweep. This module
adds the coordination layer without changing the workers at all — a
worker in a cluster is a stock server; everything cluster-specific
lives on the client side of its HTTP API:

- :class:`HashRing` / :class:`WorkerRegistry` — consistent hashing of
  cache keys onto live workers (virtual nodes keep the split even);
  a dead worker only reassigns its own keys.
- :class:`ClusterCoordinator` — drives a whole sweep: places each
  unique spec on its ring owner, polls for completion, **steals** work
  that sits queued on a slow worker, **speculates** a second attempt
  for a long-running job (first digest wins), honours ``Retry-After``
  backpressure from worker admission control, and survives worker
  death by resubmitting the dead worker's open jobs elsewhere.
- :class:`LocalCluster` — boots N in-process workers (daemon threads,
  ephemeral ports) that share one :class:`~repro.perf.cache.ResultCache`
  and keep per-worker journals, for tests, checks, and
  ``repro bench --cluster N``.
- :class:`ClusterRunner` — the server-side seam: a drop-in
  :class:`~repro.serve.server.JobRunner` replacement that dispatches
  jobs to cluster workers, so ``repro serve --cluster N`` exposes the
  ordinary single-server API backed by a worker fleet.

Correctness is anchored on the result digest: a spec executed by any
worker must produce byte-identical normalized pickles
(:func:`~repro.serve.protocol.result_digest`), so duplicated attempts
— whether speculative or from crash recovery — are *checked* against
each other (:func:`~repro.serve.protocol.reconcile_digests`) rather
than trusted. Two workers disagreeing on one spec fails the sweep
loudly; determinism is the paper-reproduction contract, and the
cluster inherits it for free only if it refuses to paper over
violations.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import logging
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ConfigError, ReproError
from repro.perf.cache import ResultCache
from repro.perf.specs import RunSpec, cache_key
from repro.serve import protocol
from repro.serve.client import RateLimited, ServeClient, ServeError
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread

logger = logging.getLogger("repro.serve.cluster")


class ClusterError(ReproError):
    """The cluster cannot make progress (no live workers, digest split)."""


# ----------------------------------------------------------------------
# Placement: consistent hashing over live workers
# ----------------------------------------------------------------------
class HashRing:
    """Consistent hash ring with virtual nodes.

    Each node is hashed onto the ring ``replicas`` times; a key is
    owned by the first node point at or after the key's own hash.
    Removing a node therefore only moves the keys it owned — the other
    workers' caches and journals keep their assignments, which is the
    whole reason to prefer a ring over ``stable_shard(key, n_alive)``
    when membership can change mid-sweep.
    """

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(label: str) -> int:
        raw = hashlib.sha256(label.encode("utf-8")).digest()
        return int.from_bytes(raw[:8], "big")

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            bisect.insort(self._points, (self._hash(f"{node}\0{replica}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def assign(self, key: str) -> str:
        """The node owning ``key``; raises when the ring is empty."""
        return self.preference(key)[0]

    def preference(self, key: str) -> list[str]:
        """All nodes in failover order for ``key`` (owner first).

        Walking clockwise from the key's hash and keeping first
        occurrences yields a deterministic, per-key-distinct ordering:
        the natural resubmission order when the owner dies.
        """
        if not self._points:
            raise ClusterError("hash ring is empty: no live workers")
        start = bisect.bisect_left(self._points, (self._hash(key), ""))
        ordered: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in ordered:
                ordered.append(node)
                if len(ordered) == len(self._nodes):
                    break
        return ordered


@dataclass
class WorkerHandle:
    """One worker endpoint as the coordinator sees it."""

    name: str
    host: str
    port: int
    #: Stable shard annotation carried on this worker's submissions.
    index: int = 0
    alive: bool = True

    def client(self, client_id: str = "cluster", timeout: float = 60.0) -> ServeClient:
        return ServeClient(
            host=self.host, port=self.port,
            client_id=client_id, timeout=timeout,
        )


class WorkerRegistry:
    """Live-membership view of the worker fleet, with ring placement."""

    def __init__(
        self, handles: Sequence[WorkerHandle] = (), replicas: int = 64
    ) -> None:
        self.replicas = replicas
        self._handles: dict[str, WorkerHandle] = {}
        self._ring: HashRing | None = None
        for handle in handles:
            self.add(handle)

    def add(self, handle: WorkerHandle) -> None:
        if handle.name in self._handles:
            raise ConfigError(f"duplicate worker name {handle.name!r}")
        handle.index = len(self._handles)
        self._handles[handle.name] = handle
        self._ring = None

    def get(self, name: str) -> WorkerHandle:
        return self._handles[name]

    def all(self) -> list[WorkerHandle]:
        return list(self._handles.values())

    def alive(self) -> list[WorkerHandle]:
        return [h for h in self._handles.values() if h.alive]

    def mark_dead(self, name: str) -> None:
        handle = self._handles[name]
        if handle.alive:
            handle.alive = False
            self._ring = None
            logger.info("worker %s marked dead", name)

    def mark_alive(self, name: str, host: str | None = None,
                   port: int | None = None) -> None:
        """Re-admit a restarted worker (possibly on a new port)."""
        handle = self._handles[name]
        if host is not None:
            handle.host = host
        if port is not None:
            handle.port = port
        if not handle.alive:
            handle.alive = True
            self._ring = None

    def ring(self) -> HashRing:
        if self._ring is None:
            self._ring = HashRing(
                [h.name for h in self.alive()], replicas=self.replicas
            )
        return self._ring

    def assign(self, key: str) -> WorkerHandle:
        return self._handles[self.ring().assign(key)]

    def preference(self, key: str) -> list[WorkerHandle]:
        """Live workers in failover order for ``key``."""
        return [self._handles[name] for name in self.ring().preference(key)]


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class Attempt:
    """One submission of one spec to one worker."""

    worker: str
    job_id: str
    born: float
    state: str = protocol.QUEUED
    running_since: float | None = None
    digest: str | None = None
    dead: bool = False

    @property
    def label(self) -> str:
        return f"{self.worker}/{self.job_id}"


class _Pending:
    """Coordinator-side state for one unique spec (cache key)."""

    __slots__ = (
        "key", "spec", "attempts", "record", "digest", "resolved",
        "speculated", "stolen", "replacements", "last_error",
    )

    def __init__(self, key: str, spec: RunSpec) -> None:
        self.key = key
        self.spec = spec
        self.attempts: list[Attempt] = []
        self.record: Any = None
        self.digest: str | None = None
        self.resolved = False
        self.speculated = False
        self.stolen = False
        self.replacements = 0
        self.last_error: str | None = None

    def live(self) -> list[Attempt]:
        return [a for a in self.attempts if not a.dead]

    def workers_tried(self) -> set[str]:
        return {a.worker for a in self.attempts}


@dataclass
class ClusterReport:
    """What a coordinated sweep produced, and how."""

    records: list[Any]
    digests: dict[str, str]
    stats: dict[str, int]
    per_worker: dict[str, int]
    duration_seconds: float
    unique_specs: int


class ClusterCoordinator:
    """Drives one sweep across the registry's workers (synchronous).

    The coordinator is a *client* of stock servers: placement,
    stealing, speculation, and failover are all expressed as ordinary
    submit/status/cancel calls, so the same coordinator would drive
    out-of-process workers unchanged.
    """

    def __init__(
        self,
        registry: WorkerRegistry,
        client_id: str = "cluster",
        steal_after: float = 5.0,
        speculate_after: float = 30.0,
        poll: float = 0.05,
        backoff_cap: float = 1.0,
        request_timeout: float = 60.0,
        after_submit: Callable[[str, str, str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.registry = registry
        self.client_id = client_id
        self.steal_after = steal_after
        self.speculate_after = speculate_after
        self.poll = poll
        self.backoff_cap = backoff_cap
        self.request_timeout = request_timeout
        #: Test hook: called as ``after_submit(worker, job_id, key)``
        #: right after every successful submission — deterministic
        #: kill-the-worker-mid-sweep scenarios hang off this.
        self.after_submit = after_submit
        self._clock = clock
        self._sleep = sleep
        self.stats = {
            "submitted": 0, "stolen": 0, "speculated": 0,
            "rate_limited": 0, "worker_deaths": 0,
            "attempt_failures": 0, "replacements": 0,
        }

    # -- submission helpers --------------------------------------------
    def _client(self, handle: WorkerHandle) -> ServeClient:
        return handle.client(self.client_id, timeout=self.request_timeout)

    def _mark_dead(self, handle: WorkerHandle) -> None:
        if handle.alive:
            self.registry.mark_dead(handle.name)
            self.stats["worker_deaths"] += 1

    def _submit(
        self, pending: _Pending, handle: WorkerHandle, priority: int
    ) -> bool:
        """Submit ``pending`` to ``handle``; True on success.

        Rate limiting is backpressure, not failure: back off for the
        server's advertised ``Retry-After`` (capped) and retry the same
        worker. Transport errors mark the worker dead and report
        failure so the caller falls over to the next preference.
        """
        client = self._client(handle)
        while True:
            try:
                body = client.submit(
                    pending.spec, priority=priority, shard=handle.index
                )
            except RateLimited as limited:
                self.stats["rate_limited"] += 1
                self._sleep(min(limited.retry_after or self.backoff_cap,
                                self.backoff_cap))
                continue
            except ServeError as error:
                pending.last_error = str(error)
                self._mark_dead(handle)
                return False
            job_id = body["job"]["job_id"]
            pending.attempts.append(
                Attempt(worker=handle.name, job_id=job_id, born=self._clock())
            )
            self.stats["submitted"] += 1
            if self.after_submit is not None:
                self.after_submit(handle.name, job_id, pending.key)
            return True

    def _place(
        self, pending: _Pending, priority: int, avoid: set[str] = frozenset()
    ) -> None:
        """Submit ``pending`` to the best live worker not in ``avoid``."""
        for handle in self.registry.preference(pending.key):
            if handle.name in avoid:
                continue
            if self._submit(pending, handle, priority):
                return
        # Every non-avoided worker refused; fall back to any live one.
        for handle in self.registry.preference(pending.key):
            if self._submit(pending, handle, priority):
                return
        raise ClusterError(
            f"no live worker accepted spec {pending.key[:32]}...: "
            f"{pending.last_error}"
        )

    # -- polling -------------------------------------------------------
    def _observe(self, pending: _Pending, attempt: Attempt) -> None:
        """Refresh one attempt's state from its worker."""
        handle = self.registry.get(attempt.worker)
        if not handle.alive:
            attempt.dead = True
            return
        try:
            view = self._client(handle).status(attempt.job_id)
        except ServeError as error:
            if error.status == 404:
                # The worker restarted without this job (journal loss
                # or compaction): the attempt is gone, not the worker.
                attempt.dead = True
                self.stats["attempt_failures"] += 1
            else:
                self._mark_dead(handle)
                attempt.dead = True
            pending.last_error = str(error)
            return
        attempt.state = view["state"]
        if view["state"] == protocol.RUNNING and attempt.running_since is None:
            attempt.running_since = self._clock()
        if view["state"] == protocol.DONE:
            attempt.digest = view.get("digest")
            if not pending.resolved:
                self._resolve(pending, attempt, handle)
        elif view["state"] in (protocol.FAILED, protocol.CANCELLED):
            attempt.dead = True
            if view["state"] == protocol.FAILED:
                self.stats["attempt_failures"] += 1
                pending.last_error = view.get("error") or "job failed"

    def _resolve(
        self, pending: _Pending, attempt: Attempt, handle: WorkerHandle
    ) -> None:
        """First finished attempt wins: fetch and keep its record."""
        try:
            encoded = self._client(handle).result(attempt.job_id, decode=False)
        except ServeError as error:
            # Worker died between status and result: the attempt is
            # lost after all; another attempt (or replacement) wins.
            self._mark_dead(handle)
            attempt.dead = True
            pending.last_error = str(error)
            return
        pending.record = protocol.decode_result(encoded)
        pending.digest = encoded["digest"]
        attempt.digest = encoded["digest"]
        pending.resolved = True

    def _cancel_quietly(self, attempt: Attempt) -> None:
        handle = self.registry.get(attempt.worker)
        if not handle.alive:
            return
        try:
            self._client(handle).cancel(attempt.job_id)
        except ServeError:
            pass

    # -- scheduling policies -------------------------------------------
    def _open_by_worker(self, pendings: dict[str, _Pending]) -> dict[str, int]:
        load: dict[str, int] = {h.name: 0 for h in self.registry.alive()}
        for pending in pendings.values():
            if pending.resolved:
                continue
            for attempt in pending.live():
                if attempt.worker in load:
                    load[attempt.worker] += 1
        return load

    def _maybe_steal(
        self, pending: _Pending, priority: int, load: dict[str, int]
    ) -> None:
        """Move a stale queued attempt to the least-loaded other worker."""
        live = pending.live()
        if len(live) != 1 or pending.stolen:
            return
        attempt = live[0]
        if attempt.state != protocol.QUEUED:
            return
        if self._clock() - attempt.born < self.steal_after:
            return
        candidates = [
            name for name in load
            if name != attempt.worker
            and load[name] < load.get(attempt.worker, 0)
        ]
        if not candidates:
            return
        thief = min(candidates, key=lambda name: load[name])
        self._cancel_quietly(attempt)
        attempt.dead = True
        if self._submit(pending, self.registry.get(thief), priority):
            pending.stolen = True
            self.stats["stolen"] += 1
        # On submit failure the replacement pass below re-places it.

    def _maybe_speculate(self, pending: _Pending, priority: int) -> None:
        """Duplicate a long-running attempt onto a second worker."""
        live = pending.live()
        if len(live) != 1 or pending.speculated:
            return
        attempt = live[0]
        if attempt.running_since is None:
            return
        if self._clock() - attempt.running_since < self.speculate_after:
            return
        for handle in self.registry.preference(pending.key):
            if handle.name == attempt.worker:
                continue
            if self._submit(pending, handle, priority):
                pending.speculated = True
                self.stats["speculated"] += 1
                return

    # -- the sweep -----------------------------------------------------
    def run_sweep(
        self, specs: Sequence[RunSpec], priority: int = 0
    ) -> ClusterReport:
        """Execute every spec somewhere; returns records in input order."""
        started = self._clock()
        pendings: dict[str, _Pending] = {}
        order: list[str] = []
        for spec in specs:
            key = cache_key(spec)
            order.append(key)
            if key not in pendings:
                pendings[key] = _Pending(key, spec)

        for pending in pendings.values():
            self._place(pending, priority)

        max_replacements = 2 * max(1, len(self.registry.all()))
        while True:
            unresolved = [p for p in pendings.values() if not p.resolved]
            if not unresolved:
                break
            load = self._open_by_worker(pendings)
            for pending in unresolved:
                for attempt in pending.live():
                    self._observe(pending, attempt)
                    if pending.resolved:
                        break
                if pending.resolved:
                    continue
                if not pending.live():
                    # Every attempt died (worker crash, failure):
                    # resubmit, preferring untried workers first.
                    pending.replacements += 1
                    self.stats["replacements"] += 1
                    if pending.replacements > max_replacements:
                        raise ClusterError(
                            f"spec {pending.key[:32]}... failed on every "
                            f"attempt: {pending.last_error}"
                        )
                    self._place(pending, priority,
                                avoid=pending.workers_tried())
                    continue
                self._maybe_steal(pending, priority, load)
                self._maybe_speculate(pending, priority)
            self._sleep(self.poll)

        self._reconcile(pendings)
        per_worker: dict[str, int] = {}
        for pending in pendings.values():
            for attempt in pending.attempts:
                if attempt.digest is not None:
                    per_worker[attempt.worker] = (
                        per_worker.get(attempt.worker, 0) + 1
                    )
        return ClusterReport(
            records=[pendings[key].record for key in order],
            digests={key: p.digest for key, p in pendings.items()
                     if p.digest is not None},
            stats=dict(self.stats),
            per_worker=per_worker,
            duration_seconds=self._clock() - started,
            unique_specs=len(pendings),
        )

    def _reconcile(self, pendings: dict[str, _Pending]) -> None:
        """Check every duplicated spec's attempts agree on the digest.

        Speculation and crash recovery can leave late attempts behind
        the winner: poll each once more, cancel the ones still queued,
        and require every digest that *did* materialise to match —
        first-digest-wins must never become first-digest-unchecked.
        """
        for pending in pendings.values():
            if len(pending.attempts) <= 1:
                continue
            for attempt in pending.attempts:
                if attempt.dead or attempt.digest is not None:
                    continue
                handle = self.registry.get(attempt.worker)
                if not handle.alive:
                    continue
                try:
                    view = self._client(handle).status(attempt.job_id)
                except ServeError:
                    continue
                if view["state"] == protocol.DONE:
                    attempt.digest = view.get("digest")
                elif view["state"] == protocol.QUEUED:
                    self._cancel_quietly(attempt)
            digests = {
                attempt.label: attempt.digest
                for attempt in pending.attempts
                if attempt.digest is not None
            }
            if digests:
                agreed = protocol.reconcile_digests(digests)
                assert agreed == pending.digest


# ----------------------------------------------------------------------
# Local fleet
# ----------------------------------------------------------------------
class LocalCluster:
    """N in-process workers sharing one result cache.

    ``with LocalCluster(3, state_root=..., cache=...) as cluster:``
    boots three stock servers on ephemeral ports (thread executor, one
    job slot each unless configured otherwise), each journalling to
    ``state_root/worker-<i>``. :meth:`kill_worker` aborts one without
    draining — the journal keeps its open jobs, so :meth:`restart_worker`
    demonstrates recovery end to end.
    """

    def __init__(
        self,
        size: int,
        state_root: str | pathlib.Path | None = None,
        cache: ResultCache | None = None,
        config: ServeConfig | None = None,
        replicas: int = 64,
    ) -> None:
        if size < 1:
            raise ConfigError(f"cluster size must be >= 1, got {size}")
        self.size = size
        self.state_root = (
            pathlib.Path(state_root) if state_root is not None else None
        )
        self.cache = cache
        self.base_config = config or ServeConfig(
            port=0, executor="thread", workers=1,
            state_dir=None, request_log=False,
        )
        self.replicas = replicas
        self.registry = WorkerRegistry(replicas=replicas)
        self._threads: list[ServerThread | None] = [None] * size
        self._started = False

    def _worker_config(self, index: int) -> ServeConfig:
        state_dir = (
            str(self.state_root / f"worker-{index}")
            if self.state_root is not None else None
        )
        return dataclasses.replace(
            self.base_config, port=0, state_dir=state_dir
        )

    def _boot(self, index: int) -> ServerThread:
        thread = ServerThread(
            self._worker_config(index), cache=self.cache
        ).start()
        self._threads[index] = thread
        return thread

    def start(self) -> "LocalCluster":
        if self._started:
            return self
        for index in range(self.size):
            thread = self._boot(index)
            assert thread.port is not None
            self.registry.add(WorkerHandle(
                name=f"worker-{index}",
                host=thread.config.host,
                port=thread.port,
            ))
        self._started = True
        return self

    def stop(self) -> None:
        for index, thread in enumerate(self._threads):
            if thread is not None:
                try:
                    thread.stop(drain=False)
                except ReproError:
                    pass
                self._threads[index] = None
        self._started = False

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> None:
        """Simulated crash: abort without draining, journal left open."""
        thread = self._threads[index]
        if thread is not None:
            thread.kill()
            self._threads[index] = None
        self.registry.mark_dead(f"worker-{index}")

    def restart_worker(self, index: int) -> WorkerHandle:
        """Boot a fresh server over the dead worker's journal."""
        thread = self._boot(index)
        assert thread.port is not None
        name = f"worker-{index}"
        self.registry.mark_alive(
            name, host=thread.config.host, port=thread.port
        )
        return self.registry.get(name)

    def coordinator(self, **kwargs: Any) -> ClusterCoordinator:
        return ClusterCoordinator(self.registry, **kwargs)

    def client(self, index: int, client_id: str = "test") -> ServeClient:
        thread = self._threads[index]
        assert thread is not None, f"worker-{index} is not running"
        return thread.client(client_id)


# ----------------------------------------------------------------------
# Server-side seam: a JobRunner that dispatches to the fleet
# ----------------------------------------------------------------------
class ClusterRunner:
    """JobRunner-compatible dispatcher for ``repro serve --cluster N``.

    The front server keeps its whole public surface (admission,
    coalescing, journal, metrics) but executes nothing itself: each
    job is forwarded to its ring-assigned worker with ``wait=true``
    and failover along the preference order. The shared result cache
    is consulted first, so a sweep the fleet already computed never
    crosses the network at all.
    """

    def __init__(
        self,
        registry: WorkerRegistry,
        cache: ResultCache | None = None,
        client_id: str = "cluster-front",
        timeout: float = 240.0,
        cluster: LocalCluster | None = None,
    ) -> None:
        self.registry = registry
        self.cache = cache
        self.client_id = client_id
        self.timeout = timeout
        #: When the front server owns the fleet (CLI mode), closing the
        #: runner tears the workers down too.
        self.cluster = cluster
        self.mode = "cluster"

    async def run(self, spec: RunSpec) -> tuple[Any, bool]:
        key = cache_key(spec)
        if self.cache is not None:
            hit = await asyncio.get_running_loop().run_in_executor(
                None, self.cache.get, key
            )
            if hit is not None:
                return hit, True
        record = await asyncio.get_running_loop().run_in_executor(
            None, self._dispatch, spec, key
        )
        return record, False

    def _dispatch(self, spec: RunSpec, key: str) -> Any:
        last_error: str | None = None
        for handle in self.registry.preference(key):
            client = handle.client(self.client_id, timeout=self.timeout)
            try:
                body = client.submit(
                    spec, wait=True, timeout=self.timeout, shard=handle.index
                )
                job = body["job"]
                if job["state"] != protocol.DONE:
                    # wait=true timed out server-side; poll it home.
                    job = client.wait(job["job_id"], timeout=self.timeout)
                    if job["state"] != protocol.DONE:
                        raise ReproError(
                            f"cluster job {job['job_id']} on {handle.name} "
                            f"ended {job['state']}: {job.get('error')}"
                        )
                    return client.result(job["job_id"])
                if "result" in body:
                    return protocol.decode_result(body["result"])
                return client.result(job["job_id"])
            except RateLimited as limited:
                time.sleep(min(limited.retry_after or 0.5, 1.0))
                last_error = str(limited)
                continue
            except ServeError as error:
                last_error = str(error)
                self.registry.mark_dead(handle.name)
                continue
        raise ClusterError(
            f"no live worker could execute spec {key[:32]}...: {last_error}"
        )

    def close(self) -> None:
        if self.cluster is not None:
            self.cluster.stop()
