"""Versioned JSON wire schema for the simulation service.

Everything that crosses the service's HTTP boundary is defined here so
the server (:mod:`repro.serve.server`), the client
(:mod:`repro.serve.client`), and the job store
(:mod:`repro.serve.store`) agree on one vocabulary:

- :data:`PROTOCOL_VERSION` — bumped on any incompatible schema change;
  both sides echo it in the handshake and refuse a mismatch.
- :func:`spec_to_wire` / :func:`spec_from_wire` — a
  :class:`~repro.perf.specs.RunSpec` as a plain JSON object. The wire
  form round-trips through :func:`~repro.perf.specs.cache_key`
  unchanged (tuples become lists, which canonicalise identically), so
  the server's coalescing and result cache see exactly the key a
  direct in-process run would use.
- :func:`result_digest` / :func:`encode_result` /
  :func:`decode_result` — run records are arbitrary picklable objects
  (RunResult, ObsRun, PatternScanRun ...), so they travel as a base64
  pickle plus a sha256 digest of that pickle. The digest is the
  service-level differential contract: a record fetched over HTTP must
  digest identically to the same spec executed in-process
  (:mod:`repro.check.service` enforces this).

Error responses are ``{"error": {"code": ..., "message": ...}}`` with
the matching HTTP status; rate-limited submissions additionally carry
a ``Retry-After`` header (seconds, fractional).
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import pickle
from typing import Any

from repro.errors import ConfigError
from repro.perf.specs import RunSpec

#: Bump on any incompatible change to the request/response schema.
PROTOCOL_VERSION = 1

#: Pinned pickle protocol for wire payloads and digests, so the digest
#: of a record does not depend on which interpreter pickled it.
WIRE_PICKLE_PROTOCOL = 4

#: Job lifecycle states (also the journal vocabulary of serve.store).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Error codes carried in ``{"error": {"code": ...}}`` bodies.
ERR_BAD_REQUEST = "bad-request"
ERR_NOT_FOUND = "not-found"
ERR_RATE_LIMITED = "rate-limited"
ERR_TOO_MANY_INFLIGHT = "too-many-inflight"
ERR_DRAINING = "draining"
ERR_INTERNAL = "internal"


class ProtocolError(ConfigError):
    """A request or response does not match the wire schema."""


# ----------------------------------------------------------------------
# RunSpec <-> wire
# ----------------------------------------------------------------------
def spec_to_wire(spec: RunSpec) -> dict:
    """``spec`` as a JSON-able dict (tuples degrade to lists, which is
    cache-key neutral)."""
    return dataclasses.asdict(spec)


def spec_from_wire(payload: Any) -> RunSpec:
    """Rebuild a :class:`RunSpec` from its wire form, validating shape.

    Unknown fields are rejected rather than dropped: a client speaking
    a newer schema should fail loudly, not have its request silently
    reinterpreted.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"spec must be a JSON object, got {type(payload).__name__}"
        )
    known = {field.name for field in dataclasses.fields(RunSpec)}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            f"unknown spec field(s) {sorted(unknown)}; expected {sorted(known)}"
        )
    if "kind" not in payload:
        raise ProtocolError("spec is missing required field 'kind'")
    try:
        return RunSpec(**payload)
    except ConfigError:
        raise
    except TypeError as error:
        raise ProtocolError(f"malformed spec: {error}") from None


# ----------------------------------------------------------------------
# Run records <-> wire
# ----------------------------------------------------------------------
def _scrub_wall_times(record: Any, _depth: int = 0) -> None:
    """Empty every ``stages`` wall-time dict reachable from ``record``.

    ``RunResult.stages`` carries host wall-clock attribution, which is
    the one nondeterministic field a deterministic spec produces — two
    independent executions would digest differently. The scrub runs on
    the *loaded copy* inside :func:`_normalized_pickle` (never on the
    caller's record, which keeps its timings), so digests cover exactly
    the functional object graph.
    """
    if _depth > 8:
        return
    stages = getattr(record, "stages", None)
    if isinstance(stages, dict):
        stages.clear()
    if dataclasses.is_dataclass(record) and not isinstance(record, type):
        for spec_field in dataclasses.fields(record):
            _scrub_wall_times(getattr(record, spec_field.name), _depth + 1)
    elif isinstance(record, dict):
        for value in record.values():
            _scrub_wall_times(value, _depth + 1)
    elif isinstance(record, (list, tuple)):
        for value in record:
            _scrub_wall_times(value, _depth + 1)


def _normalized_pickle(record: Any) -> bytes:
    """A canonical pickle of ``record``: dump, load, scrub, dump again.

    A raw ``pickle.dumps`` is *not* canonical across equal object
    graphs: CPython interns identifier-like strings at construction
    time, so a freshly-computed record shares ``'row_hits'``-style key
    objects (pickled as memo back-references) while the same record
    after a ``loads`` holds distinct equal strings (pickled inline).
    One round trip collapses every graph to the sharing structure the
    unpickler itself produces, which is a fixed point: further round
    trips are byte-identical, and two independent executions of a
    deterministic spec normalise to the same bytes. The loaded copy
    additionally has wall-time ``stages`` dicts emptied
    (:func:`_scrub_wall_times`) so host timing never enters a digest.
    """
    raw = pickle.dumps(record, protocol=WIRE_PICKLE_PROTOCOL)
    loaded = pickle.loads(raw)
    _scrub_wall_times(loaded)
    return pickle.dumps(loaded, protocol=WIRE_PICKLE_PROTOCOL)


def result_digest(record: Any) -> str:
    """sha256 over the normalized pickle of ``record``.

    This is the bit-exactness contract of the service: equal digests
    mean the wire result and the in-process result are the same object
    graph, byte for byte — whether the record was just computed,
    cache-loaded, or decoded off the wire.
    """
    return hashlib.sha256(_normalized_pickle(record)).hexdigest()


# Canonical shard placement lives with the sweep partitioner in
# repro.perf.partition; re-exported here because it is part of the
# wire contract ("shard" fields are produced by this function).
from repro.perf.partition import stable_shard  # noqa: E402


def reconcile_digests(digests: dict[str, str | None]) -> str:
    """The agreed digest from several attempts at one spec, or raise.

    ``digests`` maps attempt labels (worker names) to the result digest
    each reported. Speculative re-execution resolves first-digest-wins,
    but every attempt that *does* finish must agree — the simulator is
    deterministic, so two workers disagreeing on one spec means one of
    them is broken, which must fail loudly rather than silently pick a
    winner.
    """
    seen = {d for d in digests.values() if d is not None}
    if not seen:
        raise ProtocolError("no attempt produced a digest to reconcile")
    if len(seen) > 1:
        detail = ", ".join(
            f"{label}={str(digest)[:16]}"
            for label, digest in sorted(digests.items())
        )
        raise ProtocolError(f"attempt digests disagree: {detail}")
    return seen.pop()


def encode_result(record: Any) -> dict:
    """A run record as ``{"digest": ..., "pickle": <base64>}``.

    The payload is the normalized pickle, so the transport digest and
    :func:`result_digest` of the decoded record are the same value.
    """
    payload = _normalized_pickle(record)
    return {
        "digest": hashlib.sha256(payload).hexdigest(),
        "pickle": base64.b64encode(payload).decode("ascii"),
    }


def decode_result(wire: dict) -> Any:
    """Inverse of :func:`encode_result`; verifies the digest first."""
    try:
        payload = base64.b64decode(wire["pickle"].encode("ascii"))
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed result payload: {error}") from None
    digest = hashlib.sha256(payload).hexdigest()
    if digest != wire.get("digest"):
        raise ProtocolError(
            "result payload digest mismatch (corrupt or tampered transfer)"
        )
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# Request / response helpers
# ----------------------------------------------------------------------
def submit_request(
    spec: RunSpec,
    client: str = "anonymous",
    priority: int = 0,
    wait: bool = False,
    timeout: float | None = None,
    shard: int | None = None,
) -> dict:
    """Body of ``POST /v1/jobs``.

    ``shard`` is the coordinator's shard annotation (see
    :func:`stable_shard`); the server stores and echoes it so cluster
    digest reconciliation can tie a worker's job back to its
    assignment. Standalone clients leave it unset.
    """
    body: dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "spec": spec_to_wire(spec),
        "client": client,
        "priority": priority,
    }
    if wait:
        body["wait"] = True
    if timeout is not None:
        body["timeout"] = timeout
    if shard is not None:
        body["shard"] = shard
    return body


def parse_submit_request(body: Any) -> dict:
    """Validate a submit body; returns the normalised fields.

    Returns ``{"spec", "client", "priority", "wait", "timeout",
    "shard"}``.
    """
    if not isinstance(body, dict):
        raise ProtocolError("submit body must be a JSON object")
    protocol = body.get("protocol", PROTOCOL_VERSION)
    if protocol != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol skew: client speaks v{protocol}, "
            f"server speaks v{PROTOCOL_VERSION}"
        )
    if "spec" not in body:
        raise ProtocolError("submit body is missing 'spec'")
    spec = spec_from_wire(body["spec"])
    client = body.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError("'client' must be a non-empty string")
    priority = body.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("'priority' must be an integer")
    wait = bool(body.get("wait", False))
    timeout = body.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ProtocolError("'timeout' must be a number of seconds")
    shard = body.get("shard")
    if shard is not None and (
        not isinstance(shard, int) or isinstance(shard, bool) or shard < 0
    ):
        raise ProtocolError("'shard' must be a non-negative integer")
    return {
        "spec": spec,
        "client": client,
        "priority": priority,
        "wait": wait,
        "timeout": timeout,
        "shard": shard,
    }


def error_body(code: str, message: str, **extra: Any) -> dict:
    return {"error": {"code": code, "message": message, **extra}}
