"""Priority job queue with admission control and request coalescing.

The queue is the server's single source of truth about jobs. It is
deliberately synchronous and loop-agnostic — the asyncio server calls
it only from the event-loop thread, and the unit tests drive it
directly with a fake clock — with one asyncio touchpoint: every
:class:`Job` carries a ``done`` event so waiters (the ``wait=true``
submit path, the graceful-shutdown drain) can block without polling.

Three policies live here:

- **Priority**: ``pop`` returns the highest-priority queued job,
  FIFO within a priority level (a heap over ``(-priority, seq)``).
- **Admission control**: a per-client token bucket (sustained rate +
  burst) applied to *every* submission, and a per-client in-flight cap
  applied to submissions that would create a new job. Both deny with a
  ``retry_after`` hint the server turns into a ``Retry-After`` header.
- **Coalescing**: jobs are keyed by the result-cache key of their spec
  (:func:`repro.perf.specs.cache_key`), so two clients submitting the
  same run — the common shape of the paper's (pattern, stride,
  mechanism) grids, where many sweeps share points — attach to one
  underlying execution instead of racing to run it twice. The second
  submission gets the first job back, marked ``coalesced``.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ReproError
from repro.perf.specs import RunSpec, cache_key
from repro.serve import protocol
from repro.serve.protocol import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)
from repro.utils.statistics import Histogram, StatGroup


class AdmissionDenied(ReproError):
    """A submission was rejected by admission control.

    ``code`` is a protocol error code; ``retry_after`` is the seconds
    the client should back off (the server sends it as ``Retry-After``).
    """

    def __init__(self, message: str, code: str, retry_after: float) -> None:
        super().__init__(message, code=code)
        self.code = code
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate <= 0`` disables the bucket (every take granted). ``try_take``
    returns 0.0 on success, otherwise the seconds until a token will be
    available (never consumes on failure).
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._clock = clock
        self._tokens = float(self.burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_take(self) -> float:
        if self.rate <= 0:
            return 0.0
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class Job:
    """One unit of service work: a spec, its lifecycle, its waiters."""

    job_id: str
    spec: RunSpec
    key: str
    client: str
    priority: int = 0
    state: str = QUEUED
    #: Monotonic submit time (this process's queue clock; age math).
    submitted_at: float = 0.0
    #: Wall-clock submit time — the only submit time that survives a
    #: restart, so it is what the journal persists and recovery orders by.
    submitted_wall: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: Served straight from the result cache (no execution happened).
    cached: bool = False
    #: Re-enqueued from the journal by a restarted server.
    recovered: bool = False
    #: How many later submissions coalesced onto this job.
    attached: int = 0
    #: Cluster shard annotation (coordinator-assigned; None standalone).
    shard: int | None = None
    record: Any = None
    digest: str | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_wire(self, clock_now: float | None = None) -> dict:
        """JSON-able status view (the result payload travels separately)."""
        wire = {
            "job_id": self.job_id,
            "state": self.state,
            "spec": protocol.spec_to_wire(self.spec),
            "client": self.client,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "submitted_wall": self.submitted_wall,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cached": self.cached,
            "recovered": self.recovered,
            "attached": self.attached,
            "shard": self.shard,
            "digest": self.digest,
        }
        if clock_now is not None and not self.terminal:
            wire["age_seconds"] = max(0.0, clock_now - self.submitted_at)
        return wire


class JobQueue:
    """Priority queue + admission + coalescing (see module docstring)."""

    def __init__(
        self,
        max_inflight: int = 8,
        rate: float = 0.0,
        burst: int = 1,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self.max_inflight = max(1, int(max_inflight))
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._wall = wall_clock
        self._jobs: dict[str, Job] = {}
        #: cache key -> non-terminal job (the coalescing index).
        self._active_by_key: dict[str, Job] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}
        self.stats = StatGroup("serve.queue")
        #: queue-wait (submit -> start) in integer milliseconds.
        self.wait_ms = Histogram(bucket_width=10)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self, client: str, creates_job: bool) -> None:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
        retry_after = bucket.try_take()
        if retry_after > 0.0:
            self.stats.add("rejected_rate_limit")
            raise AdmissionDenied(
                f"client {client!r} exceeded {self.rate:g} submissions/s",
                code=protocol.ERR_RATE_LIMITED,
                retry_after=retry_after,
            )
        if creates_job and self._inflight.get(client, 0) >= self.max_inflight:
            self.stats.add("rejected_inflight")
            raise AdmissionDenied(
                f"client {client!r} already has {self.max_inflight} "
                "jobs in flight",
                code=protocol.ERR_TOO_MANY_INFLIGHT,
                retry_after=1.0,
            )

    # ------------------------------------------------------------------
    # Submission / scheduling
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: RunSpec,
        client: str = "anonymous",
        priority: int = 0,
        job_id: str | None = None,
        recovered: bool = False,
        submitted_wall: float | None = None,
        shard: int | None = None,
    ) -> tuple[Job, bool]:
        """Admit one submission; returns ``(job, coalesced)``.

        Identical specs (same cache key) share one job: the second
        submission is charged against the client's rate limit but not
        its in-flight cap, and returns the existing job.

        Recovered submissions (``recovered=True``, from the journal)
        bypass admission — they were admitted by a previous life of the
        server — and never touch the in-flight accounting: charging
        them against their original clients would eat admission slots
        for work those clients were already granted before the restart.
        They are idempotent: re-recovering a job id that is already
        present returns the existing job. ``submitted_wall`` (the
        journalled wall-clock submit time) rebases the recovered job's
        monotonic ``submitted_at`` so its age spans the restart.
        """
        if recovered and job_id is not None and job_id in self._jobs:
            return self._jobs[job_id], True
        key = cache_key(spec)
        existing = self._active_by_key.get(key)
        if existing is not None:
            if not recovered:
                self._admit(client, creates_job=False)
            existing.attached += 1
            self.stats.add("coalesced")
            return existing, True
        if not recovered:
            self._admit(client, creates_job=True)
        now, wall_now = self._clock(), self._wall()
        if recovered and submitted_wall is not None:
            age = max(0.0, wall_now - submitted_wall)
            submitted_at, wall = now - age, submitted_wall
        else:
            submitted_at, wall = now, wall_now
        job = Job(
            job_id=job_id or f"j-{uuid.uuid4().hex[:12]}",
            spec=spec,
            key=key,
            client=client,
            priority=priority,
            submitted_at=submitted_at,
            submitted_wall=wall,
            recovered=recovered,
            shard=shard,
        )
        self._jobs[job.job_id] = job
        self._active_by_key[key] = job
        if not recovered:
            self._inflight[client] = self._inflight.get(client, 0) + 1
        heapq.heappush(self._heap, (-priority, next(self._seq), job.job_id))
        self.stats.add("submitted")
        if recovered:
            self.stats.add("recovered")
        return job, False

    def pop(self) -> Job | None:
        """The next queued job by (priority, FIFO), or None.

        Jobs cancelled while queued are skipped (they stay in the map
        for status queries, but never run).
        """
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state == QUEUED:
                return job
        return None

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def mark_running(self, job: Job) -> None:
        self._expect(job, QUEUED, "start")
        job.state = RUNNING
        job.started_at = self._clock()
        self.wait_ms.observe(
            int((job.started_at - job.submitted_at) * 1000)
        )
        self.stats.add("started")

    def finish(self, job: Job, record: Any, cached: bool = False) -> None:
        self._expect(job, (QUEUED, RUNNING), "finish")
        job.record = record
        job.digest = protocol.result_digest(record)
        job.cached = cached
        self._terminate(job, DONE)
        self.stats.add("completed")
        if cached:
            self.stats.add("cache_hits")
        else:
            self.stats.add("executed")

    def fail(self, job: Job, error: str) -> None:
        self._expect(job, (QUEUED, RUNNING), "fail")
        job.error = error
        self._terminate(job, FAILED)
        self.stats.add("failed")

    def cancel(self, job: Job) -> bool:
        """Cancel a queued job; running/terminal jobs are left alone.

        Returns True when the job transitioned to ``cancelled``.
        (Running jobs execute on pool workers that cannot be safely
        interrupted mid-simulation; cancellation is therefore
        queue-only, which the protocol documents as best-effort.)
        """
        if job.state != QUEUED:
            return False
        self._terminate(job, CANCELLED)
        self.stats.add("cancelled")
        return True

    def _expect(self, job: Job, states, action: str) -> None:
        allowed = (states,) if isinstance(states, str) else states
        if job.state not in allowed:
            raise ReproError(
                f"cannot {action} job in state {job.state!r}",
                job_id=job.job_id,
            )

    def _terminate(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = self._clock()
        if self._active_by_key.get(job.key) is job:
            del self._active_by_key[job.key]
        # Recovered jobs never charged a slot (see submit), so releasing
        # one here would free a slot a live same-named client is using.
        if not job.recovered:
            remaining = self._inflight.get(job.client, 0) - 1
            if remaining > 0:
                self._inflight[job.client] = remaining
            else:
                self._inflight.pop(job.client, None)
        job.done.set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> Iterator[Job]:
        """Every known job, in submission order."""
        return iter(sorted(self._jobs.values(), key=lambda j: j.submitted_at))

    def counts(self) -> dict[str, int]:
        counts = dict.fromkeys(protocol.STATES, 0)
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def open_jobs(self) -> list[Job]:
        """Jobs that are queued or running (the drain set)."""
        return [job for job in self._jobs.values() if not job.terminal]

    def __len__(self) -> int:
        return len(self._jobs)
