"""Asyncio simulation server: HTTP/JSON in, pooled simulations out.

The server is a thin asyncio shell around three existing layers:

- **Execution** reuses :mod:`repro.perf`: every job is one
  :class:`~repro.perf.specs.RunSpec`, results are read from / written
  to the same :class:`~repro.perf.cache.ResultCache` the CLI tools
  share, and the actual simulation runs on pool workers
  (:class:`JobRunner` keeps one long-lived ``ProcessPoolExecutor``
  instead of ``run_specs``'s per-call pool, with the same
  degrade-to-serial fallback policy when the pool breaks).
- **Scheduling** is :class:`~repro.serve.queue.JobQueue`: priority +
  FIFO, per-client admission control, and coalescing of identical
  specs onto one execution.
- **Observability** is :mod:`repro.obs`: the server owns a
  :class:`~repro.obs.registry.MetricsRegistry` holding the queue's and
  the HTTP front-end's counters, served verbatim by ``/metrics``.

HTTP is deliberately minimal — HTTP/1.1, one request per connection,
JSON bodies — parsed directly off asyncio streams (no ``http.server``,
no threads in the request path). Endpoints:

====================================  =========================================
``GET  /healthz``                     liveness + version handshake
``GET  /metrics``                     metrics-registry snapshot (JSON)
``POST /v1/jobs``                     submit a spec (optionally wait)
``GET  /v1/jobs``                     list jobs
``GET  /v1/jobs/<id>``                one job's status
``GET  /v1/jobs/<id>/result``         status + pickled result when done
``POST /v1/jobs/<id>/cancel``         cancel (queued jobs only; best-effort)
``POST /v1/admin/shutdown``           graceful shutdown (drain, then stop)
====================================  =========================================

Graceful shutdown drains: new submissions get 503 immediately, open
jobs get ``drain_deadline`` seconds to finish, then still-queued jobs
are cancelled and the sockets close. See docs/SERVING.md.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

import repro
from repro.errors import ConfigError, ReproError
from repro.obs.registry import MetricsRegistry
from repro.perf.cache import ResultCache, code_version, default_cache
from repro.perf.specs import RunSpec, cache_key, execute_spec
from repro.serve import protocol
from repro.serve.protocol import PROTOCOL_VERSION, error_body
from repro.serve.queue import AdmissionDenied, Job, JobQueue
from repro.serve.store import JobStore
from repro.utils.statistics import Histogram, StatGroup

logger = logging.getLogger("repro.serve")

#: Default TCP port (unassigned range; "GS" on a phone keypad is 47).
DEFAULT_PORT = 8747

#: Sentinel distinguishing "no cache argument" from "explicitly None".
_DEFAULT = object()

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass
class ServeConfig:
    """Knobs for one server instance (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Concurrent job slots (and pool workers behind them).
    workers: int = 2
    #: "process" (real parallelism, the default) or "thread" (in-process;
    #: tests and debugging).
    executor: str = "process"
    #: Per-client admission control: max open jobs, sustained
    #: submissions/second (0 disables), and burst allowance.
    max_inflight: int = 8
    rate: float = 0.0
    burst: int = 4
    #: Journal directory; None disables persistence/recovery.
    state_dir: str | None = ".repro-serve"
    #: Seconds open jobs get to finish during graceful shutdown.
    drain_deadline: float = 30.0
    #: Server-side cap on one submit's wait=true block.
    max_wait: float = 300.0
    request_log: bool = True


class JobRunner:
    """Executes specs for the server on the shared perf substrate.

    One long-lived executor instead of :func:`repro.perf.pool.run_specs`'s
    per-call pool (a service amortises worker startup across jobs), but
    the same policy: cached results never reach a worker, workload
    errors (:class:`ReproError`) propagate, infrastructure failures
    degrade to serial in-process execution.
    """

    def __init__(
        self,
        workers: int = 2,
        executor: str = "process",
        cache: ResultCache | None | object = _DEFAULT,
    ) -> None:
        if executor not in ("process", "thread"):
            raise ConfigError(
                f"unknown executor {executor!r}; expected 'process' or 'thread'"
            )
        self.workers = max(1, int(workers))
        self.mode = executor
        self.cache = default_cache() if cache is _DEFAULT else cache
        # +1 slot so cache I/O never deadlocks behind busy thread-mode jobs.
        self._threads = ThreadPoolExecutor(
            max_workers=self.workers + 1, thread_name_prefix="repro-serve"
        )
        self._processes: ProcessPoolExecutor | None = None

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._processes is None:
            self._processes = ProcessPoolExecutor(max_workers=self.workers)
        return self._processes

    async def run(self, spec: RunSpec) -> tuple[Any, bool]:
        """Execute (or fetch) one spec; returns ``(record, cached)``."""
        loop = asyncio.get_running_loop()
        key = cache_key(spec) if self.cache is not None else None
        if self.cache is not None:
            hit = await loop.run_in_executor(self._threads, self.cache.get, key)
            if hit is not None:
                return hit, True
        record = await self._execute(loop, spec)
        if self.cache is not None:
            await loop.run_in_executor(
                self._threads, self.cache.put, key, record
            )
        return record, False

    async def _execute(self, loop: asyncio.AbstractEventLoop, spec: RunSpec):
        if self.mode == "process":
            try:
                return await loop.run_in_executor(
                    self._process_pool(), execute_spec, spec
                )
            except ReproError:
                raise  # deterministic workload failure: not the pool's fault
            except asyncio.CancelledError:
                raise
            except Exception:
                # Broken pool, pickling trouble, killed worker: drop the
                # pool and degrade this job to serial in-process.
                if isinstance(self._processes, ProcessPoolExecutor):
                    self._processes.shutdown(wait=False, cancel_futures=True)
                self._processes = None
        return await loop.run_in_executor(self._threads, execute_spec, spec)

    def close(self) -> None:
        self._threads.shutdown(wait=False, cancel_futures=True)
        if self._processes is not None:
            self._processes.shutdown(wait=False, cancel_futures=True)
            self._processes = None


class SimulationServer:
    """The asyncio service; create, ``await start()``, ``await shutdown()``."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        cache: ResultCache | None | object = _DEFAULT,
        runner: Any = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.queue = JobQueue(
            max_inflight=self.config.max_inflight,
            rate=self.config.rate,
            burst=self.config.burst,
        )
        # An injected runner must match JobRunner's surface (async
        # run(spec) -> (record, cached), mode, close()); the cluster
        # front uses this seam to dispatch jobs to workers instead of
        # executing them locally (repro.serve.cluster.ClusterRunner).
        self.runner = runner if runner is not None else JobRunner(
            workers=self.config.workers,
            executor=self.config.executor,
            cache=cache,
        )
        self.store = (
            JobStore(self.config.state_dir)
            if self.config.state_dir is not None
            else None
        )
        self.http_stats = StatGroup("serve.http")
        self.latency_ms = Histogram(bucket_width=5)
        self.registry = MetricsRegistry()
        self.registry.register("serve.queue", self.queue.stats)
        self.registry.register("serve.queue.wait_ms", self.queue.wait_ms)
        self.registry.register("serve.http", self.http_stats)
        self.registry.register("serve.http.latency_ms", self.latency_ms)
        self._server: asyncio.AbstractServer | None = None
        self._work: asyncio.Condition | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._running: set[asyncio.Task] = set()
        self._draining = False
        self._closed = False
        self._aborted = False
        self._stopped: asyncio.Event | None = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._work = asyncio.Condition()
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._scheduler_task = asyncio.create_task(self._scheduler())
        logger.info(
            json.dumps({
                "event": "started",
                "host": self.config.host,
                "port": self.port,
                "workers": self.config.workers,
                "executor": self.runner.mode,
                "version": code_version(),
            })
        )

    def _recover(self) -> None:
        """Re-enqueue jobs the previous server left open (idempotent)."""
        if self.store is None:
            return
        for view in self.store.recover():
            try:
                spec = protocol.spec_from_wire(view["spec"])
            except ReproError as error:
                logger.warning(
                    json.dumps({
                        "event": "recovery-skip",
                        "job_id": view.get("job_id"),
                        "error": str(error),
                    })
                )
                continue
            job, existing = self.queue.submit(
                spec,
                client=view.get("client", "recovered"),
                priority=view.get("priority", 0),
                job_id=view.get("job_id"),
                recovered=True,
                submitted_wall=view.get("submitted_wall"),
            )
            if not existing:
                self.store.append(protocol.QUEUED, job.as_wire())

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True, deadline: float | None = None) -> None:
        """Drain (up to ``deadline`` seconds), cancel leftovers, close.

        Safe to call more than once; later calls just wait for the
        first to finish.
        """
        if self._draining:
            await self.wait_stopped()
            return
        self._draining = True
        deadline = self.config.drain_deadline if deadline is None else deadline
        open_jobs = self.queue.open_jobs()
        if drain and open_jobs:
            waits = [job.done.wait() for job in open_jobs]
            try:
                await asyncio.wait_for(asyncio.gather(*waits), timeout=deadline)
            except asyncio.TimeoutError:
                pass
        # Whatever did not finish in time: queued jobs are cancelled
        # (journalled, so a restart will NOT resurrect them — the
        # operator asked for them to stop), running tasks are cut loose.
        for job in self.queue.open_jobs():
            if self.queue.cancel(job):
                self._journal(protocol.CANCELLED, job)
        self._closed = True
        assert self._work is not None
        async with self._work:
            self._work.notify_all()
        if self._scheduler_task is not None:
            await self._scheduler_task
        for task in list(self._running):
            task.cancel()
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.runner.close()
        logger.info(json.dumps({"event": "stopped", "jobs": self.queue.counts()}))
        assert self._stopped is not None
        self._stopped.set()

    async def abort(self) -> None:
        """Stop serving immediately, as if the process had died.

        No drain, no cancellation journalling: open jobs stay open in
        the journal exactly as a crash would leave them, so a later
        server on the same state dir recovers them. Used by the cluster
        worker-kill drills (:mod:`repro.serve.cluster`) and tests; a
        production stop is :meth:`shutdown`.
        """
        if self._draining:
            await self.wait_stopped()
            return
        self._aborted = True
        self._draining = True
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._work is not None
        async with self._work:
            self._work.notify_all()
        if self._scheduler_task is not None:
            await self._scheduler_task
        for task in list(self._running):
            task.cancel()
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)
        self.runner.close()
        logger.info(json.dumps({"event": "aborted"}))
        assert self._stopped is not None
        self._stopped.set()

    # ------------------------------------------------------------------
    # Scheduling / execution
    # ------------------------------------------------------------------
    async def _scheduler(self) -> None:
        assert self._work is not None
        while True:
            async with self._work:
                job = None
                while job is None:
                    if self._closed:
                        return
                    if len(self._running) < self.config.workers:
                        job = self.queue.pop()
                        if job is not None:
                            break
                    await self._work.wait()
            task = asyncio.create_task(self._execute_job(job))
            self._running.add(task)
            task.add_done_callback(self._running.discard)

    async def _execute_job(self, job: Job) -> None:
        self.queue.mark_running(job)
        self._journal(protocol.RUNNING, job)
        try:
            record, cached = await self.runner.run(job.spec)
        except asyncio.CancelledError:
            self.queue.fail(job, "server shut down while running")
            self._journal(protocol.FAILED, job)
            raise
        except ReproError as error:
            self.queue.fail(job, str(error))
            self._journal(protocol.FAILED, job)
        except Exception as error:  # degraded execution failed too
            self.queue.fail(job, f"{type(error).__name__}: {error}")
            self._journal(protocol.FAILED, job)
        else:
            self.queue.finish(job, record, cached=cached)
            self._journal(protocol.DONE, job)
        finally:
            # Release this worker slot *before* waking the scheduler.
            # The done-callback discard only fires after the coroutine
            # returns, i.e. after the notify below — a fully-loaded
            # scheduler would wake, still see every slot occupied, and
            # sleep through the release (a lost wakeup).
            self._running.discard(asyncio.current_task())
            if not self._closed:
                assert self._work is not None
                async with self._work:
                    self._work.notify_all()

    def _journal(self, state: str, job: Job) -> None:
        # An aborted (simulated-crash) server stops journalling: a real
        # crash would not have written these transitions either, and the
        # recovery tests depend on the journal keeping its open entries.
        if self.store is not None and not self._aborted:
            self.store.append(state, job.as_wire())

    # ------------------------------------------------------------------
    # HTTP front-end
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        status = 500
        method, path, client = "?", "?", "?"
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            status, payload, headers = await self._route(method, path, body)
            client = (payload or {}).get("_client", "?")
        except protocol.ProtocolError as error:
            status, payload, headers = 400, error_body(
                protocol.ERR_BAD_REQUEST, str(error)
            ), {}
        except asyncio.CancelledError:
            raise
        except Exception as error:  # never let a request kill the server
            logger.exception("request handler crashed")
            status, payload, headers = 500, error_body(
                protocol.ERR_INTERNAL, f"{type(error).__name__}: {error}"
            ), {}
        payload = dict(payload or {})
        payload.pop("_client", None)
        try:
            await _write_response(writer, status, payload, headers)
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            duration_ms = int((time.monotonic() - started) * 1000)
            self.http_stats.add("requests")
            self.http_stats.add(f"responses_{status // 100}xx")
            self.latency_ms.observe(duration_ms)
            if self.config.request_log:
                logger.info(
                    json.dumps({
                        "event": "request",
                        "method": method,
                        "path": path,
                        "status": status,
                        "duration_ms": duration_ms,
                        "client": client,
                    })
                )

    async def _route(
        self, method: str, path: str, body: dict | None
    ) -> tuple[int, dict, dict]:
        """Dispatch one request; returns (status, json body, extra headers)."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, self._health_body(), {}
        if path == "/metrics" and method == "GET":
            self.http_stats.add("requests_metrics")
            return 200, self.registry.snapshot().as_dict(), {}
        if path == "/v1/jobs" and method == "POST":
            return await self._handle_submit(body)
        if path == "/v1/jobs" and method == "GET":
            return 200, {
                "protocol": PROTOCOL_VERSION,
                "jobs": [job.as_wire(time.monotonic())
                         for job in self.queue.jobs()],
            }, {}
        if path == "/v1/admin/shutdown" and method == "POST":
            drain = bool((body or {}).get("drain", True))
            asyncio.get_running_loop().create_task(
                self.shutdown(drain=drain)
            )
            return 202, {"state": "shutting-down", "drain": drain}, {}
        if path.startswith("/v1/jobs/"):
            return await self._route_job(method, path)
        return 404, error_body(
            protocol.ERR_NOT_FOUND, f"no route for {method} {path}"
        ), {}

    def _health_body(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "version": code_version(),
            "package": repro.__version__,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.workers,
            "executor": self.runner.mode,
            "jobs": self.queue.counts(),
        }

    async def _handle_submit(self, body: dict | None) -> tuple[int, dict, dict]:
        self.http_stats.add("requests_submit")
        if self._draining:
            return 503, error_body(
                protocol.ERR_DRAINING, "server is draining; resubmit elsewhere"
            ), {"Retry-After": "1"}
        fields = protocol.parse_submit_request(body)
        try:
            job, coalesced = self.queue.submit(
                fields["spec"],
                client=fields["client"],
                priority=fields["priority"],
                shard=fields["shard"],
            )
        except AdmissionDenied as denied:
            code = 429
            return code, {
                **error_body(denied.code, str(denied),
                             retry_after=denied.retry_after),
                "_client": fields["client"],
            }, {"Retry-After": f"{denied.retry_after:.3f}"}
        if not coalesced:
            self._journal(protocol.QUEUED, job)
            assert self._work is not None
            async with self._work:
                self._work.notify_all()
        if fields["wait"]:
            timeout = min(
                self.config.max_wait,
                fields["timeout"] if fields["timeout"] is not None
                else self.config.max_wait,
            )
            try:
                await asyncio.wait_for(job.done.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass
        status = 200 if job.terminal else 202
        payload: dict = {
            "protocol": PROTOCOL_VERSION,
            "version": code_version(),
            "job": job.as_wire(time.monotonic()),
            "coalesced": coalesced,
            "_client": fields["client"],
        }
        if job.state == protocol.DONE and fields["wait"]:
            payload["result"] = protocol.encode_result(job.record)
        return status, payload, {}

    async def _route_job(self, method: str, path: str) -> tuple[int, dict, dict]:
        parts = path.split("/")  # ['', 'v1', 'jobs', '<id>', ('result'|'cancel')?]
        job = self.queue.get(parts[3]) if len(parts) >= 4 else None
        if job is None:
            return 404, error_body(
                protocol.ERR_NOT_FOUND, f"unknown job {parts[3]!r}"
            ), {}
        action = parts[4] if len(parts) == 5 else None
        if action is None and method == "GET":
            return 200, {
                "protocol": PROTOCOL_VERSION,
                "job": job.as_wire(time.monotonic()),
            }, {}
        if action == "result" and method == "GET":
            payload = {
                "protocol": PROTOCOL_VERSION,
                "job": job.as_wire(time.monotonic()),
                "ready": job.state == protocol.DONE,
            }
            if job.state == protocol.DONE:
                payload["result"] = protocol.encode_result(job.record)
            return 200, payload, {}
        if action == "cancel" and method == "POST":
            cancelled = self.queue.cancel(job)
            if cancelled:
                self._journal(protocol.CANCELLED, job)
            return 200, {
                "protocol": PROTOCOL_VERSION,
                "cancelled": cancelled,
                "job": job.as_wire(time.monotonic()),
            }, {}
        return 405, error_body(
            protocol.ERR_BAD_REQUEST, f"{method} not allowed on {path}"
        ), {}


# ----------------------------------------------------------------------
# Minimal HTTP/1.1 over asyncio streams
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict | None] | None:
    """Parse one request; returns (method, path, json body) or None on EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not request_line:
        return None
    try:
        method, path, _ = request_line.decode("latin-1").split(" ", 2)
    except ValueError:
        raise protocol.ProtocolError("malformed HTTP request line") from None
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise protocol.ProtocolError("bad Content-Length") from None
    if content_length > _MAX_BODY_BYTES:
        raise protocol.ProtocolError(
            f"request body too large ({content_length} bytes)"
        )
    body: dict | None = None
    if content_length:
        raw = await reader.readexactly(content_length)
        try:
            body = json.loads(raw)
        except ValueError:
            raise protocol.ProtocolError("request body is not valid JSON") from None
    return method.upper(), path, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    extra_headers: dict | None = None,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
        "X-Repro-Protocol": str(PROTOCOL_VERSION),
        "X-Repro-Version": code_version(),
        **(extra_headers or {}),
    }
    reason = _REASONS.get(status, "Unknown")
    head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    ) + "\r\n"
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def serve(config: ServeConfig | None = None, runner: Any = None) -> int:
    """Run a server until a signal or an admin shutdown stops it."""
    import signal

    server = SimulationServer(config, runner=runner)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum,
                lambda: asyncio.get_running_loop().create_task(
                    server.shutdown(drain=True)
                ),
            )
        except (NotImplementedError, RuntimeError):  # non-unix / nested loops
            pass
    print(
        f"repro serve: listening on http://{server.config.host}:{server.port} "
        f"(workers={server.config.workers}, executor={server.runner.mode})"
    )
    await server.wait_stopped()
    return 0
