"""On-disk job journal: crash-safe recovery for the simulation service.

The store records *job lifecycle*, not results. Terminal results
already live in the process-wide :class:`~repro.perf.cache.ResultCache`
(the executor writes them there under the spec's cache key), so the
journal only needs enough to rebuild the queue: one JSON line per
transition, append-only, fsync-free (a lost tail costs at most a
re-execution, never a wrong answer — execution is deterministic and
cache-checked).

Recovery folds the journal by ``job_id`` (last transition wins) and
returns the jobs that were still open — queued or running — when the
previous server died. The server re-enqueues them with their original
ids, so clients polling across a restart keep working; a recovered job
whose result landed in the cache before the crash completes instantly
from the cache instead of re-running. Re-recovering is idempotent:
``JobQueue.submit(recovered=True)`` returns the existing job when the
id is already present.

Journals compact themselves: when the file grows past
``compact_after`` lines, the next append rewrites it to one line per
open job (terminal history is dropped — it is queryable from the cache
and of no use to recovery).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Callable

from repro.errors import ReproError
from repro.serve.protocol import QUEUED, RUNNING, TERMINAL_STATES

JOURNAL_NAME = "jobs.jsonl"
JOURNAL_SCHEMA = 1


class JobStore:
    """Append-only JSONL journal under one state directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        compact_after: int = 4096,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = pathlib.Path(root)
        self.path = self.root / JOURNAL_NAME
        self.compact_after = max(16, int(compact_after))
        self._clock = clock
        # Seed the line counter from the journal a previous server left
        # behind: starting at 0 would let every restart defer compaction
        # by another compact_after appends, growing the file without
        # bound across repeated restarts.
        self._lines = self._count_lines()

    def _count_lines(self) -> int:
        try:
            with self.path.open("rb") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    # ------------------------------------------------------------------
    def append(self, state: str, job_wire: dict) -> None:
        """Record one transition; ``job_wire`` is ``Job.as_wire()``."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": JOURNAL_SCHEMA,
            "ts": self._clock(),
            "state": state,
            "job": _journal_view(job_wire),
        }
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._lines += 1
        if self._lines >= self.compact_after:
            self.compact()

    def fold(self) -> dict[str, dict]:
        """job_id -> latest journal entry (malformed tail lines skipped).

        A torn final line (the append the crash interrupted) is normal
        and ignored; a torn line in the middle would also be skipped,
        which at worst re-runs or forgets one deterministic job.
        """
        folded: dict[str, dict] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return folded
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                job_id = entry["job"]["job_id"]
            except (ValueError, KeyError, TypeError):
                continue
            folded[job_id] = entry
        return folded

    def recover(self) -> list[dict]:
        """Journal views of jobs left open by the previous server.

        Returned in original submission order so recovered work keeps
        its FIFO position within each priority level.
        """
        open_jobs = [
            entry["job"]
            for entry in self.fold().values()
            if entry.get("state") in (QUEUED, RUNNING)
        ]
        # Order by wall-clock submit time: monotonic readings are
        # process-relative and do not compare across server lives
        # (older journals without the field fall back to them).
        open_jobs.sort(
            key=lambda job: job.get(
                "submitted_wall", job.get("submitted_at", 0.0)
            )
        )
        return open_jobs

    def compact(self) -> int:
        """Rewrite the journal to one line per open job; returns lines kept.

        Uses write-to-temp + :func:`os.replace` so a crash mid-compact
        leaves either the old or the new journal, never a torn one.
        """
        folded = self.fold()
        keep = [
            entry
            for entry in folded.values()
            if entry.get("state") not in TERMINAL_STATES
        ]
        keep.sort(
            key=lambda entry: entry["job"].get(
                "submitted_wall", entry["job"].get("submitted_at", 0.0)
            )
        )
        temporary = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        self.root.mkdir(parents=True, exist_ok=True)
        with temporary.open("w", encoding="utf-8") as handle:
            for entry in keep:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        os.replace(temporary, self.path)
        self._lines = len(keep)
        return len(keep)


def _journal_view(job_wire: dict) -> dict:
    """The journal subset of a job's wire view (no volatile fields).

    ``submitted_wall`` is the field recovery depends on: the monotonic
    ``submitted_at`` is kept for debugging but is meaningless in any
    process other than the one that wrote it.
    """
    try:
        view = {
            "job_id": job_wire["job_id"],
            "spec": job_wire["spec"],
            "client": job_wire["client"],
            "priority": job_wire["priority"],
            "submitted_at": job_wire["submitted_at"],
        }
    except KeyError as error:
        raise ReproError(
            f"job wire view is missing journal field {error}"
        ) from None
    if "submitted_wall" in job_wire:
        view["submitted_wall"] = job_wire["submitted_wall"]
    return view
