"""Run a simulation server in a background thread, for tests and checks.

The server is pure asyncio; pytest and the correctness battery are
synchronous. :class:`ServerThread` bridges the two: it spins up an
event loop in a daemon thread, starts a :class:`SimulationServer` on an
ephemeral port, and exposes a matching blocking :class:`ServeClient`.
Used by ``tests/test_serve``, :mod:`repro.check.service`, and the CI
serve-smoke job's in-process variant.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time

from repro.errors import ReproError
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, SimulationServer


class ServerThread:
    """``with ServerThread(config) as handle: handle.client().submit(...)``.

    The config's port is forced to 0 (ephemeral) unless set explicitly;
    the bound port is available as ``.port`` once the context is
    entered. Exit shuts the server down (draining by default).
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        cache=None,
        runner=None,
        drain_on_exit: bool = True,
        start_timeout: float = 10.0,
    ) -> None:
        self.config = config or ServeConfig(
            port=0, executor="thread", state_dir=None
        )
        self._cache = cache
        self._runner = runner
        self.drain_on_exit = drain_on_exit
        self.start_timeout = start_timeout
        self.server: SimulationServer | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.start_timeout):
            raise ReproError("test server did not start in time")
        if self._error is not None:
            raise ReproError(f"test server failed to start: {self._error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.server = SimulationServer(
                self.config, cache=self._cache, runner=self._runner
            )
            loop.run_until_complete(self.server.start())
            self.port = self.server.port
        except BaseException as error:  # surfaced to start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_until_complete(self.server.wait_stopped())
        finally:
            loop.close()

    def stop(self, drain: bool | None = None) -> None:
        if self.server is None or self._loop is None:
            return
        drain = self.drain_on_exit if drain is None else drain
        if not self._loop.is_closed():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.server.shutdown(drain=drain), self._loop
                )
            except RuntimeError:  # loop closed between the check and the call
                future = None
            if future is not None:
                # An admin-triggered shutdown may finish the loop before
                # our coroutine runs, stranding the future — so poll the
                # server thread too instead of blocking on the future.
                deadline = time.monotonic() + 60.0
                while True:
                    try:
                        future.result(timeout=0.1)
                        break
                    except concurrent.futures.TimeoutError:
                        if self._thread is None or not self._thread.is_alive():
                            break
                        if time.monotonic() >= deadline:
                            raise
                    except (concurrent.futures.CancelledError, RuntimeError):
                        break
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def kill(self) -> None:
        """Simulate a crash: abort without draining or journalling.

        Queued and running jobs stay open in the journal exactly as a
        real process death would leave them — the cluster recovery
        tests restart a worker from this state.
        """
        if self.server is None or self._loop is None:
            return
        if not self._loop.is_closed():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.server.abort(), self._loop
                )
                future.result(timeout=30.0)
            except (RuntimeError, concurrent.futures.CancelledError):
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    def client(self, client_id: str = "test", timeout: float = 60.0) -> ServeClient:
        assert self.port is not None, "server not started"
        return ServeClient(
            host=self.config.host,
            port=self.port,
            client_id=client_id,
            timeout=timeout,
        )

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
