"""System assembly: configuration, the simulated machine, run results."""

from repro.sim.config import (
    Mechanism,
    SchedulerKind,
    SystemConfig,
    impulse_config,
    plain_dram_config,
    table1_config,
)
from repro.sim.results import RunResult
from repro.sim.system import System

__all__ = [
    "Mechanism",
    "RunResult",
    "SchedulerKind",
    "System",
    "SystemConfig",
    "impulse_config",
    "plain_dram_config",
    "table1_config",
]
