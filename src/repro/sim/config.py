"""System configuration (paper Table 1).

One :class:`SystemConfig` fully describes a simulated machine: cores,
caches, prefetcher, DRAM geometry/timing, memory scheduler, and whether
the module is commodity DRAM or GS-DRAM(c, s, p).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.dram.address import Geometry, MappingPolicy
from repro.errors import ConfigError


class Mechanism(enum.Enum):
    """Which memory substrate backs the system."""

    PLAIN_DRAM = "plain"
    GS_DRAM = "gs-dram"
    #: Impulse-style controller-side gather over commodity DRAM
    #: [Carter+ HPCA'99] — the paper's Section 7 comparison point.
    IMPULSE = "impulse"


class SchedulerKind(enum.Enum):
    FCFS = "fcfs"
    FR_FCFS = "fr-fcfs"


@dataclass(frozen=True)
class SystemConfig:
    """Table 1 defaults: 1-2 in-order x86 cores @4 GHz, 32 KB L1s,
    2 MB shared L2, DDR3-1600 single channel/rank, 8 banks, open row,
    FR-FCFS, GS-DRAM(8,3,3)."""

    cores: int = 1
    cpu_ghz: float = 4.0
    mechanism: Mechanism = Mechanism.GS_DRAM
    # Caches (64-byte lines everywhere).
    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: int = 4
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 12
    # Prefetcher (Section 5.1: PC-based stride, degree 4, into L2).
    prefetch: bool = False
    prefetch_degree: int = 4
    # DRAM.
    channels: int = 1  # Table 1 uses one channel; Section 4.2 extension
    geometry: Geometry = field(default_factory=Geometry)
    mapping_policy: MappingPolicy = MappingPolicy.ROW_BANK_COLUMN
    cpu_per_bus: int = 5  # 4 GHz core / 800 MHz DDR3-1600 bus
    scheduler: SchedulerKind = SchedulerKind.FR_FCFS
    open_row_policy: bool = True  # Table 1: open row
    refresh: bool = False
    # GS-DRAM(c, s, p) parameters (c comes from geometry.chips).
    shuffle_stages: int = 3
    pattern_bits: int = 3
    shuffle_latency: int = 3  # cycles per read/write through the network
    # Core execution model.
    sync_interval: int = 400
    #: Dynamic pattern detection (the paper's Section 4 future work):
    #: transparently rewrite record-strided scalar loads into gathers.
    auto_pattern: bool = False
    #: Store buffer depth: 0 = blocking stores; N > 0 lets the core
    #: continue past up to N outstanding store misses.
    store_buffer: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("need at least one core")
        if self.mechanism is Mechanism.GS_DRAM and self.shuffle_stages < 0:
            raise ConfigError("shuffle_stages must be non-negative")
        if self.channels < 1:
            raise ConfigError("need at least one channel")

    @property
    def is_gs(self) -> bool:
        return self.mechanism is Mechanism.GS_DRAM

    def with_(self, **overrides) -> "SystemConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


def table1_config(**overrides) -> SystemConfig:
    """The paper's simulated system (Table 1), with optional overrides."""
    return SystemConfig().with_(**overrides) if overrides else SystemConfig()


def plain_dram_config(**overrides) -> SystemConfig:
    """Same machine with a commodity (non-GS) DRAM module."""
    return SystemConfig(mechanism=Mechanism.PLAIN_DRAM).with_(**overrides)


def impulse_config(**overrides) -> SystemConfig:
    """Same machine with an Impulse-style gathering memory controller."""
    return SystemConfig(mechanism=Mechanism.IMPULSE).with_(**overrides)
