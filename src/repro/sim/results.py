"""Run results: the uniform record every experiment produces."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.energy.model import EnergyBreakdown


@dataclass
class RunResult:
    """Timing, traffic, and energy for one simulated run."""

    mechanism: str
    cycles: int
    instructions: int
    loads: int
    stores: int
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    dram_reads: int
    dram_writes: int
    row_hits: int
    row_misses: int
    prefetches: int
    coherence_invalidations: int
    writebacks: int
    energy: EnergyBreakdown
    extra: dict[str, float] = field(default_factory=dict)
    #: Host wall-time attribution (setup / generate / run / verify
    #: seconds) recorded by the experiment drivers. Deliberately NOT
    #: part of :meth:`to_dict` (fast-mode goldens compare dicts
    #: exactly), excluded from equality (two seeded runs are the same
    #: result even though their wall times differ), and scrubbed from
    #: serve digests (see ``repro.serve.protocol``).
    stages: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def memory_accesses(self) -> int:
        """Cache lines transferred on the memory channel."""
        return self.dram_reads + self.dram_writes

    @property
    def bandwidth_bytes(self) -> int:
        """Off-chip traffic in bytes (64 B per transfer)."""
        return self.memory_accesses * 64

    def to_dict(self) -> dict:
        """JSON-ready flat summary of this run."""
        return {
            "mechanism": self.mechanism,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "row_hit_rate": self.row_hit_rate,
            "prefetches": self.prefetches,
            "coherence_invalidations": self.coherence_invalidations,
            "writebacks": self.writebacks,
            "energy_mj": self.energy.total_mj,
            "extra": dict(self.extra),
        }

    def render(self) -> str:
        return (
            f"[{self.mechanism}] cycles={self.cycles:,} "
            f"instr={self.instructions:,} "
            f"L1 {self.l1_hit_rate:.1%} hit, "
            f"mem accesses={self.memory_accesses:,} "
            f"(row-hit {self.row_hit_rate:.1%}), "
            f"energy={self.energy.total_mj:.3f} mJ"
        )


#: Canonical stage names, in pipeline order.
STAGE_NAMES = ("setup", "generate", "run", "verify")


class StageTimer:
    """Wall-time attribution for one driver invocation.

    Drivers wrap each pipeline section in :meth:`stage` and call
    :meth:`attach` on the finished :class:`RunResult`; the bench
    surfaces the totals as the payload's ``stages`` block. Repeated
    sections (a verify split around a run, say) accumulate.
    """

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed

    def attach(self, result: RunResult) -> RunResult:
        for name, seconds in self.stages.items():
            result.stages[name] = result.stages.get(name, 0.0) + seconds
        return result
