"""The full simulated machine: cores + caches + controller + DRAM.

:class:`System` builds every component from a :class:`SystemConfig`
and runs one instruction stream per core to completion, returning a
:class:`RunResult`. It also exposes the allocation API (``pattmalloc``)
and functional memory access for loading data and checking answers.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.prefetcher import StridePrefetcher
from repro.core.module import GSModule
from repro.core.shuffle import LSBShuffle, NoShuffle
from repro.cpu.autopattern import AutoPatternUnit
from repro.cpu.core import Core
from repro.dram.module import DRAMModule
from repro.energy.model import system_energy
from repro.errors import SimulationError
from repro.mem.channels import MultiChannelController, MultiChannelModule
from repro.mem.controller import MemoryController
from repro.mem.impulse import ImpulseController, ImpulseModule
from repro.mem.mapping import StaticPatternPolicy
from repro.mem.schedulers import FCFS, FRFCFS, Scheduler
from repro.obs.session import current_session
from repro.sim.config import Mechanism, SchedulerKind, SystemConfig
from repro.sim.results import RunResult
from repro.utils.events import Engine


def _build_module(config: SystemConfig) -> DRAMModule:
    if config.mechanism is Mechanism.IMPULSE:
        return ImpulseModule(
            geometry=config.geometry,
            cpu_per_bus=config.cpu_per_bus,
            policy=config.mapping_policy,
        )
    if config.mechanism is Mechanism.GS_DRAM:
        shuffle = (
            LSBShuffle(config.shuffle_stages)
            if config.shuffle_stages > 0
            else NoShuffle()
        )
        return GSModule(
            geometry=config.geometry,
            cpu_per_bus=config.cpu_per_bus,
            policy=config.mapping_policy,
            shuffle=shuffle,
            pattern_bits=config.pattern_bits,
        )
    return DRAMModule(
        geometry=config.geometry,
        cpu_per_bus=config.cpu_per_bus,
        policy=config.mapping_policy,
    )


def _build_scheduler(config: SystemConfig) -> Scheduler:
    if config.scheduler is SchedulerKind.FCFS:
        return FCFS()
    return FRFCFS()


class System:
    """A complete simulated machine, built from one SystemConfig.

    ``mapping_policy`` is the :class:`repro.mem.mapping.MappingPolicy`
    seam (page table + allocator + placement); ``None`` builds the
    default :class:`~repro.mem.mapping.StaticPatternPolicy`, which is
    the historical behaviour. Pass a policy *class* — it is
    instantiated against this system's module.
    """

    def __init__(self, config: SystemConfig, mapping_policy=None) -> None:
        self.config = config
        self.engine = Engine()
        if config.channels > 1:
            modules = [_build_module(config) for _ in range(config.channels)]
            self.module = MultiChannelModule(modules)

            def make_channel_controller(channel_module):
                if config.mechanism is Mechanism.IMPULSE:
                    return ImpulseController(
                        self.engine,
                        channel_module,
                        scheduler=_build_scheduler(config),
                        refresh_enabled=config.refresh,
                    )
                return MemoryController(
                    self.engine,
                    channel_module,
                    scheduler=_build_scheduler(config),
                    shuffle_latency=config.shuffle_latency,
                    refresh_enabled=config.refresh,
                )

            self.controller = MultiChannelController(
                self.engine,
                self.module,
                scheduler_factory=lambda: _build_scheduler(config),
                shuffle_latency=config.shuffle_latency,
                refresh_enabled=config.refresh,
                controller_factory=make_channel_controller,
            )
        elif config.mechanism is Mechanism.IMPULSE:
            self.module = _build_module(config)
            self.controller = ImpulseController(
                self.engine,
                self.module,
                scheduler=_build_scheduler(config),
                refresh_enabled=config.refresh,
            )
        else:
            self.module = _build_module(config)
            self.controller = MemoryController(
                self.engine,
                self.module,
                scheduler=_build_scheduler(config),
                shuffle_latency=config.shuffle_latency,
                refresh_enabled=config.refresh,
                open_row_policy=config.open_row_policy,
            )
        prefetcher = (
            StridePrefetcher(degree=config.prefetch_degree)
            if config.prefetch
            else None
        )
        self.hierarchy = CacheHierarchy(
            self.engine,
            self.controller,
            num_cores=config.cores,
            l1_size=config.l1_size,
            l1_assoc=config.l1_assoc,
            l1_latency=config.l1_latency,
            l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l2_latency=config.l2_latency,
            prefetcher=prefetcher,
        )
        policy_cls = mapping_policy or StaticPatternPolicy
        self.mapping_policy = policy_cls(self.module)
        # Back-compat aliases: the rest of the machine (and a lot of
        # tests) address the pair directly.
        self.page_table = self.mapping_policy.page_table
        self.allocator = self.mapping_policy.allocator
        self.cores = [
            Core(
                self.engine,
                core_id,
                self.hierarchy,
                translate=self.page_table.translate,
                sync_interval=config.sync_interval,
                store_buffer=config.store_buffer,
                auto_pattern=(
                    AutoPatternUnit(line_bytes=self.module.line_bytes)
                    if config.auto_pattern and self.module.supports_patterns
                    else None
                ),
            )
            for core_id in range(config.cores)
        ]
        # An active observability session (repro.obs) adopts every
        # system built inside it: stats registered by component path,
        # tracer installed into the engine/hierarchy/controller(s).
        session = current_session()
        if session is not None:
            session.attach(self)

    # ------------------------------------------------------------------
    # Allocation and functional memory access
    # ------------------------------------------------------------------
    def pattmalloc(self, size: int, shuffle: bool = False, pattern: int = 0) -> int:
        """Allocate with GS attributes (Section 4.3's pattmalloc)."""
        return self.allocator.pattmalloc(size, shuffle=shuffle, pattern=pattern)

    def malloc(self, size: int) -> int:
        return self.allocator.malloc(size)

    def mem_write(self, address: int, data: bytes) -> None:
        """Functionally pre-load memory (honouring page shuffle flags)."""
        line_bytes = self.module.line_bytes
        position = 0
        while position < len(data):
            target = address + position
            base = self.module.mapping.line_address(target)
            offset = target - base
            take = min(len(data) - position, line_bytes - offset)
            _, shuffled, _ = self.page_table.translate(base)
            line = bytearray(self.module.read_line(base, 0, shuffled))
            line[offset : offset + take] = data[position : position + take]
            self.module.write_line(base, bytes(line), 0, shuffled)
            position += take

    def mem_read(self, address: int, length: int) -> bytes:
        """Functionally read memory (through any dirty cached lines).

        Drains dirty cache lines first so the result reflects the
        latest architectural state.
        """
        self.hierarchy.drain_dirty()
        out = bytearray()
        line_bytes = self.module.line_bytes
        while length > 0:
            base = self.module.mapping.line_address(address)
            offset = address - base
            take = min(length, line_bytes - offset)
            _, shuffled, _ = self.page_table.translate(base)
            line = self.module.read_line(base, 0, shuffled)
            out += line[offset : offset + take]
            address += take
            length -= take
        return bytes(out)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        programs: list[Iterable],
        stop_on_core: int | None = None,
        max_events: int | None = 200_000_000,
    ) -> RunResult:
        """Run one op stream per core; returns the combined result.

        ``stop_on_core``: when that core finishes, all other cores are
        cancelled (the paper's HTAP setup runs the transaction thread
        "until the analytics thread completes").
        """
        if len(programs) > len(self.cores):
            raise SimulationError(
                f"{len(programs)} programs for {len(self.cores)} cores",
                cycle=self.engine.now,
            )

        def on_done(core: Core) -> None:
            if stop_on_core is not None and core.core_id == stop_on_core:
                for other in self.cores:
                    if other.core_id != core.core_id:
                        other.cancel()

        for core, program in zip(self.cores, programs):
            core.run(program, on_done=on_done)
        self.engine.run(max_events=max_events)
        return self.collect_result()

    def collect_result(self) -> RunResult:
        """Snapshot stats + energy after a run."""
        cycles = max(
            [core.finish_time or self.engine.now for core in self.cores],
            default=self.engine.now,
        )
        instructions = sum(c.stats.get("instructions") for c in self.cores)
        loads = sum(c.stats.get("loads") for c in self.cores)
        stores = sum(c.stats.get("stores") for c in self.cores)
        l1_hits = sum(l1.stats.get("hits") for l1 in self.hierarchy.l1s)
        l1_misses = sum(l1.stats.get("misses") for l1 in self.hierarchy.l1s)
        mc = self.controller.stats
        energy = system_energy(
            runtime_cycles=cycles,
            instructions=instructions,
            l1_accesses=l1_hits + l1_misses,
            l2_accesses=self.hierarchy.l2.stats.get("hits")
            + self.hierarchy.l2.stats.get("misses"),
            command_counts=mc.as_dict(),
            cores=self.config.cores,
            cpu_ghz=self.config.cpu_ghz,
        )
        extra = {
            "engine_events": float(self.engine.events_processed),
            "mean_memory_queue_delay": self.controller.queue_delay.mean,
            "auto_gathers": float(
                sum(c.stats.get("auto_gathers") for c in self.cores)
            ),
            "stores_overlapped": float(
                sum(c.stats.get("stores_overlapped") for c in self.cores)
            ),
            "mshr_merges": float(self.hierarchy.stats.get("mshr_merges")),
            "snoop_flushes": float(self.hierarchy.stats.get("snoop_flushes")),
        }
        return RunResult(
            mechanism=self.config.mechanism.value,
            cycles=cycles,
            instructions=instructions,
            loads=loads,
            stores=stores,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            l2_hits=self.hierarchy.l2.stats.get("hits"),
            l2_misses=self.hierarchy.l2.stats.get("misses"),
            dram_reads=mc.get("cmd_RD"),
            dram_writes=mc.get("cmd_WR"),
            row_hits=mc.get("row_hits"),
            row_misses=mc.get("row_misses"),
            prefetches=self.hierarchy.stats.get("prefetches_issued"),
            coherence_invalidations=self.hierarchy.stats.get(
                "coherence_invalidations"
            ),
            writebacks=self.hierarchy.stats.get("writebacks"),
            energy=energy,
            extra=extra,
        )
