"""Trace record/replay/analysis for trace-driven simulation."""

from repro.trace.analysis import (
    GatherCandidate,
    PCProfile,
    TraceReport,
    analyze,
)
from repro.trace.format import (
    TraceRecord,
    cores_in,
    load_trace,
    record_ops,
    replay_ops,
    save_trace,
    trace_from_text,
    trace_to_text,
)

__all__ = [
    "GatherCandidate",
    "PCProfile",
    "TraceRecord",
    "TraceReport",
    "analyze",
    "cores_in",
    "load_trace",
    "record_ops",
    "replay_ops",
    "save_trace",
    "trace_from_text",
    "trace_to_text",
]
