"""Trace analysis: find gather opportunities in recorded workloads.

Given a trace, answer the question GS-DRAM adoption hinges on: *which
static loads stream with a record stride, and how much line traffic
would gathers save?* The analyzer computes per-PC stride profiles and
an overall benefit estimate, mirroring (offline) what the dynamic
:class:`~repro.cpu.autopattern.AutoPatternUnit` decides online.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.trace.format import TraceRecord


@dataclass
class PCProfile:
    """Access behaviour of one static load/store instruction."""

    pc: int
    accesses: int = 0
    stride_counts: Counter = field(default_factory=Counter)
    patterns: Counter = field(default_factory=Counter)
    _last_address: int | None = None

    def observe(self, record: TraceRecord) -> None:
        self.accesses += 1
        self.patterns[record.pattern] += 1
        if self._last_address is not None:
            self.stride_counts[record.address - self._last_address] += 1
        self._last_address = record.address

    @property
    def dominant_stride(self) -> int | None:
        """The most common stride, if it covers >= 2/3 of transitions."""
        total = sum(self.stride_counts.values())
        if total == 0:
            return None
        stride, count = self.stride_counts.most_common(1)[0]
        if count * 3 >= total * 2 and stride != 0:
            return stride
        return None


@dataclass(frozen=True)
class GatherCandidate:
    """A static load whose stream gathers would accelerate."""

    pc: int
    accesses: int
    stride: int
    suggested_pattern: int
    line_reduction: int  # lines touched now / lines with gathers


@dataclass
class TraceReport:
    """Aggregate analysis of one trace."""

    records: int
    loads: int
    stores: int
    compute_cycles: int
    footprint_lines: int
    pattern_usage: dict[int, int]
    candidates: list[GatherCandidate]

    def render(self) -> str:
        lines = [
            f"trace: {self.records} records "
            f"({self.loads} loads, {self.stores} stores, "
            f"{self.compute_cycles} compute cycles), "
            f"footprint {self.footprint_lines} lines",
            "pattern usage: "
            + ", ".join(f"p{p}={n}" for p, n in sorted(self.pattern_usage.items())),
        ]
        if self.candidates:
            lines.append("gather candidates:")
            for cand in self.candidates:
                lines.append(
                    f"  pc={cand.pc:#x}: {cand.accesses} accesses, "
                    f"stride {cand.stride} -> pattern {cand.suggested_pattern} "
                    f"({cand.line_reduction}x fewer lines)"
                )
        else:
            lines.append("no gather candidates found")
        return "\n".join(lines)


def analyze(records: list[TraceRecord], line_bytes: int = 64,
            value_bytes: int = 8, chips: int = 8) -> TraceReport:
    """Analyse a trace for GS-DRAM gather opportunities.

    A PC is a candidate when it streams pattern-0 single-value loads
    with a dominant stride equal to one cache line (the record stride
    the paper's Figure 8 loop exhibits): converting it to gathers
    divides its line traffic by ``chips``. Larger power-of-2 multiples
    of the line size are reported too, with smaller savings (partial
    groups).
    """
    profiles: dict[int, PCProfile] = defaultdict(lambda: PCProfile(pc=0))
    loads = stores = compute_cycles = 0
    touched_lines: set[int] = set()
    pattern_usage: Counter = Counter()

    for record in records:
        if record.kind == "C":
            compute_cycles += record.count
            continue
        pattern_usage[record.pattern] += 1
        touched_lines.add(record.address // line_bytes)
        if record.kind == "L":
            loads += 1
        else:
            stores += 1
        if record.pc:
            profile = profiles[record.pc]
            if profile.pc == 0:
                profiles[record.pc] = profile = PCProfile(pc=record.pc)
            profile.observe(record)

    candidates = []
    for pc, profile in sorted(profiles.items()):
        if profile.patterns.get(0, 0) != profile.accesses:
            continue  # already uses patterns
        stride = profile.dominant_stride
        if stride is None or stride <= 0:
            continue
        if stride % line_bytes != 0:
            continue
        multiple = stride // line_bytes
        if multiple & (multiple - 1):
            continue  # not a power-of-2 line multiple
        if multiple > chips:
            continue
        # One gathered line covers `chips` values that previously came
        # from `chips / multiple`... with record stride (multiple == 1)
        # the reduction is exactly `chips`.
        reduction = chips // multiple
        if reduction < 2:
            continue
        candidates.append(GatherCandidate(
            pc=pc,
            accesses=profile.accesses,
            stride=stride,
            suggested_pattern=chips - 1,
            line_reduction=reduction,
        ))

    return TraceReport(
        records=len(records),
        loads=loads,
        stores=stores,
        compute_cycles=compute_cycles,
        footprint_lines=len(touched_lines),
        pattern_usage=dict(pattern_usage),
        candidates=candidates,
    )
