"""Trace format: portable records of instruction streams.

A trace captures a program's architectural memory behaviour — loads,
stores, pattern IDs, PCs, and interleaved compute — independent of any
timing outcome. Traces drive three workflows:

- **record** a workload once, **replay** it against many machine
  configurations (trace-driven simulation, the gem5/champsim style);
- **analyse** a trace to find gather opportunities before committing to
  a layout (see :mod:`repro.trace.analysis`);
- ship reproducible workloads as plain text files.

The on-disk format is line-oriented tab-separated text::

    C  <core> <count>                      # compute burst
    L  <core> <addr> <size> <patt> <pc>    # load
    S  <core> <addr> <size> <patt> <pc> <payload-hex>   # store

Replayed loads carry no ``on_value`` callbacks (a trace has no
consumers); replayed stores reproduce their payloads exactly, so the
final memory state of a replay matches the recording.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.cpu.isa import Compute, Load, Store
from repro.errors import WorkloadError


@dataclass(frozen=True)
class TraceRecord:
    """One architectural event."""

    kind: str  # "C", "L", or "S"
    core: int
    count: int = 0  # compute bursts
    address: int = 0
    size: int = 8
    pattern: int = 0
    pc: int = 0
    payload: bytes = b""

    def to_line(self) -> str:
        if self.kind == "C":
            return f"C\t{self.core}\t{self.count}"
        if self.kind == "L":
            return (f"L\t{self.core}\t{self.address:#x}\t{self.size}\t"
                    f"{self.pattern}\t{self.pc:#x}")
        if self.kind == "S":
            return (f"S\t{self.core}\t{self.address:#x}\t{self.size}\t"
                    f"{self.pattern}\t{self.pc:#x}\t{self.payload.hex()}")
        raise WorkloadError(f"unknown record kind {self.kind!r}")

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.rstrip("\n").split("\t")
        kind = parts[0]
        if kind == "C":
            return cls(kind="C", core=int(parts[1]), count=int(parts[2]))
        if kind == "L":
            return cls(kind="L", core=int(parts[1]),
                       address=int(parts[2], 16), size=int(parts[3]),
                       pattern=int(parts[4]), pc=int(parts[5], 16))
        if kind == "S":
            return cls(kind="S", core=int(parts[1]),
                       address=int(parts[2], 16), size=int(parts[3]),
                       pattern=int(parts[4]), pc=int(parts[5], 16),
                       payload=bytes.fromhex(parts[6]))
        raise WorkloadError(f"bad trace line: {line!r}")


def record_ops(ops: Iterable, core: int, sink: list[TraceRecord]) -> Iterator:
    """Tee adapter: yield ``ops`` unchanged while recording them.

    Wrap a program before handing it to ``System.run``; the recorded
    trace lands in ``sink`` as the core consumes the stream.
    """
    for op in ops:
        if type(op) is Compute:
            sink.append(TraceRecord(kind="C", core=core, count=op.count))
        elif type(op) is Load:
            sink.append(TraceRecord(
                kind="L", core=core, address=op.address, size=op.size,
                pattern=op.pattern, pc=op.pc,
            ))
        elif type(op) is Store:
            sink.append(TraceRecord(
                kind="S", core=core, address=op.address, size=op.size,
                pattern=op.pattern, pc=op.pc, payload=bytes(op.payload),
            ))
        else:
            raise WorkloadError(f"cannot record op {op!r}")
        yield op


def replay_ops(records: Iterable[TraceRecord], core: int = 0) -> Iterator:
    """Turn a trace back into an op stream for ``core``."""
    for record in records:
        if record.core != core:
            continue
        if record.kind == "C":
            yield Compute(record.count)
        elif record.kind == "L":
            yield Load(record.address, size=record.size,
                       pattern=record.pattern, pc=record.pc)
        else:
            yield Store(record.address, record.payload,
                        pattern=record.pattern, pc=record.pc)


def cores_in(records: Iterable[TraceRecord]) -> list[int]:
    """Sorted core IDs present in a trace."""
    return sorted({record.core for record in records})


def save_trace(records: Iterable[TraceRecord], stream: TextIO) -> int:
    """Write records as text lines; returns the count written."""
    count = 0
    for record in records:
        stream.write(record.to_line() + "\n")
        count += 1
    return count


def load_trace(stream: TextIO) -> list[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    return [TraceRecord.from_line(line) for line in stream if line.strip()]


def trace_to_text(records: Iterable[TraceRecord]) -> str:
    """Convenience: serialize to a string."""
    buffer = io.StringIO()
    save_trace(records, buffer)
    return buffer.getvalue()


def trace_from_text(text: str) -> list[TraceRecord]:
    """Convenience: parse from a string."""
    return load_trace(io.StringIO(text))
