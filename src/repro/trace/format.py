"""Trace format: portable records of instruction streams.

A trace captures a program's architectural memory behaviour — loads,
stores, pattern IDs, PCs, and interleaved compute — independent of any
timing outcome. Traces drive three workflows:

- **record** a workload once, **replay** it against many machine
  configurations (trace-driven simulation, the gem5/champsim style);
- **analyse** a trace to find gather opportunities before committing to
  a layout (see :mod:`repro.trace.analysis`);
- ship reproducible workloads as plain text files.

The on-disk format is line-oriented tab-separated text::

    C  <core> <count>                      # compute burst
    L  <core> <addr> <size> <patt> <pc>    # load
    S  <core> <addr> <size> <patt> <pc> <payload-hex>   # store

Lines starting with ``#`` are comments; blank lines are ignored; both
``\n`` and ``\r\n`` line endings parse (externally-authored traces are
frequently CRLF). A malformed line raises :class:`WorkloadError`
carrying the 1-based line number and the offending text.

Replayed loads carry no ``on_value`` callbacks (a trace has no
consumers); replayed stores reproduce their payloads exactly, so the
final memory state of a replay matches the recording.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.cpu.isa import Compute, Load, Store
from repro.errors import WorkloadError


@dataclass(frozen=True)
class TraceRecord:
    """One architectural event."""

    kind: str  # "C", "L", or "S"
    core: int
    count: int = 0  # compute bursts
    address: int = 0
    size: int = 8
    pattern: int = 0
    pc: int = 0
    payload: bytes = b""

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on internally inconsistent fields.

        Serialization calls this so an impossible record (a compute
        burst carrying a payload, a store whose ``size`` disagrees with
        its payload, negative counts) fails loudly instead of producing
        a trace file no replay can honour.
        """
        if self.kind not in ("C", "L", "S"):
            raise WorkloadError(f"unknown record kind {self.kind!r}")
        if self.core < 0:
            raise WorkloadError("negative core in trace record",
                                core=self.core)
        if self.kind == "C":
            if self.count < 0:
                raise WorkloadError("compute record with negative count",
                                    core=self.core, count=self.count)
            if self.payload:
                raise WorkloadError("compute record with a payload",
                                    core=self.core)
            return
        if self.address < 0:
            raise WorkloadError("negative address in trace record",
                                address=self.address)
        if self.pattern < 0:
            raise WorkloadError("negative pattern in trace record",
                                address=self.address, pattern=self.pattern)
        if self.kind == "L":
            if self.size <= 0:
                raise WorkloadError("load record with non-positive size",
                                    address=self.address, size=self.size)
            if self.payload:
                raise WorkloadError("load record with a payload",
                                    address=self.address)
        elif self.size != len(self.payload):
            raise WorkloadError(
                "store record size disagrees with payload length",
                address=self.address, size=self.size,
                payload_len=len(self.payload),
            )

    def to_line(self) -> str:
        self.validate()
        if self.kind == "C":
            return f"C\t{self.core}\t{self.count}"
        if self.kind == "L":
            return (f"L\t{self.core}\t{self.address:#x}\t{self.size}\t"
                    f"{self.pattern}\t{self.pc:#x}")
        return (f"S\t{self.core}\t{self.address:#x}\t{self.size}\t"
                f"{self.pattern}\t{self.pc:#x}\t{self.payload.hex()}")

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.rstrip("\r\n").split("\t")
        kind = parts[0]
        try:
            if kind == "C" and len(parts) == 3:
                return cls(kind="C", core=int(parts[1]), count=int(parts[2]))
            if kind == "L" and len(parts) == 6:
                return cls(kind="L", core=int(parts[1]),
                           address=int(parts[2], 16), size=int(parts[3]),
                           pattern=int(parts[4]), pc=int(parts[5], 16))
            if kind == "S" and len(parts) == 7:
                return cls(kind="S", core=int(parts[1]),
                           address=int(parts[2], 16), size=int(parts[3]),
                           pattern=int(parts[4]), pc=int(parts[5], 16),
                           payload=bytes.fromhex(parts[6]))
        except ValueError as error:
            raise WorkloadError(
                f"malformed trace line: {line!r} ({error})"
            ) from error
        raise WorkloadError(f"bad trace line: {line!r}")


def record_ops(ops: Iterable, core: int, sink: list[TraceRecord]) -> Iterator:
    """Tee adapter: yield ``ops`` unchanged while recording them.

    Wrap a program before handing it to ``System.run``; the recorded
    trace lands in ``sink`` as the core consumes the stream.

    Matching is by ``isinstance`` (Compute first, mirroring the core's
    dispatch order), so instrumented subclasses of the ISA ops — e.g.
    the traffic-counting wrappers the :mod:`repro.infer` generators
    emit — record as their base kind.
    """
    for op in ops:
        if isinstance(op, Compute):
            sink.append(TraceRecord(kind="C", core=core, count=op.count))
        elif isinstance(op, Load):
            sink.append(TraceRecord(
                kind="L", core=core, address=op.address, size=op.size,
                pattern=op.pattern, pc=op.pc,
            ))
        elif isinstance(op, Store):
            sink.append(TraceRecord(
                kind="S", core=core, address=op.address, size=op.size,
                pattern=op.pattern, pc=op.pc, payload=bytes(op.payload),
            ))
        else:
            raise WorkloadError(f"cannot record op {op!r}")
        yield op


def replay_ops(records: Iterable[TraceRecord], core: int = 0) -> Iterator:
    """Turn a trace back into an op stream for ``core``."""
    for record in records:
        if record.core != core:
            continue
        if record.kind == "C":
            yield Compute(record.count)
        elif record.kind == "L":
            yield Load(record.address, size=record.size,
                       pattern=record.pattern, pc=record.pc)
        else:
            yield Store(record.address, record.payload,
                        pattern=record.pattern, pc=record.pc)


def cores_in(records: Iterable[TraceRecord]) -> list[int]:
    """Sorted core IDs present in a trace."""
    return sorted({record.core for record in records})


def save_trace(records: Iterable[TraceRecord], stream: TextIO) -> int:
    """Write records as text lines; returns the count written."""
    count = 0
    for record in records:
        stream.write(record.to_line() + "\n")
        count += 1
    return count


def load_trace(stream: TextIO) -> list[TraceRecord]:
    """Read a trace written by :func:`save_trace`.

    Tolerates CRLF line endings, skips blank and ``#``-comment lines,
    and wraps any parse failure in a :class:`WorkloadError` naming the
    1-based line number and the offending text.
    """
    records = []
    for number, raw in enumerate(stream, start=1):
        line = raw.rstrip("\r\n")
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            records.append(TraceRecord.from_line(line))
        except WorkloadError as error:
            raise WorkloadError(
                f"trace line {number}: {line!r}: {error.message}",
                line=number,
            ) from error
    return records


def trace_to_text(records: Iterable[TraceRecord]) -> str:
    """Convenience: serialize to a string."""
    buffer = io.StringIO()
    save_trace(records, buffer)
    return buffer.getvalue()


def trace_from_text(text: str) -> list[TraceRecord]:
    """Convenience: parse from a string."""
    return load_trace(io.StringIO(text))
