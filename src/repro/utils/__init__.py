"""Shared infrastructure: bit helpers, event engine, stats, reporting."""

from repro.utils.bitops import ilog2, is_power_of_two, mask
from repro.utils.events import Engine
from repro.utils.records import ComparisonSummary, FigureResult
from repro.utils.statistics import Histogram, StatGroup, geometric_mean
from repro.utils.tables import render_series, render_table

__all__ = [
    "ComparisonSummary",
    "Engine",
    "FigureResult",
    "Histogram",
    "StatGroup",
    "geometric_mean",
    "ilog2",
    "is_power_of_two",
    "mask",
    "render_series",
    "render_table",
]
