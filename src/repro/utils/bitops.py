"""Bit-manipulation helpers used across the DRAM and GS-DRAM models.

The paper's mechanisms are defined in terms of small bitwise operations
(the shuffle is an XOR butterfly, the column translation logic is an
AND + XOR). Centralising the helpers keeps those definitions readable
and uniformly validated.
"""

from __future__ import annotations

from repro.errors import AddressError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return log2 of ``value``, requiring it to be a power of two.

    >>> ilog2(8)
    3
    """
    if not is_power_of_two(value):
        raise AddressError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def mask(bits: int) -> int:
    """Return a mask of ``bits`` low-order ones. ``mask(3) == 0b111``."""
    if bits < 0:
        raise AddressError(f"negative bit count: {bits}")
    return (1 << bits) - 1


def extract_bits(value: int, low: int, count: int) -> int:
    """Extract ``count`` bits of ``value`` starting at bit ``low``."""
    if low < 0 or count < 0:
        raise AddressError(f"invalid bit slice low={low} count={count}")
    return (value >> low) & mask(count)


def insert_bits(value: int, low: int, count: int, field: int) -> int:
    """Return ``value`` with bits ``[low, low+count)`` replaced by ``field``."""
    if field < 0 or field > mask(count):
        raise AddressError(f"field {field} does not fit in {count} bits")
    cleared = value & ~(mask(count) << low)
    return cleared | (field << low)


#: Bit-reversal of every 8-bit value, built once at import. Reversing a
#: wide value is then byte-table lookups + shifts instead of a Python
#: loop over individual bits.
_REVERSED_BYTE = bytes(
    sum(((byte >> bit) & 1) << (7 - bit) for bit in range(8))
    for byte in range(256)
)


def reverse_bits(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``.

    >>> reverse_bits(0b001, 3)
    4
    """
    if width <= 0:
        return 0
    # Reverse whole bytes via the table, then drop the padding that
    # rounding ``width`` up to a byte boundary introduced at the bottom.
    value &= mask(width)
    padded = (width + 7) & ~7
    result = 0
    for low in range(0, padded, 8):
        result = (result << 8) | _REVERSED_BYTE[(value >> low) & 0xFF]
    return result >> (padded - width)


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (non-negative)."""
    if value < 0:
        raise AddressError(f"popcount of negative value: {value}")
    return bin(value).count("1")


def xor_fold(value: int, width: int) -> int:
    """XOR-fold ``value`` down to ``width`` bits.

    Used by the programmable shuffle functions of Section 6.1, which may
    combine multiple column-ID bit groups via XOR.
    """
    if width <= 0:
        raise AddressError(f"xor_fold width must be positive, got {width}")
    folded = 0
    while value:
        folded ^= value & mask(width)
        value >>= width
    return folded


def repeat_to_width(value: int, value_width: int, target_width: int) -> int:
    """Repeat a ``value_width``-bit value until it fills ``target_width`` bits.

    Section 6.2 widens the chip ID used by the CTL by repeating the
    physical chip ID: with 8 chips and a 6-bit pattern ID, chip 3 uses
    ``011-011``.
    """
    if value_width <= 0:
        raise AddressError("value_width must be positive")
    if value < 0 or value > mask(value_width):
        raise AddressError(f"{value} does not fit in {value_width} bits")
    result = 0
    filled = 0
    while filled < target_width:
        result |= value << filled
        filled += value_width
    return result & mask(target_width)
