"""A small discrete-event simulation engine.

The timing side of the reproduction is event driven: cores, the memory
controller, and the prefetcher schedule callbacks on a shared
:class:`Engine`. Keeping the engine minimal (a heap of timestamped
callbacks) is what makes paper-shaped workloads tractable in pure
Python — the number of events is proportional to the number of memory
operations, not the number of simulated cycles.

Times are integers, in CPU cycles (4 GHz in the paper's configuration).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class Engine:
    """Heap-based discrete-event engine with a monotonic integer clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._now = 0
        self._seq = 0
        self._running = False
        self.events_processed = 0
        #: Optional structured event tracer (see :mod:`repro.obs.tracer`).
        #: ``None`` keeps the dispatch loop on its untraced fast path.
        self.tracer = None

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run at absolute ``time``.

        Events at equal times run in scheduling order (FIFO), which makes
        simulations deterministic.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule_at(self._now + delay, callback, *args)

    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._heap)

    def step(self) -> bool:
        """Run the single earliest event. Return False if the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        self._now = time
        self.events_processed += 1
        if self.tracer is not None:
            self.tracer.engine_event(time, callback)
        callback(*args)
        return True

    def run(self, max_events: int | None = None) -> None:
        """Run until the event queue drains.

        ``max_events`` guards against runaway simulations (e.g. a
        workload generator that never terminates); exceeding it raises
        :class:`SimulationError` rather than hanging.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        # Batched dispatch: one tight loop over the heap with the pop
        # function and the heap bound to locals. Identical semantics to
        # repeated step() calls (same order, same clock updates) but
        # without a method call and four attribute lookups per event —
        # this loop is the single hottest path in the simulator.
        heap = self._heap
        pop = heapq.heappop
        count = 0
        tracer = self.tracer
        try:
            if tracer is not None:
                while heap:
                    if count == max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a non-terminating workload"
                        )
                    time, _seq, callback, args = pop(heap)
                    self._now = time
                    tracer.engine_event(time, callback)
                    callback(*args)
                    count += 1
            else:
                while heap:
                    # The guard runs *before* dispatch so exactly
                    # ``max_events`` events execute — the same budget a
                    # caller gets from ``max_events`` repeated ``step()``
                    # calls. (``count == None`` is never true, so the
                    # unguarded case costs one comparison.)
                    if count == max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a non-terminating workload"
                        )
                    time, _seq, callback, args = pop(heap)
                    self._now = time
                    callback(*args)
                    count += 1
        finally:
            self.events_processed += count
            self._running = False

    def run_until(self, time: int) -> None:
        """Run all events scheduled strictly before ``time``, then set now."""
        while self._heap and self._heap[0][0] < time:
            self.step()
        if time > self._now:
            self._now = time
