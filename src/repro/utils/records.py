"""Result containers shared by the harness and benchmarks.

A figure in the paper is a family of series (one per mechanism) over a
shared x-axis; :class:`FigureResult` captures exactly that, plus the
comparison ratios the paper quotes in prose ("3X better than the column
store"), so EXPERIMENTS.md can be generated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.utils.tables import render_series


@dataclass
class FigureResult:
    """Reproduced data for one paper figure."""

    figure: str
    description: str
    x_label: str
    xs: list[Any] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_point(self, mechanism: str, x: Any, y: float) -> None:
        """Append one (x, y) observation for ``mechanism``.

        The x-axis is extended on first sight of a new x value; all
        series must be populated in the same x order.
        """
        if x not in self.xs:
            self.xs.append(x)
        self.series.setdefault(mechanism, []).append(float(y))

    def mean(self, mechanism: str) -> float:
        values = self.series[mechanism]
        return sum(values) / len(values) if values else 0.0

    def speedup(self, baseline: str, contender: str) -> float:
        """Mean(baseline) / mean(contender): >1 means contender is faster.

        Matches the paper's convention for execution-time figures where
        lower is better.
        """
        contender_mean = self.mean(contender)
        if contender_mean == 0:
            return 0.0
        return self.mean(baseline) / contender_mean

    def per_point_speedups(self, baseline: str, contender: str) -> list[float]:
        """Point-wise baseline/contender ratios along the x-axis."""
        base = self.series[baseline]
        cont = self.series[contender]
        return [b / c if c else 0.0 for b, c in zip(base, cont)]

    def render(self) -> str:
        """ASCII rendering suitable for bench output and EXPERIMENTS.md."""
        body = render_series(
            f"{self.figure}: {self.description}", self.x_label, self.xs, self.series
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def to_dict(self) -> dict:
        """JSON-ready representation (machine-readable results)."""
        return {
            "figure": self.figure,
            "description": self.description,
            "x_label": self.x_label,
            "xs": list(self.xs),
            "series": {name: list(values) for name, values in self.series.items()},
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FigureResult":
        """Inverse of :meth:`to_dict`."""
        figure = cls(
            figure=payload["figure"],
            description=payload["description"],
            x_label=payload["x_label"],
            xs=list(payload["xs"]),
            series={k: list(v) for k, v in payload["series"].items()},
            notes=list(payload.get("notes", [])),
        )
        return figure


@dataclass
class ComparisonSummary:
    """A named set of headline ratios extracted from a FigureResult."""

    figure: str
    ratios: dict[str, float] = field(default_factory=dict)

    def record(self, label: str, value: float) -> None:
        self.ratios[label] = value

    def render(self) -> str:
        lines = [f"{self.figure} headline ratios:"]
        lines.extend(f"  {label}: {value:.2f}x" for label, value in self.ratios.items())
        return "\n".join(lines)


def assert_ordering(values: dict[str, float], expected_order: Sequence[str]) -> None:
    """Assert mechanisms appear in strictly increasing value order.

    Used by benchmark self-checks: e.g. for transaction execution time,
    ``expected_order = ("GS-DRAM", "Column Store")`` asserts GS-DRAM's
    time is lower than the column store's.
    """
    for first, second in zip(expected_order, expected_order[1:]):
        if not values[first] < values[second]:
            raise AssertionError(
                f"expected {first} ({values[first]}) < {second} ({values[second]}); "
                f"all values: {values}"
            )
