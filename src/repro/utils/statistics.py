"""Lightweight counters and derived statistics for simulator components.

Every component (cache, controller, core, energy model) keeps a
:class:`StatGroup` so the harness can dump a uniform, named set of
counters per run without each component inventing its own reporting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


class StatGroup:
    """A named group of integer counters with safe ratio helpers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Counter[str] = Counter()

    def add(self, key: str, amount: int = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def get(self, key: str) -> int:
        """Current value of counter ``key`` (0 if never incremented)."""
        return self._counters[key]

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a float; 0.0 when denominator is 0."""
        denom = self._counters[denominator]
        if denom == 0:
            return 0.0
        return self._counters[numerator] / denom

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters, sorted by name."""
        return dict(sorted(self._counters.items()))

    def merge(self, other: "StatGroup") -> None:
        """Fold another group's counters into this one."""
        self._counters.update(other._counters)

    def reset(self) -> None:
        """Zero all counters."""
        self._counters.clear()

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name}: {body})"


@dataclass
class Histogram:
    """A tiny integer histogram, used e.g. for queueing-delay profiles."""

    bucket_width: int = 1
    _buckets: Counter[int] = field(default_factory=Counter)
    _count: int = 0
    _total: int = 0
    _maximum: int | None = None

    def observe(self, value: int) -> None:
        """Record one observation.

        Only ``int`` values are accepted: a float would silently create
        fractional bucket keys (``value // bucket_width`` stays a float)
        that never merge with their integer neighbours.
        """
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(
                f"Histogram.observe expects an int, got "
                f"{type(value).__name__}: {value!r}"
            )
        self._buckets[value // self.bucket_width] += 1
        self._count += 1
        self._total += value
        if self._maximum is None or value > self._maximum:
            self._maximum = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def maximum(self) -> int:
        """Largest observed value (0 when nothing has been observed)."""
        return self._maximum if self._maximum is not None else 0

    def summary(self) -> dict:
        """JSON-able digest: count, mean, maximum, and bucket counts."""
        return {
            "count": self._count,
            "mean": self.mean,
            "maximum": self.maximum,
            "bucket_width": self.bucket_width,
            "buckets": {str(k): v for k, v in self.buckets().items()},
        }

    def buckets(self) -> dict[int, int]:
        """Mapping of bucket lower bound -> observation count."""
        return {
            bucket * self.bucket_width: count
            for bucket, count in sorted(self._buckets.items())
        }


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (speedup summaries)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
