"""ASCII table rendering for harness and benchmark output.

The benchmark harness prints the same rows/series the paper's figures
report; this module renders them as aligned monospace tables so the
output in ``bench_output.txt`` is directly readable next to the paper.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+------
    1 | 2.500
    """
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(items: Sequence[str]) -> str:
        return " | ".join(item.ljust(widths[i]) for i, item in enumerate(items)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def render_series(
    name: str,
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[float]],
) -> str:
    """Render one figure-style family of series as a table.

    ``series`` maps a mechanism name (e.g. "Row Store") to y-values
    aligned with ``xs``.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return render_table(headers, rows, title=name)
