"""Numpy-vectorized batch kernels and the fast-path replay model.

The GS-DRAM mechanisms are tiny bitwise functions — the shuffle is an
XOR butterfly, the column translation logic an AND + XOR — but the
figure sweeps evaluate them per access in pure Python. This package
batches that math over whole ``numpy`` int64 arrays:

- :mod:`repro.vec.kernels` — array variants of the shuffle, the CTL
  translation, gather-address assembly, DRAM address (de)composition,
  and bit utilities. The scalar functions in :mod:`repro.core.shuffle`,
  :mod:`repro.core.pattern`, :mod:`repro.core.ctl`, and
  :mod:`repro.utils.bitops` remain the reference implementations.
- :mod:`repro.vec.replay` — a batched trace-replay cache model
  (set/tag/LRU-stamp arrays, pattern ID in the tag per Section 4.1)
  plus vectorized row-hit/bank-conflict analytics.
- :mod:`repro.vec.fastpath` — :class:`FastSystem`, a drop-in for
  :class:`repro.sim.System` that runs the *same* cache hierarchy with
  an immediate (timing-free) memory controller, for workloads whose
  functional results do not depend on timing.
- :mod:`repro.vec.hier` — :class:`DirtyReplay`, a metadata-only replay
  of the full hierarchy + DBI + controller accounting over prepared
  address arrays (no simulated machine, no byte movement).
- :mod:`repro.vec.db` / :mod:`repro.vec.gemm` — phase 2: vectorized
  twins of the DB query engines (:mod:`repro.db.engine`) and the GEMM
  kernels (:mod:`repro.gemm.autotune`), dispatched via ``mode="fast"``
  on the drivers and stat-identical to the event machine.
- :mod:`repro.vec.shim` — observability stand-ins so fast runs appear
  in :mod:`repro.obs` sessions with the same stat names as real
  machines, and the event-side component snapshot the equivalence
  battery compares against.

Equivalence with the event-driven model is enforced by
:mod:`repro.check.fastpath` (see docs/PERFORMANCE.md).
"""

from repro.vec.fastpath import FastSystem, assert_fast_compatible, fast_supported
from repro.vec.hier import DirtyReplay
from repro.vec.kernels import (
    ctl_translate,
    decompose_addresses,
    effective_chip_ids,
    encode_addresses,
    gather_addresses_batch,
    gathered_value_indices,
    reverse_bits_array,
    shuffle_keys,
    shuffle_lines,
    unshuffle_lines,
    xor_fold_array,
)
from repro.vec.replay import (
    AccessTrace,
    ReplayCache,
    RowProfile,
    dedupe_consecutive,
    replay_two_level,
    row_locality,
)

__all__ = [
    "AccessTrace",
    "DirtyReplay",
    "FastSystem",
    "ReplayCache",
    "RowProfile",
    "assert_fast_compatible",
    "ctl_translate",
    "decompose_addresses",
    "dedupe_consecutive",
    "effective_chip_ids",
    "encode_addresses",
    "fast_supported",
    "gather_addresses_batch",
    "gathered_value_indices",
    "replay_two_level",
    "reverse_bits_array",
    "row_locality",
    "shuffle_keys",
    "shuffle_lines",
    "unshuffle_lines",
    "xor_fold_array",
]
