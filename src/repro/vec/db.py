"""Vectorized DB query engines (fig9/fig10/fig11 fast path, phase 2).

The event drivers in :mod:`repro.db.engine` execute every field access
as an interpreted instruction against real simulated bytes. For the
three standard layouts the access *stream* is pure address arithmetic
over the workload arrays, and the functional answers are pure numpy:

- the txn/scan addresses come from the layouts' closed-form address
  functions, vectorized over (tuple_id, field) arrays;
- the allocation is replayed byte-for-byte with the same
  :class:`~repro.vm.pattmalloc.PattAllocator` the system uses, so
  bank/row coordinates match the event machine exactly;
- cache/DBI/controller accounting is replayed by
  :class:`~repro.vec.hier.DirtyReplay` (stat-exact by construction,
  verified stat-by-stat by :mod:`repro.check.fastpath`);
- read values and the final table state come from a vectorized
  last-write-wins pass over the flattened cell stream; gathered scan
  values are recovered through
  :func:`~repro.vec.kernels.gather_addresses_batch`, so a bug in the
  gather math breaks verification instead of hiding.

Only the exact layout classes are supported (``PartialGatherStore``
subclasses ``GSDRAMStore`` but scans with different patterns/PCs — it
falls back to :class:`~repro.vec.fastpath.FastSystem` in the engine
dispatch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.layouts import (
    FIELD_COMPUTE_CYCLES,
    SCAN_COMPUTE_CYCLES,
    TXN_OVERHEAD_CYCLES,
    ColumnStore,
    GSDRAMStore,
    RowStore,
    StorageLayout,
)
from repro.db.workload import AnalyticsQuery, Transaction, TransactionArrays
from repro.dram.address import MappingPolicy
from repro.errors import WorkloadError
from repro.obs.session import current_session
from repro.sim.config import Mechanism, SystemConfig
from repro.sim.results import RunResult
from repro.vec.hier import DirtyReplay
from repro.vec.kernels import gather_addresses_batch
from repro.vec.shim import machine_shim
from repro.vm.pattmalloc import PattAllocator

_EXACT_LAYOUTS = (RowStore, ColumnStore, GSDRAMStore)


def fast_layout_supported(layout: StorageLayout) -> bool:
    """True when the vectorized engines model this layout exactly."""
    return type(layout) in _EXACT_LAYOUTS


@dataclass
class FastDbOutcome:
    """What a vectorized DB driver hands back to the engine dispatch.

    ``observed`` and ``final_rows`` are int64 ndarrays (phase 3): the
    engine verifies them against the vectorized oracle with
    ``np.array_equal``, so nothing is ever materialized to Python
    lists on the fast path.
    """

    result: RunResult
    component_stats: dict
    observed: np.ndarray | None = None
    final_rows: np.ndarray | None = None
    answer: int | None = None


class _FastTable:
    """Allocation replay + address arithmetic for one attached table."""

    def __init__(
        self,
        layout: StorageLayout,
        num_tuples: int,
        config: SystemConfig,
        rows: list[list[int]],
    ) -> None:
        if not fast_layout_supported(layout):
            raise WorkloadError(
                f"no vectorized engine for layout {type(layout).__name__}"
            )
        schema = layout.schema
        self.schema = schema
        self.num_tuples = num_tuples
        self.config = config
        self.is_column = type(layout) is ColumnStore
        self.is_gs = type(layout) is GSDRAMStore
        geometry = config.geometry
        allocator = PattAllocator(
            capacity_bytes=geometry.capacity_bytes,
            line_bytes=geometry.line_bytes,
            row_bytes=geometry.row_bytes,
        )
        if self.is_gs:
            # Mirror GSDRAMStore.attach (including its input checks).
            if num_tuples % schema.num_fields != 0:
                raise WorkloadError(
                    "GS-DRAM store needs tuple count divisible by the gather "
                    f"group size ({schema.num_fields})"
                )
            if config.mechanism is not Mechanism.GS_DRAM:
                raise WorkloadError("GSDRAMStore requires a GS-DRAM system")
            self.pattern = schema.gather_pattern
            self.base = allocator.pattmalloc(
                num_tuples * schema.tuple_bytes, shuffle=True,
                pattern=self.pattern,
            )
            self.column_bases = None
        elif self.is_column:
            self.pattern = 0
            self.base = None
            self.column_bases = np.array(
                [
                    allocator.malloc(num_tuples * schema.field_bytes)
                    for _ in range(schema.num_fields)
                ],
                dtype=np.int64,
            )
        else:
            self.pattern = 0
            self.base = allocator.malloc(num_tuples * schema.tuple_bytes)
            self.column_bases = None
        self.flat = np.asarray(rows, dtype=np.int64).reshape(-1)
        if self.flat.size != num_tuples * schema.num_fields:
            raise WorkloadError(
                f"expected {num_tuples}x{schema.num_fields} table contents"
            )

    # -- address arithmetic ------------------------------------------------
    def field_addresses(self, tuple_ids: np.ndarray, fields: np.ndarray):
        if self.is_column:
            return (
                self.column_bases[fields]
                + tuple_ids * self.schema.field_bytes
            )
        return (
            self.base
            + tuple_ids * self.schema.tuple_bytes
            + fields * self.schema.field_bytes
        )

    def stream_attributes(self, count: int):
        """(patterns, alt_patterns, shuffled) for ``count`` txn accesses."""
        patterns = np.zeros(count, dtype=np.int64)
        if self.is_gs:
            alts = np.full(count, self.pattern, dtype=np.int64)
            shuffled = np.ones(count, dtype=bool)
        else:
            alts = patterns
            shuffled = np.zeros(count, dtype=bool)
        return patterns, alts, shuffled


def _flatten_transactions(table: _FastTable, txns):
    """(tuple_ids, fields, writes, values) arrays, in program order.

    Accepts :class:`~repro.db.workload.TransactionArrays` (already
    flat; validated in batch) or a ``list[Transaction]``.
    """
    schema = table.schema
    num_tuples = table.num_tuples
    if isinstance(txns, TransactionArrays):
        tuple_ids = txns.tuple_ids
        fields = txns.fields
        if tuple_ids.size and not (
            0 <= int(tuple_ids.min()) and int(tuple_ids.max()) < num_tuples
        ):
            raise WorkloadError("tuple id out of range")
        if fields.size and not (
            0 <= int(fields.min()) and int(fields.max()) < schema.num_fields
        ):
            raise WorkloadError("field out of range")
        return tuple_ids, fields, txns.writes, txns.values
    tuple_id_list: list[int] = []
    field_list: list[int] = []
    write_list: list[bool] = []
    value_list: list[int] = []
    for txn in txns:
        if not 0 <= txn.tuple_id < num_tuples:
            raise WorkloadError(f"tuple {txn.tuple_id} out of range")
        for op in txn.ops:
            schema.validate_field(op.field)
            tuple_id_list.append(txn.tuple_id)
            field_list.append(op.field)
            write_list.append(op.write)
            value_list.append(op.value)
    return (
        np.array(tuple_id_list, dtype=np.int64),
        np.array(field_list, dtype=np.int64),
        np.array(write_list, dtype=bool),
        np.array(value_list, dtype=np.int64),
    )


def _last_write_wins(
    flat: np.ndarray, cells: np.ndarray, writes: np.ndarray, values: np.ndarray
):
    """Vectorized transaction semantics over flattened table cells.

    For each operation, the value it observes is the value of the last
    *write* to the same cell at an earlier stream position (or the
    initial cell contents). Returns ``(observed_reads, final_flat)``.

    The trick: sort stable by cell, encode each op as
    ``cell * (N + 1) + key`` with ``key = position + 1`` for writes and
    ``0`` for reads, and take a running max — within one cell's group
    the running max always decodes to the latest write seen so far.
    """
    total = int(cells.size)
    if total == 0:
        return np.array([], dtype=np.int64), flat.copy()
    order = np.argsort(cells, kind="stable")
    sorted_cells = cells[order]
    keys = np.where(writes, np.arange(total, dtype=np.int64) + 1, 0)
    combined = sorted_cells * np.int64(total + 1) + keys[order]
    running = np.maximum.accumulate(combined)
    last_write = running % np.int64(total + 1) - 1  # -1: no write yet
    seen = np.where(
        last_write >= 0,
        values[np.maximum(last_write, 0)],
        flat[sorted_cells],
    )
    observed_sorted = np.empty(total, dtype=np.int64)
    observed_sorted[order] = seen
    observed = observed_sorted[~writes]

    final_flat = flat.copy()
    group_end = np.ones(total, dtype=bool)
    group_end[:-1] = sorted_cells[1:] != sorted_cells[:-1]
    end_writes = last_write[group_end]
    end_cells = sorted_cells[group_end]
    written = end_writes >= 0
    final_flat[end_cells[written]] = values[end_writes[written]]
    return observed, final_flat


def _transaction_stream(table: _FastTable, txns):
    """Access stream + functional outcome of a transaction batch."""
    tuple_ids, fields, writes, values = _flatten_transactions(table, txns)
    addresses = table.field_addresses(tuple_ids, fields)
    line_bytes = table.config.geometry.line_bytes
    lines = addresses & ~np.int64(line_bytes - 1)
    patterns, alts, shuffled = table.stream_attributes(int(lines.size))
    cells = tuple_ids * np.int64(table.schema.num_fields) + fields
    return lines, patterns, alts, shuffled, writes, values, cells


def _analytics_stream(
    table: _FastTable, query: AnalyticsQuery, flat: np.ndarray
):
    """Access stream + per-value data of one analytics query.

    ``flat`` is the table contents the scan reads (the *current* state,
    which differs from the initial state mid-HTAP). Values are derived
    from the generated addresses — for GS-DRAM through the batched
    gather-address kernel — so address/gather bugs surface as
    verification failures, not silently-correct sums.
    """
    schema = table.schema
    config = table.config
    geometry = config.geometry
    line_bytes = geometry.line_bytes
    num_tuples = table.num_tuples
    group = schema.num_fields
    line_chunks: list[np.ndarray] = []
    value_chunks: list[np.ndarray] = []
    for field in query.fields:
        schema.validate_field(field)
        if table.is_gs:
            group_starts = np.arange(0, num_tuples, group, dtype=np.int64)
            columns = group_starts + field
            gathered_lines = table.base + columns * line_bytes
            slots = gather_addresses_batch(
                gathered_lines,
                np.full(columns.size, table.pattern, dtype=np.int64),
                chips=geometry.chips,
                banks=geometry.banks,
                rows_per_bank=geometry.rows_per_bank,
                columns_per_row=geometry.columns_per_row,
                column_bytes=geometry.column_bytes,
                shuffle_stages=config.shuffle_stages,
                pattern_bits=config.pattern_bits,
                bank_interleaved=(
                    config.mapping_policy is MappingPolicy.BANK_INTERLEAVED
                ),
            )
            source = slots - table.base
            if source.size and (
                int(source.min()) < 0
                or int(source.max()) >= num_tuples * schema.tuple_bytes
                or (source % schema.field_bytes).any()
            ):
                raise WorkloadError(
                    "gathered value addresses escaped the table"
                )
            values = flat[source // schema.field_bytes]
            # Each gathered line is pattload-ed once per position, all
            # hitting the same (line, pattern) cache entry.
            line_chunks.append(np.repeat(gathered_lines, group))
            value_chunks.append(values.reshape(-1))
        else:
            tuple_ids = np.arange(num_tuples, dtype=np.int64)
            fields = np.full(num_tuples, field, dtype=np.int64)
            addresses = table.field_addresses(tuple_ids, fields)
            if table.is_column:
                derived_tuples = (
                    addresses - table.column_bases[field]
                ) // schema.field_bytes
            else:
                derived_tuples = (
                    addresses - table.base
                ) // schema.tuple_bytes
            cells = derived_tuples * np.int64(group) + field
            value_chunks.append(flat[cells])
            line_chunks.append(addresses & ~np.int64(line_bytes - 1))
    lines = (
        np.concatenate(line_chunks)
        if line_chunks
        else np.array([], dtype=np.int64)
    )
    if table.is_gs:
        patterns = np.full(lines.size, table.pattern, dtype=np.int64)
        alts = patterns
        shuffled = np.ones(lines.size, dtype=bool)
    else:
        patterns = np.zeros(lines.size, dtype=np.int64)
        alts = patterns
        shuffled = np.zeros(lines.size, dtype=bool)
    answer = sum(int(chunk.sum()) for chunk in value_chunks)
    return lines, patterns, alts, shuffled, answer


def _attach_session(config: SystemConfig, replay: DirtyReplay,
                    result: RunResult) -> None:
    session = current_session()
    if session is None:
        return
    stats = replay.component_stats()
    session.attach(
        machine_shim(
            config,
            core_counts={
                "instructions": result.instructions,
                "loads": result.loads,
                "stores": result.stores,
                "misses_blocked": result.l2_misses,
                "finished": 1,
            },
            l1_counts=stats["l1"],
            l2_counts=stats["l2"],
            hierarchy_counts=stats["hierarchy"],
            dbi_counts=stats["dbi"],
            controller_counts=stats["controller"],
        )
    )


def fast_transactions(
    layout: StorageLayout,
    txns: TransactionArrays | list[Transaction],
    rows,
    num_tuples: int,
    config: SystemConfig,
) -> FastDbOutcome:
    """Vectorized twin of the event transaction driver."""
    table = _FastTable(layout, num_tuples, config, rows)
    lines, patterns, alts, shuffled, writes, values, cells = (
        _transaction_stream(table, txns)
    )
    replay = DirtyReplay(config)
    replay.run(lines, patterns, alts, writes, shuffled)

    observed, final_flat = _last_write_wins(table.flat, cells, writes, values)
    stores = int(writes.sum())
    loads = int(writes.size) - stores
    instructions = (
        TXN_OVERHEAD_CYCLES * len(txns)
        + (FIELD_COMPUTE_CYCLES + 1) * int(writes.size)
    )
    result = replay.collect_result(
        instructions=instructions, loads=loads, stores=stores
    )
    _attach_session(config, replay, result)
    return FastDbOutcome(
        result=result,
        component_stats=replay.component_stats(),
        observed=observed,
        final_rows=final_flat.reshape(num_tuples, table.schema.num_fields),
    )


def fast_analytics(
    layout: StorageLayout,
    query: AnalyticsQuery,
    rows,
    num_tuples: int,
    config: SystemConfig,
) -> FastDbOutcome:
    """Vectorized twin of the event analytics driver."""
    table = _FastTable(layout, num_tuples, config, rows)
    lines, patterns, alts, shuffled, answer = _analytics_stream(
        table, query, table.flat
    )
    replay = DirtyReplay(config)
    replay.run(
        lines, patterns, alts, np.zeros(lines.size, dtype=bool), shuffled
    )
    total_values = int(lines.size)
    instructions = (1 + SCAN_COMPUTE_CYCLES) * total_values
    result = replay.collect_result(
        instructions=instructions, loads=total_values, stores=0
    )
    _attach_session(config, replay, result)
    return FastDbOutcome(
        result=result,
        component_stats=replay.component_stats(),
        answer=answer,
    )


def fast_htap_phased(
    layout: StorageLayout,
    txns_a: TransactionArrays | list[Transaction],
    txns_b: TransactionArrays | list[Transaction],
    query: AnalyticsQuery,
    rows,
    num_tuples: int,
    config: SystemConfig,
) -> FastDbOutcome:
    """Vectorized twin of the phased (fixed-txn-count) HTAP driver.

    Replays one single-core program — transaction batch A, the
    analytics scan over the mid-run table state, transaction batch B —
    exactly as the event driver executes it.
    """
    table = _FastTable(layout, num_tuples, config, rows)
    a = _transaction_stream(table, txns_a)
    _, mid_flat = _last_write_wins(table.flat, a[6], a[4], a[5])
    scan = _analytics_stream(table, query, mid_flat)
    b = _transaction_stream(table, txns_b)
    _, final_flat = _last_write_wins(mid_flat, b[6], b[4], b[5])

    scan_count = int(scan[0].size)
    lines = np.concatenate([a[0], scan[0], b[0]])
    patterns = np.concatenate([a[1], scan[1], b[1]])
    alts = np.concatenate([a[2], scan[2], b[2]])
    shuffled = np.concatenate([a[3], scan[3], b[3]])
    writes = np.concatenate(
        [a[4], np.zeros(scan_count, dtype=bool), b[4]]
    )
    replay = DirtyReplay(config)
    replay.run(lines, patterns, alts, writes, shuffled)

    txn_ops = int(a[4].size) + int(b[4].size)
    stores = int(a[4].sum()) + int(b[4].sum())
    loads = (txn_ops - stores) + scan_count
    instructions = (
        TXN_OVERHEAD_CYCLES * (len(txns_a) + len(txns_b))
        + (FIELD_COMPUTE_CYCLES + 1) * txn_ops
        + (1 + SCAN_COMPUTE_CYCLES) * scan_count
    )
    result = replay.collect_result(
        instructions=instructions, loads=loads, stores=stores
    )
    _attach_session(config, replay, result)
    return FastDbOutcome(
        result=result,
        component_stats=replay.component_stats(),
        answer=scan[4],
        final_rows=final_flat.reshape(num_tuples, table.schema.num_fields),
    )
