"""FastSystem: the real cache hierarchy over a timing-free controller.

The event-driven machine spends most of its wall clock in the discrete
event engine and the controller's bank phase machines. For a class of
workloads none of that affects *functional* results: with one blocking
in-order core, no prefetcher, no store buffer, a single channel, and an
open-row policy, the sequence of cache lookups/fills/evictions and the
per-bank DRAM service order are both fully determined by program order.

:class:`FastSystem` exploits that: it builds the *same*
:class:`~repro.cache.hierarchy.CacheHierarchy`, DBI, page table, and
DRAM module as :class:`repro.sim.System`, but replaces the engine with
a frozen clock and the memory controller with
:class:`ImmediateController`, which services every request
synchronously at submit time with an open-row replay per bank. Because
the identical cache code runs in the identical call order, hit/miss
totals, eviction victims, coherence actions, gathered data, and
row-locality counts are bit-identical to the event model by
construction — timing outputs (cycles, queue delays) are simply zero.

Equivalence is additionally *verified*, not assumed:
:mod:`repro.check.fastpath` diffs fast and event runs end to end.
"""

from __future__ import annotations

from typing import Iterable

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.isa import Compute, Load, Store
from repro.dram.commands import Command, CommandKind
from repro.energy.model import system_energy
from repro.errors import ConfigError, SimulationError
from repro.mem.controller import _KIND_STAT, MemoryController
from repro.mem.mapping import StaticPatternPolicy
from repro.mem.request import MemoryRequest, Phase
from repro.obs.session import current_session
from repro.sim.config import Mechanism, SystemConfig
from repro.sim.results import RunResult
from repro.utils.statistics import StatGroup


def assert_fast_compatible(config: SystemConfig) -> None:
    """Raise ConfigError unless the fast path is exact for ``config``.

    The conditions are exactly those under which the functional
    behaviour of the event machine is timing-independent (see module
    docstring); anything else must run on :class:`repro.sim.System`.
    """
    problems = []
    if config.cores != 1:
        problems.append(f"cores={config.cores} (needs 1 blocking core)")
    if config.channels != 1:
        problems.append(f"channels={config.channels} (needs 1)")
    if config.prefetch:
        problems.append("prefetch=True (prefetch timing changes fills)")
    if config.store_buffer:
        problems.append(
            f"store_buffer={config.store_buffer} (stores must block)"
        )
    if config.refresh:
        problems.append("refresh=True (refresh closes rows by time)")
    if not config.open_row_policy:
        problems.append("closed-page policy (row state depends on queues)")
    if config.auto_pattern:
        problems.append("auto_pattern=True (detector state is timing-free "
                        "but unvalidated on the fast path)")
    if config.mechanism is Mechanism.IMPULSE:
        problems.append("Impulse mechanism (controller-side gather expands "
                        "requests)")
    if problems:
        raise ConfigError(
            "configuration is not fast-path compatible: " + "; ".join(problems)
        )


def fast_supported(config: SystemConfig) -> bool:
    """True when ``config`` can run on the fast path."""
    try:
        assert_fast_compatible(config)
    except ConfigError:
        return False
    return True


class _FastEngine:
    """A frozen clock: the fast path never schedules events."""

    def __init__(self) -> None:
        self.now = 0
        self.events_processed = 0
        self.tracer = None

    def schedule_at(self, time, callback, *args) -> None:
        raise SimulationError(
            "fast path cannot schedule events", cycle=self.now
        )

    def schedule(self, delay, callback, *args) -> None:
        raise SimulationError(
            "fast path cannot schedule events", cycle=self.now
        )

    def pending(self) -> int:
        return 0


class ImmediateController(MemoryController):
    """Synchronous controller: submit == service == complete.

    Replays each bank's open-row state in submission order — which, for
    fast-compatible configurations, *is* the event controller's service
    order — and invokes the request callback before ``submit`` returns.
    Statistics use the same names and accounting points as the timed
    controller, so registry snapshots stay comparable.
    """

    def __init__(self, engine, module, shuffle_latency: int = 3) -> None:
        super().__init__(engine, module, shuffle_latency=shuffle_latency)
        self._open_rows: list[int | None] = [None] * module.geometry.banks

    def submit(self, request: MemoryRequest) -> None:
        request.arrival_time = 0
        request.location = self.module.decode(
            self.module.mapping.line_address(request.address)
        )
        self.stats.add("requests")
        self.stats.add(_KIND_STAT[request.kind])
        if request.pattern:
            self.stats.add("requests_patterned")

        bank = request.location.bank
        row = request.location.row
        open_row = self._open_rows[bank]
        if open_row == row:
            request.row_hit = True
        else:
            request.row_hit = False
            if open_row is not None:
                self._record_command(Command(CommandKind.PRECHARGE, bank=bank))
            self._record_command(
                Command(CommandKind.ACTIVATE, bank=bank, row=row)
            )
            self._open_rows[bank] = row
        kind = CommandKind.WRITE if request.is_write else CommandKind.READ
        self._record_command(
            Command(kind, bank=bank, row=row,
                    column=request.location.column, pattern=request.pattern)
        )
        self.stats.add("row_hits" if request.row_hit else "row_misses")
        self._move_data(request)
        request.issue_time = 0
        request.finish_time = 0
        request.phase = Phase.DONE
        if self.tracer is not None:
            self.tracer.complete(
                "controller",
                "write" if request.is_write else "read",
                0, 0, tid=bank,
                args={"row": row, "column": request.location.column,
                      "pattern": request.pattern,
                      "row_hit": request.row_hit},
            )
        if request.callback is not None:
            request.callback(request)

    def pending_requests(self) -> int:
        return 0


class _FastCore:
    """Statistics shell standing in for :class:`repro.cpu.core.Core`."""

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self.stats = StatGroup(f"core{core_id}")
        self.finish_time = 0


class FastSystem:
    """Drop-in for :class:`repro.sim.System` on fast-compatible configs.

    Same allocation/memory/run/collect API; every run completes during
    ``run()`` itself with all timing outputs zero. Observability
    sessions attach exactly as for the event machine, so fast runs
    still emit registry snapshots.
    """

    def __init__(self, config: SystemConfig, mapping_policy=None) -> None:
        from repro.sim.system import _build_module

        assert_fast_compatible(config)
        self.config = config
        self.engine = _FastEngine()
        self.module = _build_module(config)
        self.controller = ImmediateController(
            self.engine, self.module, shuffle_latency=config.shuffle_latency
        )
        self.hierarchy = CacheHierarchy(
            self.engine,
            self.controller,
            num_cores=config.cores,
            l1_size=config.l1_size,
            l1_assoc=config.l1_assoc,
            l1_latency=config.l1_latency,
            l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l2_latency=config.l2_latency,
            prefetcher=None,
        )
        policy_cls = mapping_policy or StaticPatternPolicy
        self.mapping_policy = policy_cls(self.module)
        self.page_table = self.mapping_policy.page_table
        self.allocator = self.mapping_policy.allocator
        self.cores = [_FastCore(0)]
        session = current_session()
        if session is not None:
            session.attach(self)

    # ------------------------------------------------------------------
    # Allocation and functional memory access (same as System)
    # ------------------------------------------------------------------
    def pattmalloc(self, size: int, shuffle: bool = False, pattern: int = 0) -> int:
        return self.allocator.pattmalloc(size, shuffle=shuffle, pattern=pattern)

    def malloc(self, size: int) -> int:
        return self.allocator.malloc(size)

    def mem_write(self, address: int, data: bytes) -> None:
        line_bytes = self.module.line_bytes
        position = 0
        while position < len(data):
            target = address + position
            base = self.module.mapping.line_address(target)
            offset = target - base
            take = min(len(data) - position, line_bytes - offset)
            _, shuffled, _ = self.page_table.translate(base)
            line = bytearray(self.module.read_line(base, 0, shuffled))
            line[offset : offset + take] = data[position : position + take]
            self.module.write_line(base, bytes(line), 0, shuffled)
            position += take

    def mem_read(self, address: int, length: int) -> bytes:
        self.hierarchy.drain_dirty()
        out = bytearray()
        line_bytes = self.module.line_bytes
        while length > 0:
            base = self.module.mapping.line_address(address)
            offset = address - base
            take = min(length, line_bytes - offset)
            _, shuffled, _ = self.page_table.translate(base)
            line = self.module.read_line(base, 0, shuffled)
            out += line[offset : offset + take]
            address += take
            length -= take
        return bytes(out)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        programs: list[Iterable],
        stop_on_core: int | None = None,
        max_events: int | None = None,
    ) -> RunResult:
        if len(programs) > len(self.cores):
            raise SimulationError(
                f"{len(programs)} programs for {len(self.cores)} cores", cycle=0
            )
        for program in programs:
            self._execute(program)
        return self.collect_result()

    def _execute(self, ops: Iterable) -> None:
        """Run one op stream with Core-identical stat accounting."""
        core = self.cores[0]
        stats = core.stats
        hierarchy = self.hierarchy
        translate = self.page_table.translate
        filled: list[bytes] = []
        for op in ops:
            if isinstance(op, Compute):
                stats.add("instructions", op.count)
                continue
            is_write = isinstance(op, Store)
            stats.add("instructions")
            stats.add("stores" if is_write else "loads")
            paddr, shuffled, alt_pattern = translate(op.address)
            result = hierarchy.access(
                core.core_id,
                paddr,
                size=op.size,
                is_write=is_write,
                payload=op.payload if is_write else None,
                pattern=op.pattern,
                shuffled=shuffled,
                alt_pattern=alt_pattern,
                pc=op.pc,
                callback=filled.append,
            )
            if result is not None:
                _latency, data = result
            else:
                stats.add("misses_blocked")
                if not filled:
                    raise SimulationError(
                        "fast-path fill did not complete synchronously",
                        address=paddr, pattern=op.pattern,
                    )
                data = filled.pop()
            if not is_write and op.on_value is not None:
                op.on_value(data)
        stats.add("finished")

    def collect_result(self) -> RunResult:
        instructions = sum(c.stats.get("instructions") for c in self.cores)
        loads = sum(c.stats.get("loads") for c in self.cores)
        stores = sum(c.stats.get("stores") for c in self.cores)
        l1_hits = sum(l1.stats.get("hits") for l1 in self.hierarchy.l1s)
        l1_misses = sum(l1.stats.get("misses") for l1 in self.hierarchy.l1s)
        mc = self.controller.stats
        energy = system_energy(
            runtime_cycles=0,
            instructions=instructions,
            l1_accesses=l1_hits + l1_misses,
            l2_accesses=self.hierarchy.l2.stats.get("hits")
            + self.hierarchy.l2.stats.get("misses"),
            command_counts=mc.as_dict(),
            cores=self.config.cores,
            cpu_ghz=self.config.cpu_ghz,
        )
        extra = {
            "engine_events": 0.0,
            "mean_memory_queue_delay": 0.0,
            "auto_gathers": 0.0,
            "stores_overlapped": 0.0,
            "mshr_merges": float(self.hierarchy.stats.get("mshr_merges")),
            "snoop_flushes": float(self.hierarchy.stats.get("snoop_flushes")),
            "fast_path": 1.0,
        }
        return RunResult(
            mechanism=self.config.mechanism.value,
            cycles=0,
            instructions=instructions,
            loads=loads,
            stores=stores,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            l2_hits=self.hierarchy.l2.stats.get("hits"),
            l2_misses=self.hierarchy.l2.stats.get("misses"),
            dram_reads=mc.get("cmd_RD"),
            dram_writes=mc.get("cmd_WR"),
            row_hits=mc.get("row_hits"),
            row_misses=mc.get("row_misses"),
            prefetches=self.hierarchy.stats.get("prefetches_issued"),
            coherence_invalidations=self.hierarchy.stats.get(
                "coherence_invalidations"
            ),
            writebacks=self.hierarchy.stats.get("writebacks"),
            energy=energy,
            extra=extra,
        )
